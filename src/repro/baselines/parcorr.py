"""ParCorr baseline (Yagoubi et al., DAMI 2018), reimplemented.

ParCorr identifies highly correlated pairs across sliding windows by random
projection: each window of each series is z-normalized and projected onto a
small number of shared random vectors; the dot product of two projections is
an unbiased estimate of the pair's Pearson correlation (Johnson–Lindenstrauss
style).  Pairs whose estimate clears the threshold (minus a safety margin) are
*candidates*; candidates can optionally be verified exactly.

The original system is a distributed-parallel engine; what matters for this
reproduction is its accuracy profile — the paper positions Dangoron's accuracy
as "comparable to Parcorr" — and the data-dependency of projection-based
estimates, which experiment E10 probes.  The projection matrix is drawn once
per query so that sliding windows share it, as in the original.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.config import FLOAT_DTYPE, VARIANCE_EPSILON
from repro.core.correlation import correlation_matrix
from repro.core.engine import SlidingCorrelationEngine, register_engine
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


def _znormalize_rows(window: np.ndarray) -> np.ndarray:
    """Centre every row and scale it to unit Euclidean norm (constant rows -> 0)."""
    centered = window - window.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    degenerate = norms < np.sqrt(VARIANCE_EPSILON * window.shape[1])
    safe = np.where(degenerate, 1.0, norms)
    normalized = centered / safe[:, None]
    normalized[degenerate, :] = 0.0
    return normalized


@register_engine
class ParCorrEngine(SlidingCorrelationEngine):
    """Random-projection sketching of sliding-window correlations.

    Parameters
    ----------
    sketch_size:
        Number of random projection vectors (the sketch dimension).  Larger
        sketches estimate correlations more accurately but cost more per
        window.
    candidate_margin:
        Pairs whose *estimated* correlation is at least ``beta - margin``
        become candidates.  A larger margin improves recall at the cost of
        more candidates (and more verification work when enabled).
    verify:
        When ``True`` candidates are re-evaluated exactly and reported with
        their exact value (so precision is 1); when ``False`` the estimated
        value is reported for candidates whose estimate clears ``beta``.
    projection:
        ``"rademacher"`` (+-1 entries, the ParCorr choice) or ``"gaussian"``.
    seed:
        RNG seed for the projection matrix.
    """

    name = "parcorr"
    exact = False

    def __init__(
        self,
        sketch_size: int = 64,
        candidate_margin: float = 0.05,
        verify: bool = True,
        projection: str = "rademacher",
        seed: Optional[int] = 7,
    ) -> None:
        if sketch_size < 1:
            raise QueryValidationError(f"sketch_size must be >= 1, got {sketch_size}")
        if candidate_margin < 0:
            raise QueryValidationError(
                f"candidate_margin must be non-negative, got {candidate_margin}"
            )
        if projection not in ("rademacher", "gaussian"):
            raise QueryValidationError(
                f"projection must be 'rademacher' or 'gaussian', got {projection!r}"
            )
        self.sketch_size = sketch_size
        self.candidate_margin = candidate_margin
        self.verify = verify
        self.projection = projection
        self.seed = seed
        self.exact = verify

    def describe(self) -> str:
        mode = "verified" if self.verify else "approximate"
        return f"{self.name}[k={self.sketch_size}, {mode}]"

    # ------------------------------------------------------------------ running
    def _projection_matrix(self, window_length: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        if self.projection == "rademacher":
            signs = rng.integers(0, 2, size=(self.sketch_size, window_length))
            proj = (2.0 * signs - 1.0).astype(FLOAT_DTYPE)
        else:
            proj = rng.standard_normal((self.sketch_size, window_length)).astype(
                FLOAT_DTYPE
            )
        return proj / np.sqrt(self.sketch_size)

    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        query.validate_against_length(matrix.length)
        values = matrix.values
        n = matrix.num_series

        build_start = time.perf_counter()
        projection = self._projection_matrix(query.window)
        sketch_seconds = time.perf_counter() - build_start

        candidate_threshold = query.threshold - self.candidate_margin
        matrices: List[ThresholdedMatrix] = []
        total_candidates = 0
        exact_evaluations = 0

        started = time.perf_counter()
        for _, begin, end in query.iter_windows():
            window = values[:, begin:end]
            normalized = _znormalize_rows(window)
            sketches = normalized @ projection.T  # (N, sketch_size)
            estimate = np.clip(sketches @ sketches.T, -1.0, 1.0)

            iu, ju = np.triu_indices(n, k=1)
            est_vals = estimate[iu, ju]
            if query.threshold_mode == "absolute":
                candidate_mask = np.abs(est_vals) >= candidate_threshold
            else:
                candidate_mask = est_vals >= candidate_threshold
            cand_rows = iu[candidate_mask]
            cand_cols = ju[candidate_mask]
            total_candidates += int(len(cand_rows))

            if self.verify and len(cand_rows):
                # Exact verification only for candidate pairs.
                corr = correlation_matrix(window)
                exact_vals = corr[cand_rows, cand_cols]
                exact_evaluations += int(len(cand_rows))
                keep = query.keep_mask(exact_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n, cand_rows[keep], cand_cols[keep], exact_vals[keep]
                    )
                )
            else:
                cand_vals = est_vals[candidate_mask]
                keep = query.keep_mask(cand_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n, cand_rows[keep], cand_cols[keep], cand_vals[keep]
                    )
                )
        elapsed = time.perf_counter() - started

        pairs = n * (n - 1) // 2
        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=exact_evaluations,
            candidate_pairs=total_candidates,
            sketch_build_seconds=sketch_seconds,
            query_seconds=elapsed,
            extra={
                "sketch_size": float(self.sketch_size),
                "candidate_margin": float(self.candidate_margin),
                "total_pairs": float(pairs),
            },
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
