"""FilCorr-style filtered-correlation baseline (Zhong, Souza, Mueen; ICDM 2020).

FilCorr monitors streaming correlations on *filtered* signals: each window is
passed through a smoothing (low-pass) filter and optionally downsampled before
correlating, which both removes high-frequency noise and shrinks the per-window
work.  The filtered correlation approximates the raw Pearson correlation well
when the pair's shared signal lives at low frequencies — the same
data-dependency the paper's related-work section attributes to the
frequency-transform family, probed by experiment E10.

As with the other approximate baselines, pairs whose filtered estimate clears
the threshold (minus a safety margin) become candidates, and candidates can be
verified exactly so the engine's precision is 1 at the cost of extra exact
evaluations.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.baselines.parcorr import _znormalize_rows
from repro.config import FLOAT_DTYPE
from repro.core.correlation import correlation_matrix
from repro.core.engine import SlidingCorrelationEngine, register_engine
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


def moving_average_filter(window: np.ndarray, width: int) -> np.ndarray:
    """Centered moving average of every row (valid region only).

    The output has ``window.shape[1] - width + 1`` columns; with ``width=1`` it
    is the input unchanged.
    """
    window = np.asarray(window, dtype=FLOAT_DTYPE)
    if window.ndim != 2:
        raise QueryValidationError(
            f"moving_average_filter() expects an (N, l) array, got {window.shape}"
        )
    if width < 1:
        raise QueryValidationError(f"filter width must be >= 1, got {width}")
    if width > window.shape[1]:
        raise QueryValidationError(
            f"filter width {width} exceeds the window length {window.shape[1]}"
        )
    if width == 1:
        return window
    cumulative = np.cumsum(window, axis=1, dtype=FLOAT_DTYPE)
    padded = np.concatenate(
        [np.zeros((window.shape[0], 1), dtype=FLOAT_DTYPE), cumulative], axis=1
    )
    return (padded[:, width:] - padded[:, :-width]) / float(width)


@register_engine
class FilCorrEngine(SlidingCorrelationEngine):
    """Correlation of smoothed, downsampled windows with optional exact verification.

    Parameters
    ----------
    filter_width:
        Length of the moving-average filter applied to every window (1 disables
        smoothing).
    downsample:
        Keep every ``downsample``-th column of the filtered window (1 keeps
        everything).  The per-pair estimation cost shrinks proportionally.
    candidate_margin:
        Pairs whose filtered correlation is at least ``beta - margin`` become
        candidates.
    verify:
        Verify candidates exactly (reported values are then exact and the
        engine's precision is 1).
    """

    name = "filcorr"
    exact = False

    def __init__(
        self,
        filter_width: int = 8,
        downsample: int = 4,
        candidate_margin: float = 0.05,
        verify: bool = True,
    ) -> None:
        if filter_width < 1:
            raise QueryValidationError(
                f"filter_width must be >= 1, got {filter_width}"
            )
        if downsample < 1:
            raise QueryValidationError(f"downsample must be >= 1, got {downsample}")
        if candidate_margin < 0:
            raise QueryValidationError(
                f"candidate_margin must be non-negative, got {candidate_margin}"
            )
        self.filter_width = filter_width
        self.downsample = downsample
        self.candidate_margin = candidate_margin
        self.verify = verify
        self.exact = verify

    def describe(self) -> str:
        mode = "verified" if self.verify else "approximate"
        return (
            f"{self.name}[w={self.filter_width}, d={self.downsample}, {mode}]"
        )

    # ------------------------------------------------------------------ running
    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        query.validate_against_length(matrix.length)
        if self.filter_width >= query.window:
            raise QueryValidationError(
                f"filter_width {self.filter_width} must be smaller than the "
                f"query window {query.window}"
            )
        values = matrix.values
        n = matrix.num_series

        candidate_threshold = query.threshold - self.candidate_margin
        matrices: List[ThresholdedMatrix] = []
        total_candidates = 0
        exact_evaluations = 0

        started = time.perf_counter()
        for _, begin, end in query.iter_windows():
            window = values[:, begin:end]
            filtered = moving_average_filter(window, self.filter_width)
            if self.downsample > 1:
                filtered = filtered[:, :: self.downsample]
            if filtered.shape[1] < 2:
                raise QueryValidationError(
                    "filtering and downsampling left fewer than two columns; "
                    "reduce filter_width or downsample"
                )
            normalized = _znormalize_rows(filtered)
            estimate = np.clip(normalized @ normalized.T, -1.0, 1.0)

            iu, ju = np.triu_indices(n, k=1)
            est_vals = estimate[iu, ju]
            if query.threshold_mode == "absolute":
                candidate_mask = np.abs(est_vals) >= candidate_threshold
            else:
                candidate_mask = est_vals >= candidate_threshold
            cand_rows = iu[candidate_mask]
            cand_cols = ju[candidate_mask]
            total_candidates += int(len(cand_rows))

            if self.verify and len(cand_rows):
                corr = correlation_matrix(window)
                exact_vals = corr[cand_rows, cand_cols]
                exact_evaluations += int(len(cand_rows))
                keep = query.keep_mask(exact_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n, cand_rows[keep], cand_cols[keep], exact_vals[keep]
                    )
                )
            else:
                cand_vals = est_vals[candidate_mask]
                keep = query.keep_mask(cand_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n, cand_rows[keep], cand_cols[keep], cand_vals[keep]
                    )
                )
        elapsed = time.perf_counter() - started

        pairs = n * (n - 1) // 2
        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=exact_evaluations,
            candidate_pairs=total_candidates,
            sketch_build_seconds=0.0,
            query_seconds=elapsed,
            extra={
                "filter_width": float(self.filter_width),
                "downsample": float(self.downsample),
                "total_pairs": float(pairs),
            },
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
