"""TSUBASA baseline (Xu, Liu, Nargesian; SIGMOD 2022), reimplemented.

TSUBASA precomputes basic-window statistics once and answers *arbitrary*
window correlation queries exactly by recombining them (the same Eq. 1 this
repository's sketch implements), correcting unaligned window edges from the
raw data.  What it lacks — and what the Dangoron paper targets — is any reuse
*across* the windows of a sliding query: every window recombines every pair
from scratch, costing ``O(n_s)`` per pair per window.

This engine is the paper's primary comparison point ("an order of magnitude
faster than TSUBASA in terms of pure query time").  Its ``query_seconds`` is
the pure query time; the sketch construction is reported separately in
``sketch_build_seconds``, matching the paper's framing.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

import numpy as np

from repro.config import DEFAULT_BASIC_WINDOW_SIZE
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import (
    SlidingCorrelationEngine,
    register_engine,
    validate_pair_subset,
)
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.core.sketch import BasicWindowSketch, ensure_sketch_layout
from repro.exceptions import SketchError
from repro.timeseries.matrix import TimeSeriesMatrix


@register_engine
class TsubasaEngine(SlidingCorrelationEngine):
    """Exact sketch-based correlation for every pair in every window.

    Parameters
    ----------
    basic_window_size:
        Size of the precomputed basic windows.  Unlike Dangoron, TSUBASA does
        not require the query window or step to be multiples of it — unaligned
        edges are corrected exactly from the raw data.
    """

    name = "tsubasa"
    exact = True

    def __init__(self, basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE) -> None:
        if basic_window_size < 2:
            raise SketchError(
                f"basic window size must be at least 2, got {basic_window_size}"
            )
        self.basic_window_size = basic_window_size

    def describe(self) -> str:
        return f"{self.name}[b={self.basic_window_size}]"

    def plan_layout(self, query: SlidingQuery) -> BasicWindowLayout:
        """The layout ``run`` builds its sketch for (see the planner protocol)."""
        size = min(self.basic_window_size, query.window)
        size = max(size, 2)
        return BasicWindowLayout.for_range(query.start, query.end, size)

    def needs_raw_values(self, query: SlidingQuery) -> bool:
        """Sketch-only for aligned windows (the only case the planner tiles).

        Unaligned windows read the raw matrix for edge correction, but the
        planner's tiled gate already requires whole-basic-window alignment.
        """
        return False

    def supports_pair_subset(self) -> bool:
        """Always shardable: every pair is evaluated independently every window."""
        return True

    def run(
        self,
        matrix: TimeSeriesMatrix,
        query: SlidingQuery,
        *,
        sketch: Optional[BasicWindowSketch] = None,
        pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> CorrelationSeriesResult:
        # Raw values are read lazily: with a prebuilt sketch and aligned
        # windows the run is sketch-only, so lazily-backed matrices are never
        # materialized (unaligned edges still read matrix.values).
        query.validate_against_length(matrix.length)
        n = matrix.num_series
        pair_rows: Optional[np.ndarray] = None
        pair_cols: Optional[np.ndarray] = None
        if pairs is not None:
            pair_rows, pair_cols = validate_pair_subset(pairs, n)

        layout = self.plan_layout(query)
        if sketch is not None:
            ensure_sketch_layout(sketch, layout)
            sketch_seconds = sketch.build_seconds
        else:
            build_start = time.perf_counter()
            sketch = BasicWindowSketch.build(matrix.values, layout)
            sketch_seconds = time.perf_counter() - build_start

        matrices: List[ThresholdedMatrix] = []
        started = time.perf_counter()
        for _, begin, end in query.iter_windows():
            if pair_rows is None:
                if layout.is_aligned(begin, end):
                    first, count = layout.covering(begin, end)
                    corr = sketch.exact_matrix_scan(first, count)
                else:
                    corr = sketch.exact_matrix_range(begin, end, values=matrix.values)
                matrices.append(ThresholdedMatrix.from_dense(corr, query=query))
                continue
            # Pair-subset path: the per-window cost is proportional to the
            # subset size for aligned windows (the sharded executor's case).
            # Unaligned windows fall back to the dense edge-corrected matrix
            # before selecting the subset — correct, but not cheaper.
            if layout.is_aligned(begin, end):
                first, count = layout.covering(begin, end)
                window_vals = sketch.exact_pairs_scan(
                    pair_rows, pair_cols, first, count
                )
            else:
                corr = sketch.exact_matrix_range(begin, end, values=matrix.values)
                window_vals = corr[pair_rows, pair_cols]
            keep = query.keep_mask(window_vals)
            matrices.append(
                ThresholdedMatrix(
                    n, pair_rows[keep], pair_cols[keep], window_vals[keep]
                )
            )
        elapsed = time.perf_counter() - started

        pairs_evaluated = (
            n * (n - 1) // 2 if pair_rows is None else int(len(pair_rows))
        )
        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=pairs_evaluated * query.num_windows,
            candidate_pairs=pairs_evaluated,
            sketch_build_seconds=sketch_seconds,
            query_seconds=elapsed,
            extra={
                "basic_window_size": float(layout.size),
                "sketch_memory_bytes": float(sketch.memory_bytes()),
            },
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
