"""Brute-force baseline: recompute every pairwise correlation in every window.

This is the ground-truth engine: no sketch, no pruning, no approximation.  Its
output defines the exact answer that the accuracy experiments (E2, E3, E10)
measure every other engine against, and its running time is the "no data
management at all" reference point for the efficiency experiments.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.correlation import correlation_matrix
from repro.core.engine import SlidingCorrelationEngine, register_engine
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.timeseries.matrix import TimeSeriesMatrix


@register_engine
class BruteForceEngine(SlidingCorrelationEngine):
    """Direct Pearson correlation of all pairs in all windows (no sketch)."""

    name = "brute_force"
    exact = True

    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        query.validate_against_length(matrix.length)
        values = matrix.values
        n = matrix.num_series

        matrices: List[ThresholdedMatrix] = []
        started = time.perf_counter()
        for _, begin, end in query.iter_windows():
            corr = correlation_matrix(values[:, begin:end])
            matrices.append(ThresholdedMatrix.from_dense(corr, query=query))
        elapsed = time.perf_counter() - started

        pairs = n * (n - 1) // 2
        stats = EngineStats(
            engine=self.name,
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=pairs * query.num_windows,
            candidate_pairs=pairs,
            sketch_build_seconds=0.0,
            query_seconds=elapsed,
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
