"""StatStream-style DFT baseline (Zhu & Shasha, VLDB 2002), reimplemented.

StatStream introduced the basic-window framework and monitors thousands of
streams by keeping only the first few DFT coefficients of each (z-normalized)
window: by Parseval's theorem the inner product of two unit-norm windows — the
Pearson correlation — is approximated by the inner product of their truncated
spectra.  The approximation is good exactly when the signal energy is
concentrated in the kept (low-frequency) coefficients, which is the
data-dependency weakness the Dangoron paper's related-work section calls out
and which experiment E10 measures with Tomborg-generated spectra.

Candidates whose estimated correlation clears the threshold (minus a margin)
are optionally verified exactly, mirroring the grid-based filtering of the
original system.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.config import FLOAT_DTYPE
from repro.baselines.parcorr import _znormalize_rows
from repro.core.correlation import correlation_matrix
from repro.core.engine import SlidingCorrelationEngine, register_engine
from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@register_engine
class StatStreamEngine(SlidingCorrelationEngine):
    """Truncated-DFT sketching of sliding-window correlations.

    Parameters
    ----------
    num_coefficients:
        Number of (complex) DFT coefficients kept per window, counted from the
        lowest non-zero frequency (the DC coefficient of a centred window is
        zero and is always dropped).
    candidate_margin:
        Estimated correlations of at least ``beta - margin`` become candidates.
    verify:
        Verify candidates exactly (reported values are then exact).
    """

    name = "statstream"
    exact = False

    def __init__(
        self,
        num_coefficients: int = 16,
        candidate_margin: float = 0.05,
        verify: bool = True,
    ) -> None:
        if num_coefficients < 1:
            raise QueryValidationError(
                f"num_coefficients must be >= 1, got {num_coefficients}"
            )
        if candidate_margin < 0:
            raise QueryValidationError(
                f"candidate_margin must be non-negative, got {candidate_margin}"
            )
        self.num_coefficients = num_coefficients
        self.candidate_margin = candidate_margin
        self.verify = verify
        self.exact = verify

    def describe(self) -> str:
        mode = "verified" if self.verify else "approximate"
        return f"{self.name}[m={self.num_coefficients}, {mode}]"

    def run(
        self, matrix: TimeSeriesMatrix, query: SlidingQuery
    ) -> CorrelationSeriesResult:
        query.validate_against_length(matrix.length)
        values = matrix.values
        n = matrix.num_series
        length = query.window
        # Keep coefficients 1 … m of the real FFT (coefficient 0 is the mean).
        max_keep = length // 2
        keep = min(self.num_coefficients, max_keep)

        candidate_threshold = query.threshold - self.candidate_margin
        matrices: List[ThresholdedMatrix] = []
        total_candidates = 0
        exact_evaluations = 0

        started = time.perf_counter()
        for _, begin, end in query.iter_windows():
            window = values[:, begin:end]
            normalized = _znormalize_rows(window)
            spectrum = np.fft.rfft(normalized, axis=1)
            truncated = spectrum[:, 1 : keep + 1]

            # Parseval: x . y = (2/L) * sum_f Re(X_f conj(Y_f)) for the
            # positive, non-Nyquist frequencies of unit-norm centred windows.
            gram = truncated @ truncated.conj().T
            estimate = (2.0 / length) * gram.real
            if length % 2 == 0 and keep == max_keep:
                # The Nyquist coefficient is not doubled in the real expansion.
                nyquist = spectrum[:, -1]
                estimate -= (1.0 / length) * np.real(
                    np.outer(nyquist, nyquist.conj())
                )
            estimate = np.clip(estimate.astype(FLOAT_DTYPE), -1.0, 1.0)

            iu, ju = np.triu_indices(n, k=1)
            est_vals = estimate[iu, ju]
            if query.threshold_mode == "absolute":
                candidate_mask = np.abs(est_vals) >= candidate_threshold
            else:
                candidate_mask = est_vals >= candidate_threshold
            cand_rows = iu[candidate_mask]
            cand_cols = ju[candidate_mask]
            total_candidates += int(len(cand_rows))

            if self.verify and len(cand_rows):
                corr = correlation_matrix(window)
                exact_vals = corr[cand_rows, cand_cols]
                exact_evaluations += int(len(cand_rows))
                keep_mask = query.keep_mask(exact_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n,
                        cand_rows[keep_mask],
                        cand_cols[keep_mask],
                        exact_vals[keep_mask],
                    )
                )
            else:
                cand_vals = est_vals[candidate_mask]
                keep_mask = query.keep_mask(cand_vals)
                matrices.append(
                    ThresholdedMatrix(
                        n,
                        cand_rows[keep_mask],
                        cand_cols[keep_mask],
                        cand_vals[keep_mask],
                    )
                )
        elapsed = time.perf_counter() - started

        stats = EngineStats(
            engine=self.describe(),
            num_series=n,
            num_windows=query.num_windows,
            exact_evaluations=exact_evaluations,
            candidate_pairs=total_candidates,
            sketch_build_seconds=0.0,
            query_seconds=elapsed,
            extra={"num_coefficients": float(keep)},
        )
        return CorrelationSeriesResult(
            query, matrices, stats, series_ids=matrix.series_ids
        )
