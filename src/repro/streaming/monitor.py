"""Alerting on top of the online correlation monitor.

The interactivity challenge in the paper is not just recomputing matrices
quickly — an analyst watching a live network wants to be *told* when it
changes: an edge of interest appears or disappears, the network reorganizes
between consecutive windows, or its density jumps.  This module wraps
:class:`~repro.streaming.online.OnlineCorrelationMonitor` with exactly that
layer: feed columns in, get typed alerts out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import StreamingError
from repro.streaming.online import OnlineCorrelationMonitor, OnlineWindowResult

#: Alert kinds emitted by :class:`NetworkChangeMonitor`.
ALERT_EDGE_APPEARED = "edge_appeared"
ALERT_EDGE_DROPPED = "edge_dropped"
ALERT_NETWORK_SHIFT = "network_shift"
ALERT_DENSITY_JUMP = "density_jump"


@dataclass(frozen=True)
class NetworkAlert:
    """One alert raised while processing a completed window."""

    window_index: int
    kind: str
    edge: Optional[Tuple[int, int]] = None
    value: float = 0.0
    message: str = ""

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"[window {self.window_index}] {self.kind}: {self.message}"


@dataclass
class NetworkChangeMonitor:
    """Emit alerts as the live correlation network evolves.

    Parameters
    ----------
    monitor:
        The online correlation monitor that turns raw columns into per-window
        thresholded matrices.
    watch_pairs:
        Pairs ``(i, j)`` (series indices, any order) whose appearance or
        disappearance always raises an alert.  When empty, appearance/
        disappearance alerts are raised for *all* pairs.
    min_jaccard:
        A transition whose edge-set Jaccard similarity with the previous
        window falls below this raises a ``network_shift`` alert.
    max_density_change:
        A change in edge count between consecutive windows exceeding this
        fraction of all pairs raises a ``density_jump`` alert.
    """

    monitor: OnlineCorrelationMonitor
    watch_pairs: Sequence[Tuple[int, int]] = ()
    min_jaccard: float = 0.5
    max_density_change: float = 0.25
    _watched: Set[Tuple[int, int]] = field(init=False)
    _previous_edges: Optional[Set[Tuple[int, int]]] = field(init=False, default=None)
    _alert_log: List[NetworkAlert] = field(init=False, default_factory=list)
    _edge_counts: List[int] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_jaccard <= 1.0:
            raise StreamingError(
                f"min_jaccard must lie in [0, 1], got {self.min_jaccard}"
            )
        if not 0.0 < self.max_density_change <= 1.0:
            raise StreamingError(
                f"max_density_change must lie in (0, 1], got {self.max_density_change}"
            )
        n = self.monitor.num_series
        self._watched = set()
        for i, j in self.watch_pairs:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                raise StreamingError(f"invalid watched pair ({i}, {j}) for N={n}")
            self._watched.add((min(i, j), max(i, j)))

    # ------------------------------------------------------------------ state
    @property
    def alerts(self) -> List[NetworkAlert]:
        """Every alert raised so far (copy)."""
        return list(self._alert_log)

    @property
    def edge_count_history(self) -> List[int]:
        """Edge count of every emitted window, in order."""
        return list(self._edge_counts)

    def alerts_of_kind(self, kind: str) -> List[NetworkAlert]:
        """Alerts of one kind, in emission order."""
        return [a for a in self._alert_log if a.kind == kind]

    # ------------------------------------------------------------------ ingest
    def append(self, columns: np.ndarray) -> List[NetworkAlert]:
        """Feed new columns and return the alerts raised by any completed windows."""
        fresh: List[NetworkAlert] = []
        for window_result in self.monitor.append(columns):
            fresh.extend(self._process_window(window_result))
        self._alert_log.extend(fresh)
        return fresh

    # ---------------------------------------------------------------- internal
    def _process_window(self, result: OnlineWindowResult) -> List[NetworkAlert]:
        edges = result.matrix.edge_set()
        values: Dict[Tuple[int, int], float] = result.matrix.edge_dict()
        alerts: List[NetworkAlert] = []
        k = result.window_index
        self._edge_counts.append(len(edges))

        if self._previous_edges is not None:
            appeared = edges - self._previous_edges
            dropped = self._previous_edges - edges
            for edge in sorted(appeared):
                if not self._watched or edge in self._watched:
                    alerts.append(
                        NetworkAlert(
                            window_index=k,
                            kind=ALERT_EDGE_APPEARED,
                            edge=edge,
                            value=values.get(edge, 0.0),
                            message=f"pair {edge} rose above the threshold",
                        )
                    )
            for edge in sorted(dropped):
                if not self._watched or edge in self._watched:
                    alerts.append(
                        NetworkAlert(
                            window_index=k,
                            kind=ALERT_EDGE_DROPPED,
                            edge=edge,
                            message=f"pair {edge} fell below the threshold",
                        )
                    )

            union = edges | self._previous_edges
            jaccard = len(edges & self._previous_edges) / len(union) if union else 1.0
            if jaccard < self.min_jaccard:
                alerts.append(
                    NetworkAlert(
                        window_index=k,
                        kind=ALERT_NETWORK_SHIFT,
                        value=jaccard,
                        message=(
                            f"edge overlap with the previous window dropped to "
                            f"{jaccard:.2f}"
                        ),
                    )
                )

            n = self.monitor.num_series
            total_pairs = n * (n - 1) // 2
            density_change = abs(len(edges) - len(self._previous_edges)) / max(
                total_pairs, 1
            )
            if density_change > self.max_density_change:
                alerts.append(
                    NetworkAlert(
                        window_index=k,
                        kind=ALERT_DENSITY_JUMP,
                        value=density_change,
                        message=(
                            f"edge count moved by {density_change:.0%} of all pairs "
                            f"in one step"
                        ),
                    )
                )

        self._previous_edges = edges
        return alerts
