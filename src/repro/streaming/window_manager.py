"""Bookkeeping of which sliding windows have become answerable as data arrives."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.exceptions import StreamingError


@dataclass
class SlidingWindowManager:
    """Tracks the sliding-window grid over a growing stream.

    Windows follow the paper's definition: window ``k`` covers columns
    ``[start + k*step, start + k*step + window)``.  :meth:`newly_complete`
    returns the windows that have become fully covered since the last call,
    so the online monitor can emit exactly one result per window, in order,
    regardless of how the arriving columns are batched.
    """

    window: int
    step: int
    start: int = 0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise StreamingError(f"window must be at least 2, got {self.window}")
        if self.step < 1:
            raise StreamingError(f"step must be at least 1, got {self.step}")
        if self.start < 0:
            raise StreamingError(f"start must be non-negative, got {self.start}")
        self._next_window = 0

    @property
    def emitted_windows(self) -> int:
        """Number of windows already handed out by :meth:`newly_complete`."""
        return self._next_window

    def window_bounds(self, k: int) -> Tuple[int, int]:
        """Column range ``[start, end)`` of window ``k``."""
        if k < 0:
            raise StreamingError(f"window index must be non-negative, got {k}")
        begin = self.start + k * self.step
        return begin, begin + self.window

    def complete_windows(self, available_columns: int) -> int:
        """How many windows are fully covered by ``available_columns`` columns."""
        if available_columns < self.start + self.window:
            return 0
        return (available_columns - self.start - self.window) // self.step + 1

    def newly_complete(self, available_columns: int) -> List[Tuple[int, int, int]]:
        """Windows completed since the previous call, as ``(k, start, end)``."""
        total = self.complete_windows(available_columns)
        fresh = []
        for k in range(self._next_window, total):
            begin, end = self.window_bounds(k)
            fresh.append((k, begin, end))
        self._next_window = max(self._next_window, total)
        return fresh
