"""Online correlation-network monitoring over a live stream.

:class:`OnlineCorrelationMonitor` combines the streaming substrate with the
Dangoron pruning machinery: columns are appended as they arrive, the
statistics index grows by whole basic windows, and whenever enough data is
available to complete the next sliding window the monitor emits its
thresholded correlation matrix.  Below-threshold pairs are scheduled into the
future with the Eq. 2 bound exactly as in the offline engine — the outgoing
basic windows needed by the bound are always in the past, so the bound is
computable online — which keeps per-arrival work low once the network is
sparse.

This is the "network construction and updates … interactivity" scenario from
the paper's challenge list, packaged as a push-based API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.config import DEFAULT_BASIC_WINDOW_SIZE, INDEX_DTYPE
from repro.core.basic_window import choose_basic_window_size
from repro.core.bounds import first_possible_crossing
from repro.core.query import THRESHOLD_SIGNED, SlidingQuery
from repro.core.result import ThresholdedMatrix
from repro.exceptions import StreamingError
from repro.streaming.stream import StreamIngestor
from repro.streaming.window_manager import SlidingWindowManager


@dataclass
class OnlineWindowResult:
    """One emitted window: its index, column range, and thresholded matrix."""

    window_index: int
    start: int
    end: int
    matrix: ThresholdedMatrix
    exact_evaluations: int = 0
    skipped_pairs: int = 0


@dataclass
class OnlineCorrelationMonitor:
    """Push-based sliding correlation-network monitor.

    Parameters
    ----------
    num_series:
        Number of series in the stream.
    window, step:
        Sliding-window size and step, in columns.  Both must be multiples of
        ``basic_window_size`` (the aligned regime the pruned engine uses).
    threshold:
        The correlation threshold ``beta``.
    basic_window_size:
        Basic-window size of the maintained statistics.
    use_temporal_pruning:
        Apply the Eq. 2 jump scheduling across emitted windows.
    """

    num_series: int
    window: int
    step: int
    threshold: float
    basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE
    use_temporal_pruning: bool = True
    series_ids: Optional[Sequence[str]] = None
    keep_raw: bool = False
    _ingestor: StreamIngestor = field(init=False)
    _manager: SlidingWindowManager = field(init=False)
    _next_due: np.ndarray = field(init=False)
    _rows: np.ndarray = field(init=False)
    _cols: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.window % self.basic_window_size != 0:
            raise StreamingError(
                f"window ({self.window}) must be a multiple of the basic window "
                f"size ({self.basic_window_size})"
            )
        if self.step % self.basic_window_size != 0:
            raise StreamingError(
                f"step ({self.step}) must be a multiple of the basic window "
                f"size ({self.basic_window_size})"
            )
        if not -1.0 <= self.threshold <= 1.0:
            raise StreamingError(f"threshold must lie in [-1, 1], got {self.threshold}")
        self._ingestor = StreamIngestor(
            self.num_series,
            basic_window_size=self.basic_window_size,
            series_ids=self.series_ids,
            keep_raw=self.keep_raw,
        )
        self._manager = SlidingWindowManager(window=self.window, step=self.step)
        self._rows, self._cols = np.triu_indices(self.num_series, k=1)
        self._next_due = np.zeros(len(self._rows), dtype=INDEX_DTYPE)

    # ------------------------------------------------------------ construction
    @classmethod
    def for_query(
        cls,
        query: SlidingQuery,
        num_series: int,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        series_ids: Optional[Sequence[str]] = None,
        keep_raw: bool = False,
    ) -> "OnlineCorrelationMonitor":
        """Build a monitor answering a threshold query spec over a live stream.

        The push-based twin of ``CorrelationSession.run``: the query supplies
        window, step and threshold, and the basic-window size is aligned to
        them with the same rule the offline planner uses — this is how the
        query service turns a registered standing query into a monitor fed by
        ``append``.  Only signed-threshold specs stream (the monitor's
        semantics); top-k, lagged and absolute-mode queries raise
        :class:`StreamingError`.  The monitor watches the stream from its
        first column, so a spec with ``start > 0`` is rejected rather than
        silently shifted.
        """
        if getattr(query, "mode", "threshold") != "threshold":
            raise StreamingError(
                f"standing queries support threshold specs only, got "
                f"{type(query).__name__}"
            )
        if query.threshold_mode != THRESHOLD_SIGNED:
            raise StreamingError(
                "standing queries support signed thresholds only (the online "
                "monitor's semantics)"
            )
        if query.start != 0:
            raise StreamingError(
                f"standing queries watch the stream from column 0, got "
                f"start={query.start}"
            )
        basic = choose_basic_window_size(query.window, query.step, basic_window_size)
        return cls(
            num_series=num_series,
            window=query.window,
            step=query.step,
            threshold=query.threshold,
            basic_window_size=basic,
            series_ids=list(series_ids) if series_ids is not None else None,
            keep_raw=keep_raw,
        )

    # ------------------------------------------------------------------ ingest
    @property
    def emitted_windows(self) -> int:
        return self._manager.emitted_windows

    def append(self, columns: np.ndarray) -> List[OnlineWindowResult]:
        """Feed new columns; returns results for every window that completed."""
        self._ingestor.append(columns)
        available = self.indexed_columns()
        results = []
        for k, begin, end in self._manager.newly_complete(available):
            results.append(self._emit_window(k, begin, end))
        return results

    def indexed_columns(self) -> int:
        """Number of columns currently covered by complete basic windows."""
        return self._ingestor.indexed_basic_windows * self.basic_window_size

    # ---------------------------------------------------------------- internal
    def _emit_window(self, k: int, begin: int, end: int) -> OnlineWindowResult:
        sketch = self._ingestor.index.sketch
        bw_first = begin // self.basic_window_size
        window_bw = self.window // self.basic_window_size
        step_bw = self.step // self.basic_window_size

        due_mask = self._next_due <= k
        due = np.flatnonzero(due_mask)
        skipped = int(len(self._rows) - len(due))

        window_rows = np.empty(0, dtype=INDEX_DTYPE)
        window_cols = np.empty(0, dtype=INDEX_DTYPE)
        window_vals = np.empty(0)
        if len(due):
            values = sketch.exact_pairs_scan(
                self._rows[due], self._cols[due], bw_first, window_bw
            )
            keep = values >= self.threshold
            window_rows = self._rows[due][keep]
            window_cols = self._cols[due][keep]
            window_vals = values[keep]

            self._next_due[due] = k + 1
            below = due[~keep]
            if self.use_temporal_pruning and len(below):
                # The bound may look arbitrarily far ahead; cap the horizon at
                # the number of future windows the already-indexed data could
                # ever describe (more windows simply re-enter when due).
                max_steps = max(1, sketch.layout.count)
                jumps = first_possible_crossing(
                    values[~keep],
                    self.threshold,
                    sketch.corr_prefix,
                    self._rows[below],
                    self._cols[below],
                    bw_first,
                    step_bw,
                    window_bw,
                    min(max_steps, self._safe_horizon(bw_first, step_bw, sketch)),
                )
                self._next_due[below] = k + jumps

        matrix = ThresholdedMatrix(
            self.num_series, window_rows, window_cols, window_vals
        )
        return OnlineWindowResult(
            window_index=k,
            start=begin,
            end=end,
            matrix=matrix,
            exact_evaluations=int(len(due)),
            skipped_pairs=skipped,
        )

    def _safe_horizon(
        self, bw_first: int, step_bw: int, sketch
    ) -> int:
        """Largest number of window steps whose outgoing windows are already indexed."""
        remaining_bw = sketch.layout.count - bw_first
        return max(1, remaining_bw // step_bw)

    # ------------------------------------------------------------------ helper
    def equivalent_query(self, total_columns: int) -> SlidingQuery:
        """The offline query answering the same windows over ``total_columns``.

        Used by tests to check that streaming emission matches a batch run of
        the offline engine over the same data.
        """
        return SlidingQuery(
            start=0,
            end=total_columns,
            window=self.window,
            step=self.step,
            threshold=self.threshold,
            threshold_mode=THRESHOLD_SIGNED,
        )
