"""Streaming ingestion: raw columns in, chunk store + statistics index out.

The paper's first challenge is "efficiency of network construction and
*updates* for large-scale data to achieve interactivity": new observations
arrive continuously and the stored basic-window statistics must stay current
without recomputing history.  :class:`StreamIngestor` is that ingestion path —
it appends incoming columns to a :class:`~repro.storage.chunk_store.ChunkStore`
and extends the :class:`~repro.storage.stats_index.StatsIndex` whenever enough
columns have accumulated to complete new basic windows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.config import DEFAULT_BASIC_WINDOW_SIZE, FLOAT_DTYPE
from repro.exceptions import StreamingError
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex


class StreamIngestor:
    """Accumulates columns and maintains raw storage plus the statistics index.

    Parameters
    ----------
    num_series:
        Number of series in the stream (fixed; shape drift raises).
    basic_window_size:
        Size of the basic windows maintained in the statistics index.
    chunk_columns:
        Chunk width of the underlying raw store.
    series_ids:
        Optional series identifiers.
    keep_raw:
        When ``False`` raw columns are not retained after they have been
        folded into complete basic windows (the pure-streaming deployment
        where only statistics survive).
    """

    def __init__(
        self,
        num_series: int,
        basic_window_size: int = DEFAULT_BASIC_WINDOW_SIZE,
        chunk_columns: int = 1024,
        series_ids: Optional[Sequence[str]] = None,
        keep_raw: bool = True,
    ) -> None:
        if num_series < 1:
            raise StreamingError(f"num_series must be positive, got {num_series}")
        if basic_window_size < 2:
            raise StreamingError(
                f"basic_window_size must be at least 2, got {basic_window_size}"
            )
        self.num_series = num_series
        self.basic_window_size = basic_window_size
        self.keep_raw = keep_raw
        self.store: Optional[ChunkStore] = (
            ChunkStore(num_series, chunk_columns, series_ids) if keep_raw else None
        )
        self._index: Optional[StatsIndex] = None
        self._pending = np.empty((num_series, 0), dtype=FLOAT_DTYPE)
        self._ingested_columns = 0

    # ------------------------------------------------------------------ state
    @property
    def ingested_columns(self) -> int:
        """Total number of columns ever appended."""
        return self._ingested_columns

    @property
    def indexed_basic_windows(self) -> int:
        """Number of complete basic windows currently in the index."""
        if self._index is None:
            return 0
        return self._index.layout.count

    @property
    def index(self) -> StatsIndex:
        """The statistics index (raises until the first basic window completes)."""
        if self._index is None:
            raise StreamingError(
                "no complete basic window has been ingested yet; append more columns"
            )
        return self._index

    @property
    def pending_columns(self) -> int:
        """Columns buffered but not yet part of a complete basic window."""
        return self._pending.shape[1]

    # ------------------------------------------------------------------ ingest
    def append(self, columns: np.ndarray) -> int:
        """Append new columns; returns the number of basic windows completed."""
        columns = np.asarray(columns, dtype=FLOAT_DTYPE)
        if columns.ndim == 1:
            columns = columns.reshape(-1, 1)
        if columns.ndim != 2 or columns.shape[0] != self.num_series:
            raise StreamingError(
                f"appended columns must have shape ({self.num_series}, k), "
                f"got {columns.shape}"
            )
        if not np.all(np.isfinite(columns)):
            raise StreamingError("appended columns must be finite")

        if self.store is not None:
            self.store.append(columns)
        self._ingested_columns += columns.shape[1]
        self._pending = np.concatenate([self._pending, columns], axis=1)

        size = self.basic_window_size
        complete = self._pending.shape[1] // size
        if complete == 0:
            return 0
        usable = self._pending[:, : complete * size]
        self._pending = self._pending[:, complete * size :]

        if self._index is None:
            self._index = StatsIndex.build(usable, basic_window_size=size)
        else:
            self._index.extend(usable)
        return complete

    def appended_history(self) -> List[int]:
        """Basic-window boundaries (column offsets) currently covered by the index."""
        if self._index is None:
            return []
        layout = self._index.layout
        return [layout.offset + i * layout.size for i in range(layout.count + 1)]
