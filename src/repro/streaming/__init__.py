"""Streaming substrate: ingestion, window bookkeeping, online monitoring (S8)."""

from repro.streaming.monitor import (
    ALERT_DENSITY_JUMP,
    ALERT_EDGE_APPEARED,
    ALERT_EDGE_DROPPED,
    ALERT_NETWORK_SHIFT,
    NetworkAlert,
    NetworkChangeMonitor,
)
from repro.streaming.online import OnlineCorrelationMonitor, OnlineWindowResult
from repro.streaming.stream import StreamIngestor
from repro.streaming.window_manager import SlidingWindowManager

__all__ = [
    "ALERT_DENSITY_JUMP",
    "ALERT_EDGE_APPEARED",
    "ALERT_EDGE_DROPPED",
    "ALERT_NETWORK_SHIFT",
    "NetworkAlert",
    "NetworkChangeMonitor",
    "OnlineCorrelationMonitor",
    "OnlineWindowResult",
    "SlidingWindowManager",
    "StreamIngestor",
]
