"""Reproduction of *Dangoron: Network Construction on Large-scale Time Series
Data across Sliding Windows* (Xu, Yang, Tao; SIGMOD-Companion 2023).

The library computes series of thresholded Pearson-correlation matrices —
dynamic correlation networks — over sliding windows of a large collection of
time series, using the paper's pruning framework (Dangoron), its benchmark
generator (Tomborg), and reimplementations of the baselines it compares
against (TSUBASA, ParCorr, StatStream, brute force).

Quick start — one session, one query family, one result protocol::

    from repro import CorrelationSession, ThresholdQuery, TopKQuery
    from repro.datasets import SyntheticUSCRN

    data = SyntheticUSCRN(num_stations=64, num_days=60).generate_anomalies()
    session = CorrelationSession(data, basic_window_size=24)

    query = ThresholdQuery(start=0, end=data.length, window=240, step=24,
                           threshold=0.7)
    result = session.run(query)                       # thresholded matrices
    print(result.describe())

    sweep = session.sweep_thresholds(query, [0.5, 0.6, 0.7, 0.8, 0.9])
    top = session.run(TopKQuery(start=0, end=data.length, window=240,
                                step=24, k=10))       # same sketch, reused
    edges = top.to_edges()                            # uniform edge records

Every result type answers ``describe()`` / ``num_windows`` /
``iter_windows()`` / ``to_edges()``, and the session's planner caches
basic-window sketches across queries, so sweeps and batches build the
dominant-cost statistics once.  The engine-level API (``DangoronEngine.run``
and friends) remains available underneath.

Subpackages
-----------
``repro.api``
    The unified front door: ``CorrelationSession``, the query spec family
    (``ThresholdQuery`` / ``TopKQuery`` / ``LaggedQuery``), the planner and
    the shared result protocol.
``repro.core``
    The Dangoron engine and its building blocks (basic-window sketch, Eq. 2
    temporal bound, triangle bound, jump scheduler).
``repro.baselines``
    Brute force, TSUBASA, ParCorr and StatStream engines behind the same API.
``repro.tomborg``
    The Tomborg benchmark data generator.
``repro.datasets``
    Synthetic climate / fMRI / finance data plus USCRN-format loaders.
``repro.timeseries``, ``repro.storage``, ``repro.streaming``
    Substrates: containers and alignment, persisted statistics, online
    ingestion and monitoring.
``repro.network``, ``repro.analysis``, ``repro.experiments``
    Network construction, accuracy/timing analysis, and the experiment
    harness regenerating every reported result.
"""

from repro.api import (
    CorrelationSession,
    LaggedQuery,
    LaggedSeriesResult,
    QueryPlanner,
    ThresholdQuery,
    TopKQuery,
)
from repro.baselines import (
    BruteForceEngine,
    ParCorrEngine,
    StatStreamEngine,
    TsubasaEngine,
)
from repro.core import (
    Edge,
    BasicWindowSketch,
    CorrelationSeriesResult,
    DangoronEngine,
    EngineStats,
    IncrementalEngine,
    SlidingCorrelationEngine,
    SlidingQuery,
    ThresholdedMatrix,
    TopKResult,
    available_engines,
    create_engine,
    sliding_lagged_correlation,
    sliding_top_k,
)
from repro.exceptions import (
    AlignmentError,
    DataValidationError,
    ExperimentError,
    GenerationError,
    QueryValidationError,
    ReproError,
    SketchError,
    StorageError,
    StreamingError,
)
from repro.timeseries import TimeAxis, TimeSeriesMatrix
from repro.tomborg import TomborgDataset, TomborgGenerator

__version__ = "1.0.0"

__all__ = [
    "AlignmentError",
    "BasicWindowSketch",
    "BruteForceEngine",
    "CorrelationSeriesResult",
    "CorrelationSession",
    "DangoronEngine",
    "DataValidationError",
    "Edge",
    "EngineStats",
    "ExperimentError",
    "GenerationError",
    "IncrementalEngine",
    "LaggedQuery",
    "LaggedSeriesResult",
    "ParCorrEngine",
    "QueryPlanner",
    "QueryValidationError",
    "ReproError",
    "SketchError",
    "SlidingCorrelationEngine",
    "SlidingQuery",
    "StatStreamEngine",
    "ThresholdQuery",
    "TopKQuery",
    "StorageError",
    "StreamingError",
    "ThresholdedMatrix",
    "TimeAxis",
    "TimeSeriesMatrix",
    "TomborgDataset",
    "TomborgGenerator",
    "TopKResult",
    "TsubasaEngine",
    "__version__",
    "available_engines",
    "create_engine",
    "sliding_lagged_correlation",
    "sliding_top_k",
]
