"""Reproduction of *Dangoron: Network Construction on Large-scale Time Series
Data across Sliding Windows* (Xu, Yang, Tao; SIGMOD-Companion 2023).

The library computes series of thresholded Pearson-correlation matrices —
dynamic correlation networks — over sliding windows of a large collection of
time series, using the paper's pruning framework (Dangoron), its benchmark
generator (Tomborg), and reimplementations of the baselines it compares
against (TSUBASA, ParCorr, StatStream, brute force).

Quick start::

    from repro import DangoronEngine, SlidingQuery
    from repro.datasets import SyntheticUSCRN

    data = SyntheticUSCRN(num_stations=64, num_days=60).generate_anomalies()
    query = SlidingQuery(start=0, end=data.length, window=240, step=24,
                         threshold=0.7)
    result = DangoronEngine(basic_window_size=24).run(data, query)
    print(result.describe())

Subpackages
-----------
``repro.core``
    The Dangoron engine and its building blocks (basic-window sketch, Eq. 2
    temporal bound, triangle bound, jump scheduler).
``repro.baselines``
    Brute force, TSUBASA, ParCorr and StatStream engines behind the same API.
``repro.tomborg``
    The Tomborg benchmark data generator.
``repro.datasets``
    Synthetic climate / fMRI / finance data plus USCRN-format loaders.
``repro.timeseries``, ``repro.storage``, ``repro.streaming``
    Substrates: containers and alignment, persisted statistics, online
    ingestion and monitoring.
``repro.network``, ``repro.analysis``, ``repro.experiments``
    Network construction, accuracy/timing analysis, and the experiment
    harness regenerating every reported result.
"""

from repro.baselines import (
    BruteForceEngine,
    ParCorrEngine,
    StatStreamEngine,
    TsubasaEngine,
)
from repro.core import (
    BasicWindowSketch,
    CorrelationSeriesResult,
    DangoronEngine,
    EngineStats,
    IncrementalEngine,
    SlidingCorrelationEngine,
    SlidingQuery,
    ThresholdedMatrix,
    TopKResult,
    available_engines,
    create_engine,
    sliding_lagged_correlation,
    sliding_top_k,
)
from repro.exceptions import (
    AlignmentError,
    DataValidationError,
    ExperimentError,
    GenerationError,
    QueryValidationError,
    ReproError,
    SketchError,
    StorageError,
    StreamingError,
)
from repro.timeseries import TimeAxis, TimeSeriesMatrix
from repro.tomborg import TomborgDataset, TomborgGenerator

__version__ = "1.0.0"

__all__ = [
    "AlignmentError",
    "BasicWindowSketch",
    "BruteForceEngine",
    "CorrelationSeriesResult",
    "DangoronEngine",
    "DataValidationError",
    "EngineStats",
    "ExperimentError",
    "GenerationError",
    "IncrementalEngine",
    "ParCorrEngine",
    "QueryValidationError",
    "ReproError",
    "SketchError",
    "SlidingCorrelationEngine",
    "SlidingQuery",
    "StatStreamEngine",
    "StorageError",
    "StreamingError",
    "ThresholdedMatrix",
    "TimeAxis",
    "TimeSeriesMatrix",
    "TomborgDataset",
    "TomborgGenerator",
    "TopKResult",
    "TsubasaEngine",
    "__version__",
    "available_engines",
    "create_engine",
    "sliding_lagged_correlation",
    "sliding_top_k",
]
