"""Exception hierarchy for the Dangoron reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single type at API boundaries while still distinguishing the precise
failure mode when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DataValidationError(ReproError):
    """Raised when input time-series data is malformed.

    Examples: a matrix that is not two-dimensional, contains non-finite
    values where finite values are required, or has fewer than two
    observations per series.
    """


class QueryValidationError(ReproError):
    """Raised when a sliding-window query is inconsistent.

    Examples: a window longer than the query range, a non-positive sliding
    step, a threshold outside ``[-1, 1]``, or a query range that does not lie
    inside the stored series.
    """


class AlignmentError(ReproError):
    """Raised when non-synchronized series cannot be aligned onto a grid."""


class SketchError(ReproError):
    """Raised when a sketch is built or queried inconsistently.

    Examples: querying a window that is not covered by the sketch, or
    combining statistics computed with different basic-window layouts.
    """


class StorageError(ReproError):
    """Raised by the storage substrate (chunk store, catalog, persistence)."""


class StreamingError(ReproError):
    """Raised by the streaming substrate (out-of-order appends, shape drift)."""


class GenerationError(ReproError):
    """Raised by the Tomborg generator and the dataset simulators.

    Examples: a target correlation matrix that cannot be repaired to be
    positive semi-definite, or inconsistent segment specifications.
    """


class ExperimentError(ReproError):
    """Raised by the experiment runner when a configuration is unusable."""


class ServiceError(ReproError):
    """Raised by the correlation query service and its client.

    Examples: a request for an unknown dataset or route, a malformed JSON
    body, a wire payload whose schema or kind is not understood, or (on the
    client side) a non-2xx HTTP response — the server's error message is
    preserved and the HTTP status is carried on the ``status`` attribute.
    """

    def __init__(
        self, message: str, status: int = 400, retry_after: "float | None" = None
    ) -> None:
        super().__init__(message)
        self.status = status
        #: Seconds after which the client should retry (the server's
        #: ``Retry-After`` header); set on load-shedding 429 responses.
        self.retry_after = retry_after


class ParallelError(ReproError):
    """Raised by the sharded parallel executor.

    Examples: asking for a sharded run of an engine that does not support
    pair subsets, an invalid worker count or execution mode, or a pair
    partition that does not cover the pair space exactly once.
    """


class LintError(ReproError):
    """Raised by the ``repro.devtools`` static-analysis framework.

    Examples: a lint path that does not exist, a baseline file that cannot
    be parsed, an unknown rule code passed to ``--rules``, or a source file
    with a syntax error (the linter cannot vouch for code it cannot parse).
    """
