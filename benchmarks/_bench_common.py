"""Shared configuration and helpers for the benchmark modules.

Kept outside ``conftest.py`` so benchmark modules can import it directly
(``conftest.py`` is reserved for pytest fixture discovery).
"""

from __future__ import annotations

import os

#: Benchmark workload scale; override with REPRO_BENCH_SCALE=1.0 for
#: paper-like sizes (~128 stations, four months of hourly data).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: Threshold used by the headline experiments (the paper's beta).
BENCH_THRESHOLD = float(os.environ.get("REPRO_BENCH_THRESHOLD", "0.7"))


def print_experiment_table(result) -> None:
    """Print an ExperimentResult table (visible with ``-s``; recorded in logs)."""
    print()
    print(result.table())
    if result.notes:
        print(f"[{result.experiment_id}] workload: {result.notes}")
