"""E3 — Tomborg robustness sweep across correlation distributions and spectra.

The paper's stated purpose for Tomborg is "generating time series datasets to
test framework robustness" on "datasets with varying distributions".  This
module runs Dangoron over Tomborg workloads whose correlation-value
distribution and spectrum shape vary, timing each configuration and printing
the recall/F1 table (E3).
"""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e3_tomborg_robustness
from repro.experiments.workloads import tomborg_workload

from _bench_common import BENCH_SCALE, print_experiment_table

CONFIGS = [
    ("bimodal", "flat"),
    ("bimodal", "power_law"),
    ("bimodal", "peaked"),
    ("uniform", "power_law"),
    ("sparse", "power_law"),
    ("beta", "band"),
]


@pytest.mark.parametrize("distribution,spectrum", CONFIGS)
def test_e3_dangoron_across_distributions(benchmark, distribution, spectrum):
    workload = tomborg_workload(
        scale=BENCH_SCALE * 0.8, distribution=distribution, spectrum=spectrum
    )
    engine = DangoronEngine(basic_window_size=workload.basic_window_size)
    result = benchmark(engine.run, workload.matrix, workload.query)
    reference = BruteForceEngine().run(workload.matrix, workload.query)
    report = compare_results(result, reference)
    # Robustness claim: exactness of reported edges never degrades with the
    # data distribution, and recall stays usable.  The uniform target places
    # most pairs just below the threshold — the adversarial case for Eq. 2
    # jumping — so the floor here is looser than the paper's 0.9 headline;
    # EXPERIMENTS.md records the per-configuration measured recall.
    assert report.precision == pytest.approx(1.0)
    assert report.recall >= 0.75


def test_e3_robustness_table(benchmark):
    result = benchmark.pedantic(
        experiment_e3_tomborg_robustness,
        kwargs={"scale": BENCH_SCALE * 0.6},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    recall_index = result.headers.index("recall")
    dangoron_rows = [row for row in result.rows if row[2].startswith("dangoron")]
    assert dangoron_rows
    assert all(row[recall_index] >= 0.75 for row in dangoron_rows)
