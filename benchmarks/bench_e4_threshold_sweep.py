"""E4 — threshold sweep: how pruning effectiveness scales with beta (Fig. 2).

Dangoron's temporal jumping skips a pair's windows while its Eq. 2 bound stays
below the threshold, so the higher (sparser) the threshold, the more work is
skipped.  This module times Dangoron at several thresholds and prints the
evaluation-fraction / speedup / recall table (E4).
"""

import pytest

from repro.api import CorrelationSession
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e4_threshold_sweep

from _bench_common import BENCH_SCALE, print_experiment_table

THRESHOLDS = [0.5, 0.6, 0.7, 0.8, 0.9]


@pytest.mark.parametrize("beta", THRESHOLDS)
def test_e4_dangoron_at_threshold(benchmark, climate_bench_workload, beta):
    workload = climate_bench_workload
    query = workload.query.with_threshold(beta)
    engine = DangoronEngine(basic_window_size=workload.basic_window_size)
    result = benchmark(engine.run, workload.matrix, query)
    assert result.stats.evaluation_fraction <= 1.0


def test_e4_session_sweep_reuses_sketch(benchmark, climate_bench_workload):
    """The whole sweep through one CorrelationSession: the planner shares a
    single sketch build across the five thresholds (the seed rebuilt it per
    run), which is the unified API's headline hot-path win."""
    workload = climate_bench_workload

    def sweep():
        session = CorrelationSession(
            workload.matrix, basic_window_size=workload.basic_window_size
        )
        results = session.sweep_thresholds(workload.query, THRESHOLDS)
        assert session.sketch_cache.builds == 1
        assert session.cache_stats.hits == len(THRESHOLDS) - 1
        return results

    results = benchmark(sweep)
    assert len(results) == len(THRESHOLDS)


def test_e4_threshold_table(benchmark):
    result = benchmark.pedantic(
        experiment_e4_threshold_sweep,
        kwargs={"scale": BENCH_SCALE, "thresholds": tuple(THRESHOLDS)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    eval_index = result.headers.index("eval_fraction")
    recall_index = result.headers.index("recall")
    fractions = [row[eval_index] for row in result.rows]
    # Monotone trend: higher thresholds never require more exact evaluations.
    assert all(b <= a + 0.02 for a, b in zip(fractions, fractions[1:]))
    assert all(row[recall_index] >= 0.85 for row in result.rows)
