"""E12 — top-k correlated pair queries: sketch recombination vs brute force.

Times the sketch-based and the direct top-k paths across k and prints the
agreement table (pair-set overlap per window) plus the per-k data-driven
threshold the top-k result suggests.
"""

import pytest

from repro.core.topk import sliding_top_k, top_k_brute_force
from repro.experiments.ablations import experiment_e12_topk

from _bench_common import BENCH_SCALE, print_experiment_table


@pytest.mark.parametrize("k", [5, 50])
def test_e12_sketch_topk_runtime(benchmark, climate_bench_workload, k):
    workload = climate_bench_workload
    result = benchmark(
        sliding_top_k,
        workload.matrix,
        workload.query,
        k,
        workload.basic_window_size,
    )
    assert result.num_windows == workload.query.num_windows
    assert all(window.k == k for window in result)


@pytest.mark.parametrize("k", [5])
def test_e12_brute_force_topk_runtime(benchmark, climate_bench_workload, k):
    workload = climate_bench_workload
    result = benchmark(top_k_brute_force, workload.matrix, workload.query, k)
    assert result.num_windows == workload.query.num_windows


def test_e12_table(benchmark):
    result = benchmark.pedantic(
        experiment_e12_topk,
        kwargs={"scale": BENCH_SCALE, "ks": (1, 5, 10, 50)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    overlap_index = result.headers.index("mean_overlap")
    assert all(row[overlap_index] >= 0.95 for row in result.rows)
