"""E11 — incremental rolling sums vs Dangoron vs TSUBASA across step sizes.

The incremental engine updates raw sufficient statistics in O(N^2 * eta) per
slide regardless of the threshold; Dangoron's work shrinks with the edge
density instead.  This module times the three engines at a small and a large
sliding step and prints the E11 table, whose crossover EXPERIMENTS.md records.
"""

import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.incremental import IncrementalEngine
from repro.core.query import SlidingQuery
from repro.experiments.ablations import experiment_e11_incremental

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

ENGINES = {
    "tsubasa": lambda b: TsubasaEngine(basic_window_size=b),
    "dangoron": lambda b: DangoronEngine(basic_window_size=b),
    "incremental": lambda b: IncrementalEngine(),
}


@pytest.mark.parametrize("step", [24, 168])
@pytest.mark.parametrize("engine_name", list(ENGINES))
def test_e11_engine_by_step(benchmark, climate_bench_workload, engine_name, step):
    workload = climate_bench_workload
    query = SlidingQuery(
        start=0,
        end=workload.matrix.length,
        window=workload.query.window,
        step=step,
        threshold=BENCH_THRESHOLD,
    )
    engine = ENGINES[engine_name](workload.basic_window_size)
    result = benchmark(engine.run, workload.matrix, query)
    assert result.num_windows == query.num_windows


def test_e11_table(benchmark):
    result = benchmark.pedantic(
        experiment_e11_incremental,
        kwargs={"scale": BENCH_SCALE, "steps": (24, 72, 168)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    recall_index = result.headers.index("recall")
    incremental_rows = [r for r in result.rows if r[2].startswith("incremental")]
    assert incremental_rows
    # The rolling-sums engine is exact at every step size.
    assert all(r[recall_index] == pytest.approx(1.0) for r in incremental_rows)
