"""E14 — horizontal pruning pivot count: pruning power vs pivot analysis cost.

With temporal pruning disabled, each window pays ``num_pivots * N`` exact
evaluations to bound all pairs; the table shows the fraction of pairs the
triangle bound then prunes and the resulting net query time.
"""

import pytest

from repro.core.dangoron import DangoronEngine
from repro.experiments.ablations import experiment_e14_pivot_count

from _bench_common import BENCH_SCALE, print_experiment_table


@pytest.mark.parametrize("num_pivots", [1, 4, 8])
def test_e14_pivot_runtime(benchmark, climate_bench_workload, num_pivots):
    workload = climate_bench_workload
    query = workload.query.with_threshold(0.75)
    engine = DangoronEngine(
        basic_window_size=workload.basic_window_size,
        use_temporal_pruning=False,
        use_horizontal_pruning=True,
        num_pivots=num_pivots,
    )
    result = benchmark(engine.run, workload.matrix, query)
    assert result.num_windows == query.num_windows


def test_e14_table(benchmark):
    result = benchmark.pedantic(
        experiment_e14_pivot_count,
        kwargs={"scale": BENCH_SCALE, "pivot_counts": (1, 2, 4, 8)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    recall_index = result.headers.index("recall")
    # The triangle bound is exact: horizontal pruning never loses an edge.
    assert all(row[recall_index] == pytest.approx(1.0) for row in result.rows)
