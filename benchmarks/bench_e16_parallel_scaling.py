"""E16 — parallel scaling of sharded pair-space execution (ROADMAP north star).

The E5 scalability workload (USCRN-like climate data, 30-day window sliding
daily) is rerun here through :class:`repro.parallel.ShardedExecutor` at
increasing worker counts.  Two claims are checked:

* **Determinism** — sharded results (thread and process mode) are
  bit-identical to the serial engine run: same edges, same float values,
  same per-window ordering.  Asserted unconditionally on every machine.
* **Scaling** — sharding TSUBASA, the Θ(N²)-per-window engine whose pair
  work dominates E5, must clear :func:`speedup_floor` over the serial run at
  the top worker count (1.8x at >= 4 workers, 1.3x at 2–3).  Asserted only
  when the machine actually has that many usable cores; otherwise the timing
  table is still printed and the assertion is skipped.

Dangoron rows are reported for reference without a floor: at the paper's
beta=0.7 its pruning leaves sub-second residual work on this workload, so
pool startup dominates — sharding Dangoron pays off at larger N or lower
thresholds, not here.  ``REPRO_BENCH_WORKERS`` caps the worker ladder (CI
smoke uses 2); ``REPRO_BENCH_SCALE`` scales the workload as everywhere else.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.sketch import BasicWindowSketch
from repro.experiments.workloads import climate_workload
from repro.parallel import MODE_PROCESS, MODE_THREAD, ShardedExecutor, available_workers

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

#: Top of the worker ladder (and the count the speedup floor applies to).
#: Any value >= 1 works; the ladder always ends exactly at this count.
MAX_WORKERS = max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "4")))

#: Sharded worker counts to time: powers of two below the top, then the top.
WORKER_COUNTS = [w for w in (2, 4, 8, 16) if w < MAX_WORKERS]
if MAX_WORKERS > 1:
    WORKER_COUNTS.append(MAX_WORKERS)


def speedup_floor(workers: int) -> float:
    """Minimum sharded-TSUBASA speedup over serial at a given worker count."""
    return 1.8 if workers >= 4 else 1.3


def _identical(serial, sharded) -> bool:
    return serial.num_windows == sharded.num_windows and all(
        np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.values, b.values)
        for a, b in zip(serial.matrices, sharded.matrices)
    )


@pytest.fixture(scope="module")
def e5_workload():
    """The E5 workload at twice the bench scale (pair work must dominate)."""
    return climate_workload(
        scale=BENCH_SCALE * 4, threshold=BENCH_THRESHOLD, window_hours=1440
    )


@pytest.fixture(scope="module")
def small_workload():
    """A quick workload for the determinism checks."""
    return climate_workload(
        scale=BENCH_SCALE, threshold=BENCH_THRESHOLD, window_hours=1440
    )


@pytest.mark.parametrize("engine_name", ["dangoron", "tsubasa"])
@pytest.mark.parametrize("mode", [MODE_THREAD, MODE_PROCESS])
def test_e16_sharded_bit_identical(small_workload, engine_name, mode):
    """Sharded execution reproduces the serial result bit for bit."""
    workload = small_workload
    if engine_name == "tsubasa":
        engine = TsubasaEngine(basic_window_size=workload.basic_window_size)
    else:
        engine = DangoronEngine(basic_window_size=workload.basic_window_size)
    sketch = BasicWindowSketch.build(
        workload.matrix.values, engine.plan_layout(workload.query)
    )
    serial = engine.run(workload.matrix, workload.query, sketch=sketch)
    sharded = ShardedExecutor(workers=4, mode=mode).run(
        engine, workload.matrix, workload.query, sketch=sketch
    )
    assert _identical(serial, sharded)
    assert sharded.stats.exact_evaluations == serial.stats.exact_evaluations
    assert sharded.stats.candidate_pairs == serial.stats.candidate_pairs


def test_e16_parallel_scaling(e5_workload):
    """Timing table: serial vs sharded at 1..MAX_WORKERS workers, both engines."""
    workload = e5_workload
    engines = {
        "tsubasa": TsubasaEngine(basic_window_size=workload.basic_window_size),
        "dangoron": DangoronEngine(basic_window_size=workload.basic_window_size),
    }
    rows = []
    speedups = {}
    for name, engine in engines.items():
        sketch = BasicWindowSketch.build(
            workload.matrix.values, engine.plan_layout(workload.query)
        )
        started = time.perf_counter()
        serial = engine.run(workload.matrix, workload.query, sketch=sketch)
        serial_seconds = time.perf_counter() - started
        rows.append([name, "serial", 1, round(serial_seconds, 4), 1.0])
        for workers in WORKER_COUNTS:
            executor = ShardedExecutor(workers=workers, mode=MODE_PROCESS)
            started = time.perf_counter()
            sharded = executor.run(
                engine, workload.matrix, workload.query, sketch=sketch
            )
            seconds = time.perf_counter() - started
            assert _identical(serial, sharded)
            speedup = serial_seconds / seconds if seconds > 0 else float("inf")
            speedups[(name, workers)] = speedup
            rows.append([name, "sharded", workers, round(seconds, 4),
                         round(speedup, 2)])

    class _Table:
        experiment_id = "E16"
        notes = workload.describe()
        headers = ["engine", "execution", "workers", "wall_seconds", "speedup"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    if MAX_WORKERS < 2:
        pytest.skip("REPRO_BENCH_WORKERS=1: nothing to scale")
    floor = speedup_floor(MAX_WORKERS)
    usable = available_workers()
    if usable < MAX_WORKERS:
        pytest.skip(
            f"speedup floor needs {MAX_WORKERS} usable cores, "
            f"this machine exposes {usable}"
        )
    assert speedups[("tsubasa", MAX_WORKERS)] >= floor, (
        f"sharded tsubasa at {MAX_WORKERS} workers reached only "
        f"{speedups[('tsubasa', MAX_WORKERS)]:.2f}x (floor {floor}x)"
    )
