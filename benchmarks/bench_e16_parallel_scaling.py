"""E16 — parallel scaling of sharded pair-space execution (ROADMAP north star).

The E5 scalability workload (USCRN-like climate data, 30-day window sliding
daily) is rerun here through :class:`repro.parallel.ShardedExecutor` at
increasing worker counts.  Two claims are checked:

* **Determinism** — sharded results (thread and process mode) are
  bit-identical to the serial engine run: same edges, same float values,
  same per-window ordering.  Asserted unconditionally on every machine.
* **Scaling** — sharding TSUBASA, the Θ(N²)-per-window engine whose pair
  work dominates E5, must clear :func:`speedup_floor` over the serial run at
  the top worker count (1.8x at >= 4 workers, 1.3x at 2–3).  Asserted only
  when the machine actually has that many usable cores; otherwise the timing
  table is still printed and the assertion is skipped.

Dangoron rows are reported for reference without a floor: at the paper's
beta=0.7 its pruning leaves sub-second residual work on this workload, so
pool startup dominates — sharding Dangoron pays off at larger N or lower
thresholds, not here.  ``REPRO_BENCH_WORKERS`` caps the worker ladder (CI
smoke uses 2); ``REPRO_BENCH_SCALE`` scales the workload as everywhere else.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.lag import sliding_lagged_correlation
from repro.core.sketch import BasicWindowSketch
from repro.core.topk import sliding_top_k
from repro.experiments.workloads import climate_workload
from repro.parallel import MODE_PROCESS, MODE_THREAD, ShardedExecutor, available_workers

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

#: Machine-readable record of the scenario-matrix scaling phase (wall times,
#: speedup ratios, environment) — committed at the repo root per ROADMAP.
BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_7.json"

#: Top of the worker ladder (and the count the speedup floor applies to).
#: Any value >= 1 works; the ladder always ends exactly at this count.
MAX_WORKERS = max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "4")))

#: Sharded worker counts to time: powers of two below the top, then the top.
WORKER_COUNTS = [w for w in (2, 4, 8, 16) if w < MAX_WORKERS]
if MAX_WORKERS > 1:
    WORKER_COUNTS.append(MAX_WORKERS)


def speedup_floor(workers: int) -> float:
    """Minimum sharded-TSUBASA speedup over serial at a given worker count."""
    return 1.8 if workers >= 4 else 1.3


def family_speedup_floor(workers: int) -> float:
    """Minimum sharded speedup for the lagged/top-k phase.

    Lower than the TSUBASA floor: both paths re-gather per-pair rows in each
    shard (instead of one dense matmul), so perfect scaling is not on the
    table — but >= 1.5x at four workers is, and regressing below it means
    the sharded paths stopped paying for themselves.
    """
    return 1.5 if workers >= 4 else 1.2


def _identical(serial, sharded) -> bool:
    return serial.num_windows == sharded.num_windows and all(
        np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.values, b.values)
        for a, b in zip(serial.matrices, sharded.matrices)
    )


@pytest.fixture(scope="module")
def e5_workload():
    """The E5 workload at twice the bench scale (pair work must dominate)."""
    return climate_workload(
        scale=BENCH_SCALE * 4, threshold=BENCH_THRESHOLD, window_hours=1440
    )


@pytest.fixture(scope="module")
def small_workload():
    """A quick workload for the determinism checks."""
    return climate_workload(
        scale=BENCH_SCALE, threshold=BENCH_THRESHOLD, window_hours=1440
    )


@pytest.mark.parametrize("engine_name", ["dangoron", "tsubasa"])
@pytest.mark.parametrize("mode", [MODE_THREAD, MODE_PROCESS])
def test_e16_sharded_bit_identical(small_workload, engine_name, mode):
    """Sharded execution reproduces the serial result bit for bit."""
    workload = small_workload
    if engine_name == "tsubasa":
        engine = TsubasaEngine(basic_window_size=workload.basic_window_size)
    else:
        engine = DangoronEngine(basic_window_size=workload.basic_window_size)
    sketch = BasicWindowSketch.build(
        workload.matrix.values, engine.plan_layout(workload.query)
    )
    serial = engine.run(workload.matrix, workload.query, sketch=sketch)
    sharded = ShardedExecutor(workers=4, mode=mode).run(
        engine, workload.matrix, workload.query, sketch=sketch
    )
    assert _identical(serial, sharded)
    assert sharded.stats.exact_evaluations == serial.stats.exact_evaluations
    assert sharded.stats.candidate_pairs == serial.stats.candidate_pairs


def test_e16_parallel_scaling(e5_workload):
    """Timing table: serial vs sharded at 1..MAX_WORKERS workers, both engines."""
    workload = e5_workload
    engines = {
        "tsubasa": TsubasaEngine(basic_window_size=workload.basic_window_size),
        "dangoron": DangoronEngine(basic_window_size=workload.basic_window_size),
    }
    rows = []
    speedups = {}
    for name, engine in engines.items():
        sketch = BasicWindowSketch.build(
            workload.matrix.values, engine.plan_layout(workload.query)
        )
        started = time.perf_counter()
        serial = engine.run(workload.matrix, workload.query, sketch=sketch)
        serial_seconds = time.perf_counter() - started
        rows.append([name, "serial", 1, round(serial_seconds, 4), 1.0])
        for workers in WORKER_COUNTS:
            executor = ShardedExecutor(workers=workers, mode=MODE_PROCESS)
            started = time.perf_counter()
            sharded = executor.run(
                engine, workload.matrix, workload.query, sketch=sketch
            )
            seconds = time.perf_counter() - started
            assert _identical(serial, sharded)
            speedup = serial_seconds / seconds if seconds > 0 else float("inf")
            speedups[(name, workers)] = speedup
            rows.append([name, "sharded", workers, round(seconds, 4),
                         round(speedup, 2)])

    class _Table:
        experiment_id = "E16"
        notes = workload.describe()
        headers = ["engine", "execution", "workers", "wall_seconds", "speedup"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    if MAX_WORKERS < 2:
        pytest.skip("REPRO_BENCH_WORKERS=1: nothing to scale")
    floor = speedup_floor(MAX_WORKERS)
    usable = available_workers()
    if usable < MAX_WORKERS:
        pytest.skip(
            f"speedup floor needs {MAX_WORKERS} usable cores, "
            f"this machine exposes {usable}"
        )
    assert speedups[("tsubasa", MAX_WORKERS)] >= floor, (
        f"sharded tsubasa at {MAX_WORKERS} workers reached only "
        f"{speedups[('tsubasa', MAX_WORKERS)]:.2f}x (floor {floor}x)"
    )


# ---------------------------------------------------------------------------
# Scenario-matrix phase: lagged and top-k queries through the sharded
# executor.  Same two claims as the threshold phase — bit-identity on every
# machine, a speedup floor (family_speedup_floor) where the cores exist —
# plus a machine-readable record (BENCH_7.json) of walls, ratios and env.
# ---------------------------------------------------------------------------
LAGGED_MAX_LAG = 3
TOPK_K = 50


def _lagged_identical(serial, sharded) -> bool:
    return len(serial) == len(sharded) and all(
        a.window_index == b.window_index
        and np.array_equal(a.best_corr, b.best_corr)
        and np.array_equal(a.best_lag, b.best_lag)
        for a, b in zip(serial, sharded)
    )


def _topk_identical(serial, sharded) -> bool:
    return serial.num_windows == sharded.num_windows and all(
        a.window_index == b.window_index
        and np.array_equal(a.rows, b.rows)
        and np.array_equal(a.cols, b.cols)
        and np.array_equal(a.values, b.values)
        for a, b in zip(serial.windows, sharded.windows)
    )


@pytest.fixture(scope="module")
def topk_workload():
    """Top-k pair work scales as N² per window: twice the bench scale."""
    return climate_workload(
        scale=BENCH_SCALE * 2, threshold=BENCH_THRESHOLD, window_hours=1440
    )


def test_e16_lagged_topk_scaling(small_workload, topk_workload):
    """Timing ladder for the scenario-matrix families; records BENCH_7.json."""
    serial_runs = {
        "lagged": lambda: sliding_lagged_correlation(
            small_workload.matrix, small_workload.query, LAGGED_MAX_LAG
        ),
        "topk": lambda: sliding_top_k(
            topk_workload.matrix,
            topk_workload.query,
            TOPK_K,
            basic_window_size=topk_workload.basic_window_size,
        ),
    }
    sharded_runs = {
        "lagged": lambda executor: executor.run_lagged(
            small_workload.matrix, small_workload.query, LAGGED_MAX_LAG
        ),
        "topk": lambda executor: executor.run_topk(
            topk_workload.matrix,
            topk_workload.query,
            TOPK_K,
            basic_window_size=topk_workload.basic_window_size,
        ),
    }
    identical = {"lagged": _lagged_identical, "topk": _topk_identical}

    rows = []
    speedups = {}
    for family in ("lagged", "topk"):
        started = time.perf_counter()
        serial = serial_runs[family]()
        serial_seconds = time.perf_counter() - started
        rows.append([family, "serial", 1, round(serial_seconds, 4), 1.0])
        for workers in WORKER_COUNTS:
            executor = ShardedExecutor(workers=workers, mode=MODE_PROCESS)
            started = time.perf_counter()
            sharded = sharded_runs[family](executor)
            seconds = time.perf_counter() - started
            assert identical[family](serial, sharded)
            speedup = serial_seconds / seconds if seconds > 0 else float("inf")
            speedups[(family, workers)] = speedup
            rows.append([family, "sharded", workers, round(seconds, 4),
                         round(speedup, 2)])

    class _Table:
        experiment_id = "E16-matrix"
        notes = (
            f"lagged: {small_workload.describe()} max_lag={LAGGED_MAX_LAG}; "
            f"topk: {topk_workload.describe()} k={TOPK_K}"
        )
        headers = ["family", "execution", "workers", "wall_seconds", "speedup"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    usable = available_workers()
    floor = family_speedup_floor(MAX_WORKERS)
    floor_enforced = MAX_WORKERS >= 2 and usable >= MAX_WORKERS
    BENCH_RECORD.write_text(json.dumps({
        "bench": "E16 scenario-matrix scaling (lagged + top-k sharded)",
        "rows": [dict(zip(_Table.headers, row)) for row in rows],
        "speedups": {
            f"{family}@{workers}": round(ratio, 4)
            for (family, workers), ratio in speedups.items()
        },
        "floor": {
            "workers": MAX_WORKERS,
            "min_speedup": floor,
            "enforced": floor_enforced,
        },
        "workloads": _Table.notes,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus_usable": usable,
            "REPRO_BENCH_SCALE": BENCH_SCALE,
            "REPRO_BENCH_WORKERS": MAX_WORKERS,
        },
    }, indent=2) + "\n")

    if MAX_WORKERS < 2:
        pytest.skip("REPRO_BENCH_WORKERS=1: nothing to scale")
    if not floor_enforced:
        pytest.skip(
            f"speedup floor needs {MAX_WORKERS} usable cores, "
            f"this machine exposes {usable}"
        )
    for family in ("lagged", "topk"):
        assert speedups[(family, MAX_WORKERS)] >= floor, (
            f"sharded {family} at {MAX_WORKERS} workers reached only "
            f"{speedups[(family, MAX_WORKERS)]:.2f}x (floor {floor}x)"
        )
