"""E19 — planner decision quality: chosen plan vs best-of-all-plans oracle.

The cost-based planner's end-to-end contract: after its feedback loop has
observed every candidate of a decision, the plan it *chooses* must be
near-optimal against an oracle that simply runs every candidate and keeps
the best.  Per workload in the grid:

1. **Warm** the shared sketch cache (the decision under test is the
   execution/build choice, not the one-time build).
2. **Explore** — enumerate ``candidate_plans`` and execute each candidate
   ``TRIALS`` times through ``QueryPlanner.execute``, which records every
   observed wall in the cache's :class:`~repro.api.cost.FeedbackStore`.
3. **Choose** — ``planner.plan`` now ranks by observed runtimes
   (``cost_source`` must say ``feedback(n=...)``) and the chosen
   candidate's mean wall must be within ``REGRET_CEILING`` (1.3x) of the
   oracle's best mean, plus a small absolute epsilon so micro-workloads
   whose candidates differ by microseconds cannot flake the ratio.

Results are recorded in ``BENCH_9.json`` (the ``oracle_over_chosen_ratio``
column is <= 1.0 and higher-is-better for ``scripts/compare_bench.py``).
``REPRO_BENCH_SCALE`` scales the matrix; the regret ceiling is enforced at
every scale.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.api import QueryPlanner, ThresholdQuery, TopKQuery
from repro.config import FLOAT_DTYPE
from repro.timeseries.matrix import TimeSeriesMatrix

from _bench_common import BENCH_SCALE, print_experiment_table

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_9.json"

NUM_SERIES = max(24, int(48 * BENCH_SCALE))
LENGTH = max(2048, int(4096 * BENCH_SCALE))
WINDOW = 256
STEP = 128
BASIC = 32

#: The asserted ceiling: chosen mean wall <= 1.3x the oracle's best mean.
REGRET_CEILING = 1.3
#: Absolute slack for micro-workloads where candidates differ by less than
#: timer noise; 20ms is far below any real mis-decision at these sizes.
REGRET_EPSILON = 0.02

#: Explore executions per candidate — at least MIN_FEEDBACK_SAMPLES (3) so
#: the choose phase is guaranteed to rank by feedback, plus one discarded
#: warm-up run.
TRIALS = 3


def _matrix(seed: int = 20260808) -> TimeSeriesMatrix:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(LENGTH)
    values = 0.5 * base + rng.standard_normal((NUM_SERIES, LENGTH))
    return TimeSeriesMatrix(values)


def _workloads(matrix: TimeSeriesMatrix):
    """(name, planner, query) triples, each with a real multi-candidate choice."""
    dense_bytes = NUM_SERIES * LENGTH * np.dtype(FLOAT_DTYPE).itemsize
    bounds = dict(start=0, end=LENGTH, window=WINDOW, step=STEP)
    return [
        (
            "threshold-workers",
            QueryPlanner(
                basic_window_size=BASIC,
                workers=4,
                parallel_min_pairs=1,
                parallel_mode="thread",
            ),
            ThresholdQuery(threshold=0.5, **bounds),
        ),
        (
            "threshold-tile-size",
            QueryPlanner(basic_window_size=BASIC, memory_budget=dense_bytes // 2),
            ThresholdQuery(threshold=0.5, **bounds),
        ),
        (
            "topk-workers",
            QueryPlanner(
                basic_window_size=BASIC,
                workers=2,
                parallel_min_pairs=1,
                parallel_mode="thread",
            ),
            TopKQuery(k=10, **bounds),
        ),
    ]


def _candidate_label(plan) -> str:
    execution = (
        f"sharded({plan.workers}w)" if plan.execution == "sharded" else "serial"
    )
    build = plan.sketch_build
    if plan.sketch_build == "tiled" and plan.memory_budget is not None:
        build = f"tiled@{plan.memory_budget}B"
    return f"{execution}+{build}"


def test_e19_learned_choice_tracks_the_oracle():
    """Explore every candidate, then assert the learned choice is near-best."""
    matrix = _matrix()
    rows = []
    for name, planner, query in _workloads(matrix):
        candidates = planner.candidate_plans(matrix, query)
        assert len(candidates) > 1, f"{name} offers no real choice"
        if candidates[0].layout is not None:
            # Warm the sketch so every explore run measures the decision
            # (scan/merge/stream), not the shared one-time build, and
            # re-enumerate so the candidate keys carry the warm state.
            planner.execute(matrix, candidates[0])
            planner.sketch_cache.feedback.clear()
            candidates = planner.candidate_plans(matrix, query)

        walls = {}
        for plan in candidates:
            label = _candidate_label(plan)
            planner.execute(matrix, plan)  # discarded warm-up (still recorded)
            observed = []
            for _ in range(TRIALS):
                started = time.perf_counter()
                planner.execute(matrix, plan)
                observed.append(time.perf_counter() - started)
            walls[label] = sum(observed) / len(observed)

        chosen = planner.plan(matrix, query)
        assert chosen.cost_source.startswith("feedback("), (
            f"{name}: choose phase still on {chosen.cost_source} after "
            f"{TRIALS + 1} observations per candidate"
        )
        chosen_label = _candidate_label(chosen)
        chosen_wall = walls[chosen_label]
        oracle_label, oracle_wall = min(walls.items(), key=lambda item: item[1])
        ratio = oracle_wall / chosen_wall if chosen_wall > 0 else 1.0
        rows.append(
            [
                name,
                chosen_label,
                oracle_label,
                round(chosen_wall, 5),
                round(oracle_wall, 5),
                round(ratio, 4),
            ]
        )
        assert chosen_wall <= REGRET_CEILING * oracle_wall + REGRET_EPSILON, (
            f"{name}: planner chose {chosen_label} ({chosen_wall:.5f}s) but "
            f"the oracle's best is {oracle_label} ({oracle_wall:.5f}s) — "
            f"regret exceeds {REGRET_CEILING}x + {REGRET_EPSILON}s\n"
            f"plan: {chosen.describe()}"
        )

    class _Table:
        experiment_id = "E19-planner-quality"
        notes = (
            f"N={NUM_SERIES} L={LENGTH} b={BASIC} window={WINDOW} "
            f"step={STEP}; {TRIALS} scored runs per candidate after one "
            f"warm-up; ceiling {REGRET_CEILING}x + {REGRET_EPSILON}s"
        )
        headers = [
            "workload",
            "chosen",
            "oracle_best",
            "chosen_wall_seconds",
            "oracle_wall_seconds",
            "oracle_over_chosen_ratio",
        ]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    BENCH_RECORD.write_text(json.dumps({
        "bench": "E19 planner quality (learned choice vs best-of-all oracle)",
        "rows": [dict(zip(_Table.headers, row)) for row in rows],
        "ceiling": {
            "max_regret_ratio": REGRET_CEILING,
            "epsilon_seconds": REGRET_EPSILON,
            "enforced": True,
        },
        "workloads": _Table.notes,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "REPRO_BENCH_SCALE": BENCH_SCALE,
        },
    }, indent=2) + "\n")
