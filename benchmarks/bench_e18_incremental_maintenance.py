"""E18 — O(Δ) sketch maintenance: refresh-after-append vs rebuild.

The incremental-maintenance tentpole, measured end to end:

* **Refresh vs rebuild** — a sketch cache warmed on ``HISTORY`` columns
  receives a Δ-column append and refreshes its sketch through the
  fingerprint chain (``extend_chain`` + ``get_or_extend``: hash Δ, compute
  Δ's basic-window statistics, concatenate).  The alternative — what a
  cache without chaining does after every append — rebuilds the sketch from
  scratch over ``HISTORY + Δ`` columns, fingerprint hashing included.  With
  ``HISTORY / Δ = 16`` the refresh must win by **at least 5x** (the floor
  leaves >3x headroom for the per-call overhead that does not scale with
  history), and the refreshed sketch must be **bit-identical** to the
  rebuilt one.

* **Sustained ingestion** — an in-process :class:`CorrelationService` with
  a bounded write buffer and a live standing query absorbs a stream of
  appends; the recorded appends/sec is the serving-layer throughput number
  (buffer flushes, chain maintenance and watch feeding included).

Timings are best-of-``TRIALS``; each trial rebuilds its cache state from
scratch so no trial sees another's warm entries.  ``REPRO_BENCH_SCALE``
scales the history length (the CI smoke job runs 0.1); the 16x
history-over-delta ratio — and with it the asserted floor — holds at every
scale.  Results are recorded in ``BENCH_8.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.basic_window import BasicWindowLayout
from repro.service import CorrelationService
from repro.storage.cache import SketchCache
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

from _bench_common import BENCH_SCALE, print_experiment_table

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_8.json"

NUM_SERIES = 64
BASIC_WINDOW = 32
#: The headline ratio: history is 16x the appended delta.
HISTORY_OVER_DELTA = 16
#: History length; the delta follows as HISTORY // 16.  Floored so both are
#: generous multiples of the basic window at the CI smoke scale.
HISTORY = max(4096, int(16384 * BENCH_SCALE)) // (
    HISTORY_OVER_DELTA * BASIC_WINDOW
) * (HISTORY_OVER_DELTA * BASIC_WINDOW)
DELTA = HISTORY // HISTORY_OVER_DELTA
#: The asserted refresh-over-rebuild floor at HISTORY_OVER_DELTA >= 16.
MIN_RATIO = 5.0
TRIALS = 5

#: Ingestion-phase stream: batches of time steps against a buffered service.
INGEST_BATCH_STEPS = 8
INGEST_BATCHES = max(16, int(64 * BENCH_SCALE))
INGEST_BUFFER_COLUMNS = 64


def _series(length: int, rng: np.random.Generator) -> np.ndarray:
    base = rng.standard_normal(length)
    return np.stack(
        [base + 0.5 * rng.standard_normal(length) for _ in range(NUM_SERIES)]
    )


def _grown(matrix: TimeSeriesMatrix, columns: np.ndarray) -> TimeSeriesMatrix:
    return TimeSeriesMatrix(
        np.concatenate([matrix.values, columns], axis=1),
        series_ids=list(matrix.series_ids),
        time_axis=matrix.time_axis,
    )


def _refresh_trial(history: np.ndarray, warm_delta: np.ndarray, delta: np.ndarray):
    """One steady-state refresh: warm cache + chain, then time the Δ append.

    The warm-up append creates the chain (its one-time bootstrap hashes the
    history); the timed section is the steady state every later append
    lives in — hash Δ, move the cache entries, extend the sketch by Δ's
    basic windows.
    """
    cache = SketchCache()
    base = TimeSeriesMatrix(history)
    cache.get_or_build(
        base, BasicWindowLayout.for_range(0, base.length, BASIC_WINDOW)
    )
    fingerprint = cache.extend_chain(base, warm_delta)
    warmed = _grown(base, warm_delta)
    cache.adopt_fingerprint(warmed, fingerprint)
    warm_layout = BasicWindowLayout.for_range(0, warmed.length, BASIC_WINDOW)
    cache.get_or_extend(warmed, warm_layout)

    grown = _grown(warmed, delta)
    started = time.perf_counter()
    fingerprint = cache.extend_chain(warmed, delta)
    cache.adopt_fingerprint(grown, fingerprint)
    sketch = cache.get_or_extend(
        grown, BasicWindowLayout.for_range(0, grown.length, BASIC_WINDOW)
    )
    elapsed = time.perf_counter() - started
    assert cache.stats.sketch_extensions == 2  # warm-up + the timed refresh
    return elapsed, sketch, grown


def _rebuild_trial(grown: TimeSeriesMatrix):
    """What a chainless cache pays after the same append: a cold build."""
    cache = SketchCache()
    rebuilt = TimeSeriesMatrix(
        grown.values.copy(),
        series_ids=list(grown.series_ids),
        time_axis=grown.time_axis,
    )
    layout = BasicWindowLayout.for_range(0, rebuilt.length, BASIC_WINDOW)
    started = time.perf_counter()
    sketch = cache.get_or_build(rebuilt, layout)
    elapsed = time.perf_counter() - started
    return elapsed, sketch


def test_e18_refresh_beats_rebuild_and_streams_appends(tmp_path):
    """Times the refresh/rebuild pair and the service stream; records BENCH_8."""
    rng = np.random.default_rng(20230808)
    history = _series(HISTORY, rng)
    warm_delta = rng.standard_normal((NUM_SERIES, BASIC_WINDOW))
    delta = rng.standard_normal((NUM_SERIES, DELTA))

    # One discarded warm-up pass first: the initial trial pays page-fault and
    # allocator costs for the (count, N, N) tensors that later trials reuse
    # from the arena, which would otherwise dominate a cold best-of run.
    _, _, grown = _refresh_trial(history, warm_delta, delta)
    _rebuild_trial(grown)

    refresh_wall = rebuild_wall = float("inf")
    for _ in range(TRIALS):
        elapsed, refreshed, grown = _refresh_trial(history, warm_delta, delta)
        refresh_wall = min(refresh_wall, elapsed)
        elapsed, rebuilt = _rebuild_trial(grown)
        rebuild_wall = min(rebuild_wall, elapsed)

    # Bit-identity: the O(Δ) refresh and the O(history) rebuild agree on
    # every statistic, bit for bit.
    assert refreshed.layout == rebuilt.layout
    assert refreshed.series_sums.tobytes() == rebuilt.series_sums.tobytes()
    assert refreshed.series_sumsqs.tobytes() == rebuilt.series_sumsqs.tobytes()
    assert refreshed.pair_sumprods.tobytes() == rebuilt.pair_sumprods.tobytes()
    assert refreshed.pair_corrs.tobytes() == rebuilt.pair_corrs.tobytes()

    ratio = rebuild_wall / refresh_wall if refresh_wall > 0 else float("inf")

    # ------------------------------------------------------------- ingestion
    store = ChunkStore(NUM_SERIES, chunk_columns=1024)
    store.append(history)
    catalog = Catalog(tmp_path)
    catalog.add_dataset("stream", store, description="E18 ingestion stream")
    service = CorrelationService(
        catalog,
        basic_window_size=BASIC_WINDOW,
        write_buffer_columns=INGEST_BUFFER_COLUMNS,
    )
    service.watch(
        "stream",
        {"mode": "threshold", "start": 0, "end": HISTORY,
         "window": 4 * BASIC_WINDOW, "step": BASIC_WINDOW, "threshold": 0.7},
    )
    batches = [
        rng.standard_normal((INGEST_BATCH_STEPS, NUM_SERIES)).tolist()
        for _ in range(INGEST_BATCHES)
    ]
    started = time.perf_counter()
    for batch in batches:
        service.append("stream", {"columns": batch})
    info = service.dataset_info("stream")  # non-flushing: observes the tail
    ingest_wall = time.perf_counter() - started
    ingested = INGEST_BATCH_STEPS * INGEST_BATCHES
    appends_per_sec = ingested / ingest_wall if ingest_wall > 0 else float("inf")
    runtime_stats = info["stats"]
    assert runtime_stats["appended_columns"] + runtime_stats[
        "sketch_cache"
    ]["buffered_columns"] == ingested

    rows = [
        ["refresh", "incremental", HISTORY, DELTA, round(refresh_wall, 5),
         round(ratio, 2)],
        ["refresh", "rebuild", HISTORY, DELTA, round(rebuild_wall, 5), 1.0],
        ["ingest", "buffered-service", HISTORY, ingested,
         round(ingest_wall, 5), round(appends_per_sec, 1)],
    ]

    class _Table:
        experiment_id = "E18-maintenance"
        notes = (
            f"N={NUM_SERIES} b={BASIC_WINDOW} history={HISTORY} delta={DELTA} "
            f"(ratio {HISTORY_OVER_DELTA}x, floor {MIN_RATIO}x, "
            f"best-of-{TRIALS}); ingest {INGEST_BATCHES} batches x "
            f"{INGEST_BATCH_STEPS} steps, buffer={INGEST_BUFFER_COLUMNS} cols"
        )
        headers = ["phase", "mode", "history", "columns", "wall_seconds",
                   "speedup_or_rate"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    BENCH_RECORD.write_text(json.dumps({
        "bench": "E18 incremental maintenance (O(delta) refresh + ingestion)",
        "rows": [dict(zip(_Table.headers, row)) for row in rows],
        "refresh_speedup": round(ratio, 4),
        "appends_per_sec": round(appends_per_sec, 2),
        "floor": {
            "history_over_delta": HISTORY_OVER_DELTA,
            "min_refresh_speedup": MIN_RATIO,
            "enforced": True,
        },
        "workloads": _Table.notes,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "REPRO_BENCH_SCALE": BENCH_SCALE,
        },
    }, indent=2) + "\n")

    # The headline claim: with 16x more history than delta, refreshing is at
    # least 5x faster than rebuilding.
    assert ratio >= MIN_RATIO, (
        f"incremental refresh only {ratio:.1f}x faster than rebuild "
        f"(floor {MIN_RATIO}x at history/delta={HISTORY_OVER_DELTA})"
    )
