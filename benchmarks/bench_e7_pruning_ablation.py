"""E7 — ablation of Dangoron's pruning mechanisms.

Four configurations of the same engine (no pruning, temporal jumping only,
horizontal pruning only, both) plus the prefix-sum combination variant are
timed on the same workload; the printed table shows what each mechanism
contributes in skipped work and what it costs in recall.
"""

import pytest

from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e7_pruning_ablation

from _bench_common import BENCH_SCALE, print_experiment_table

CONFIGURATIONS = {
    "none": dict(use_temporal_pruning=False, use_horizontal_pruning=False),
    "temporal": dict(use_temporal_pruning=True, use_horizontal_pruning=False),
    "horizontal": dict(use_temporal_pruning=False, use_horizontal_pruning=True),
    "temporal+horizontal": dict(use_temporal_pruning=True, use_horizontal_pruning=True),
    "prefix_combination": dict(use_temporal_pruning=True, prefix_combination=True),
}


@pytest.mark.parametrize("config_name", list(CONFIGURATIONS))
def test_e7_configuration_runtime(benchmark, climate_bench_workload, config_name):
    workload = climate_bench_workload
    query = workload.query.with_threshold(0.75)
    engine = DangoronEngine(
        basic_window_size=workload.basic_window_size, **CONFIGURATIONS[config_name]
    )
    result = benchmark(engine.run, workload.matrix, query)
    assert result.num_windows == query.num_windows


def test_e7_ablation_table(benchmark):
    result = benchmark.pedantic(
        experiment_e7_pruning_ablation,
        kwargs={"scale": BENCH_SCALE, "threshold": 0.75},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    headers = result.headers
    eval_index = headers.index("eval_fraction")
    recall_index = headers.index("recall")
    rows = {row[0]: row for row in result.rows}
    # Temporal pruning must reduce exact work relative to no pruning, and the
    # unpruned configuration must be exact.
    assert rows["temporal"][eval_index] < rows["none"][eval_index]
    assert rows["none"][recall_index] == pytest.approx(1.0)
    assert rows["horizontal"][recall_index] == pytest.approx(1.0)
