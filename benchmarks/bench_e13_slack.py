"""E13 — slack sweep: buying recall back from the Eq. 2 bound on drifting data.

Runs the pruned engine with increasing slack on a Tomborg workload whose
correlations hover near the threshold (the adversarial case for temporal
jumping) and prints the recall / skipped-work trade-off table.
"""

import pytest

from repro.core.dangoron import DangoronEngine
from repro.experiments.ablations import experiment_e13_slack
from repro.experiments.workloads import tomborg_workload

from _bench_common import BENCH_SCALE, print_experiment_table


@pytest.mark.parametrize("slack", [0.0, 0.1])
def test_e13_slack_runtime(benchmark, slack):
    workload = tomborg_workload(
        scale=BENCH_SCALE * 0.8,
        distribution="uniform",
        spectrum="power_law",
        distribution_kwargs={"low": 0.3, "high": 0.8},
    )
    engine = DangoronEngine(basic_window_size=workload.basic_window_size, slack=slack)
    result = benchmark(engine.run, workload.matrix, workload.query)
    assert result.num_windows == workload.query.num_windows


def test_e13_table(benchmark):
    result = benchmark.pedantic(
        experiment_e13_slack,
        kwargs={"scale": BENCH_SCALE * 0.8, "slacks": (0.0, 0.05, 0.1, 0.2)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    recall_index = result.headers.index("recall")
    eval_index = result.headers.index("eval_fraction")
    recalls = [row[recall_index] for row in result.rows]
    evals = [row[eval_index] for row in result.rows]
    # More slack never hurts recall and never reduces the work performed.
    assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(evals, evals[1:]))
