"""Pytest fixtures for the benchmark harness.

Every ``bench_e*.py`` module regenerates one experiment from DESIGN.md §3
(the per-experiment index).  The pytest-benchmark fixture times the engine
runs; the accompanying summary rows (speedups, accuracy, pruning counters)
are printed so that ``pytest benchmarks/ --benchmark-only -s`` shows the same
tables EXPERIMENTS.md records.

Workload size is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.5); ``1.0`` approximates the paper-like setting.
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import climate_workload

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD


def pytest_report_header(config):
    return (
        f"dangoron-repro benchmarks: scale={BENCH_SCALE}, "
        f"threshold={BENCH_THRESHOLD} (REPRO_BENCH_SCALE / REPRO_BENCH_THRESHOLD)"
    )


@pytest.fixture(scope="session")
def climate_bench_workload():
    """The E1/E2 workload: USCRN-like anomalies, 30-day window, daily step."""
    return climate_workload(
        scale=BENCH_SCALE, threshold=BENCH_THRESHOLD, window_hours=1440
    )
