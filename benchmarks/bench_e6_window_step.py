"""E6 — sensitivity to the query window size and sliding step.

The Eq. 1 combination cost per pair is proportional to the number of basic
windows per query window (n_s = l / b), while the jumping structure benefits
from smaller steps (more window overlap, more skippable windows).  This module
times Dangoron and TSUBASA over a grid of (window, step) settings and prints
the E6 table.
"""

import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.experiments.registry import experiment_e6_window_step
from repro.experiments.workloads import climate_workload

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

WINDOWS = [240, 720, 1440]
STEPS = [24, 168]


@pytest.fixture(scope="module")
def base_workload():
    return climate_workload(
        scale=max(BENCH_SCALE, 0.5), threshold=BENCH_THRESHOLD, window_hours=1440
    )


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("step", STEPS)
@pytest.mark.parametrize("engine_name", ["tsubasa", "dangoron"])
def test_e6_window_step(benchmark, base_workload, window, step, engine_name):
    matrix = base_workload.matrix
    if window > matrix.length:
        pytest.skip("window larger than the generated series")
    query = SlidingQuery(
        start=0, end=matrix.length, window=window, step=step,
        threshold=BENCH_THRESHOLD,
    )
    if engine_name == "tsubasa":
        engine = TsubasaEngine(basic_window_size=base_workload.basic_window_size)
    else:
        engine = DangoronEngine(basic_window_size=base_workload.basic_window_size)
    benchmark.extra_info["window"] = window
    benchmark.extra_info["step"] = step
    result = benchmark(engine.run, matrix, query)
    assert result.num_windows == query.num_windows


def test_e6_window_step_table(benchmark):
    result = benchmark.pedantic(
        experiment_e6_window_step,
        kwargs={
            "scale": max(BENCH_SCALE, 0.5),
            "windows": tuple(WINDOWS),
            "steps": tuple(STEPS),
            "threshold": BENCH_THRESHOLD,
        },
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    assert len(result.rows) >= 4
