"""E20 — multi-process service under load: throughput, batching, shedding.

A seeded load generator drives a real HTTP :class:`CorrelationServer` (the
PR-10 multi-process architecture: forked workers over shared mmap segments,
compatible-query batching, bounded admission) through four phases:

* **Throughput scaling** — the same seeded request mix replayed against a
  1-worker and a ``MAX_WORKERS``-worker server.  Floor:
  :func:`speedup_floor` (2x at >= 4 workers, 1.3x at 2–3), asserted only
  when the machine exposes the cores and the pool actually forked
  (inline-mode sandboxes skip the floor, never the correctness checks).
* **Tail latency** — the loaded run's p99 must stay under
  ``P99_CEILING_FACTOR`` x the warm unloaded single-request latency; a
  pool that serializes or convoys blows this ceiling long before the
  throughput floor moves.
* **Batching burst** — barrier-started bursts of compatible threshold
  queries (same grid, distinct thresholds) against a server with a small
  group-commit window must coalesce: at least half of each burst answered
  without its own scan.
* **Load shedding** — a 1-worker server with a bounded admission queue
  under deliberate overload: every 429 carries ``Retry-After``, every 200
  stays bit-identical, and the shed counter matches the rejections the
  clients saw.  Zero incorrect responses, shed or served.

Every completed response in every phase is verified bit-identical to a
precomputed in-process expectation — the load generator is also the
correctness oracle.  Process mode adds a memory phase: per-worker anonymous
RSS growth (``RssAnon`` — file-backed segment pages excluded by
construction) must stay within ``RSS_GROWTH_FRACTION`` of the shared sketch
footprint plus a fixed allocator allowance.

Results are recorded in ``BENCH_10.json`` at the repo root (rows keyed by
phase, compare_bench-compatible).  ``REPRO_BENCH_SCALE`` scales the dataset
and request counts; ``REPRO_BENCH_WORKERS`` caps the pool (CI smoke runs
scale 0.1 at 2 workers inside its 60-second budget).
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.exceptions import ServiceError
from repro.parallel import available_workers
from repro.service import CorrelationServer, CorrelationService, ServiceClient
from repro.service.workers import MODE_PROCESS
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

from _bench_common import BENCH_SCALE, print_experiment_table

BENCH_RECORD = Path(__file__).resolve().parent.parent / "BENCH_10.json"

#: Top of the worker ladder; the speedup floor applies to this count.
MAX_WORKERS = max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "4")))

SEED = 20230810
BASIC = 16
WINDOW = 16 * BASIC
STEP = 4 * BASIC
#: Distinct query shapes (shifted ranges -> distinct batch keys), so the
#: throughput phase measures scan parallelism, not batching.
NUM_SHAPES = 8
THRESHOLD = 0.72

NUM_SERIES = max(16, int(round(64 * BENCH_SCALE**0.5)))
LENGTH = max(2 * WINDOW + NUM_SHAPES * STEP, int(4096 * BENCH_SCALE))
REQUESTS_PER_CLIENT = max(3, int(round(16 * BENCH_SCALE)))
CLIENTS = 2 * MAX_WORKERS

BURST_SIZE = 6
BURST_ROUNDS = 3
BURST_THRESHOLDS = [0.45 + 0.06 * i for i in range(BURST_SIZE)]

P99_CEILING_FACTOR = 30.0
RSS_GROWTH_FRACTION = 0.25
#: Fixed allowance on top of the sketch-relative bound: allocator arenas
#: and interpreter noise that exist at any workload size.
RSS_ALLOWANCE_BYTES = 8 * 1024 * 1024

_rows = []
_record_meta = {}


def speedup_floor(workers: int) -> float:
    """Minimum loaded-throughput speedup of N workers over 1."""
    return 2.0 if workers >= 4 else 1.3


def _query_shape(index: int) -> ThresholdQuery:
    start = (index % NUM_SHAPES) * STEP
    span = LENGTH - NUM_SHAPES * STEP
    return ThresholdQuery(
        start=start, end=start + span, window=WINDOW, step=STEP,
        threshold=THRESHOLD,
    )


def _burst_query(threshold: float) -> ThresholdQuery:
    return ThresholdQuery(
        start=0, end=LENGTH, window=WINDOW, step=STEP, threshold=threshold
    )


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(SEED)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.45 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture(scope="module")
def catalog(tmp_path_factory, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=256)
    store.append(values)
    catalog = Catalog(tmp_path_factory.mktemp("e20-catalog"))
    catalog.add_dataset("load", store, description="E20 load dataset")
    return catalog


@pytest.fixture(scope="module")
def expected(values):
    """Edge-set oracle for every shape and burst threshold (seeded, serial)."""
    session = CorrelationSession(
        TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
        basic_window_size=BASIC,
    )
    shapes = {i: session.run(_query_shape(i)).to_edges() for i in range(NUM_SHAPES)}
    bursts = {
        t: session.run(_burst_query(t)).to_edges() for t in BURST_THRESHOLDS
    }
    return {"shapes": shapes, "bursts": bursts}


def _server(catalog, **kwargs):
    service = CorrelationService(catalog, basic_window_size=BASIC, **kwargs)
    return CorrelationServer(service)


def _drive_load(url, expected_shapes, clients, requests_per_client):
    """Replay the seeded request mix from ``clients`` threads.

    Returns ``(wall_seconds, latencies, mismatches, errors)``; every
    response is checked against the oracle inline, so a wrong answer under
    concurrency is a recorded mismatch, not a silent pass.
    """
    latencies = []
    mismatches = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def run_client(client_index):
        client = ServiceClient(url, timeout=120)
        order = np.random.default_rng(SEED + client_index).permutation(
            requests_per_client * NUM_SHAPES
        )
        barrier.wait()
        for request_index in order[:requests_per_client]:
            shape = int(request_index) % NUM_SHAPES
            started = time.perf_counter()
            try:
                result = client.query("load", _query_shape(shape))
            except Exception as error:  # noqa: BLE001 — recorded, not raised
                with lock:
                    errors.append(error)
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                if result.to_edges() != expected_shapes[shape]:
                    mismatches.append(shape)

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.perf_counter() - started
    return wall, latencies, mismatches, errors


def _write_record():
    BENCH_RECORD.write_text(json.dumps({
        "bench": "E20 service load (multi-process workers, batching, shedding)",
        "rows": _rows,
        **_record_meta,
        "workloads": (
            f"N={NUM_SERIES} L={LENGTH} b={BASIC} window={WINDOW} "
            f"step={STEP} shapes={NUM_SHAPES} threshold={THRESHOLD}; "
            f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests; "
            f"bursts {BURST_ROUNDS}x{BURST_SIZE}"
        ),
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpus_usable": available_workers(),
            "REPRO_BENCH_SCALE": BENCH_SCALE,
            "REPRO_BENCH_WORKERS": MAX_WORKERS,
        },
    }, indent=2) + "\n")


def test_e20_throughput_and_tail_latency(catalog, expected):
    """The headline: loaded throughput at 1 vs MAX_WORKERS service workers."""
    measured = {}
    pool_modes = {}
    for workers in dict.fromkeys([1, MAX_WORKERS]):
        with _server(catalog, service_workers=workers) as server:
            client = ServiceClient(server.url, timeout=120)
            # Warm every shape once (sketch build + segment export), then
            # take the unloaded single-request latency as the p99 unit.
            for shape in range(NUM_SHAPES):
                result = client.query("load", _query_shape(shape))
                assert result.to_edges() == expected["shapes"][shape]
            warm = []
            for _ in range(3):
                started = time.perf_counter()
                client.query("load", _query_shape(0))
                warm.append(time.perf_counter() - started)
            wall, latencies, mismatches, errors = _drive_load(
                server.url, expected["shapes"], CLIENTS, REQUESTS_PER_CLIENT
            )
            pool_modes[workers] = client.metrics()["worker_pool"]["mode"]
        assert errors == [], f"load run surfaced transport errors: {errors[:3]}"
        assert mismatches == [], (
            f"{len(mismatches)} responses diverged from the oracle"
        )
        assert len(latencies) == CLIENTS * REQUESTS_PER_CLIENT
        p99 = float(np.quantile(latencies, 0.99))
        measured[workers] = {
            "wall_seconds": wall,
            "throughput_qps": len(latencies) / wall,
            "p50_seconds": float(np.quantile(latencies, 0.5)),
            "p99_seconds": p99,
            "warm_seconds": float(np.median(warm)),
        }
        # Identity fields must be non-numeric for compare_bench pairing.
        _rows.append({
            "phase": f"throughput-w{workers}",
            **{k: round(v, 5) for k, v in measured[workers].items()},
        })

    speedup = (
        measured[MAX_WORKERS]["throughput_qps"] / measured[1]["throughput_qps"]
        if MAX_WORKERS > 1 else 1.0
    )
    _record_meta["throughput"] = {
        "speedup": round(speedup, 4),
        "floor": speedup_floor(MAX_WORKERS),
        "pool_mode": pool_modes[MAX_WORKERS],
        "p99_ceiling_factor": P99_CEILING_FACTOR,
    }
    _write_record()

    class _Table:
        experiment_id = "E20"
        notes = (
            f"{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, "
            f"{NUM_SHAPES} shapes; speedup {speedup:.2f}x "
            f"(pool mode {pool_modes[MAX_WORKERS]})"
        )
        headers = ["phase", "wall_seconds", "throughput_qps",
                   "p50_seconds", "p99_seconds"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            for row in _rows:
                lines.append(" | ".join(str(row.get(h, "")) for h in self.headers))
            return "\n".join(lines)

    print_experiment_table(_Table())

    # Tail ceiling holds in every mode: convoying shows up inline too.
    loaded = measured[MAX_WORKERS]
    assert loaded["p99_seconds"] <= P99_CEILING_FACTOR * max(
        loaded["warm_seconds"], 1e-3
    ), (
        f"p99 {loaded['p99_seconds']:.3f}s exceeds "
        f"{P99_CEILING_FACTOR}x warm latency {loaded['warm_seconds']:.3f}s"
    )

    if MAX_WORKERS < 2:
        pytest.skip("REPRO_BENCH_WORKERS=1: nothing to scale")
    if pool_modes[MAX_WORKERS] != MODE_PROCESS:
        pytest.skip("worker pool fell back to inline mode: no process scaling")
    usable = available_workers()
    if usable < MAX_WORKERS:
        pytest.skip(
            f"speedup floor needs {MAX_WORKERS} usable cores, "
            f"this machine exposes {usable}"
        )
    assert speedup >= speedup_floor(MAX_WORKERS), (
        f"{MAX_WORKERS}-worker service reached only {speedup:.2f}x the "
        f"1-worker throughput (floor {speedup_floor(MAX_WORKERS)}x)"
    )


def test_e20_batching_burst(catalog, expected):
    """Barrier bursts of compatible thresholds must coalesce into few scans."""
    answered = 0
    with _server(
        catalog, service_workers=min(2, MAX_WORKERS), batch_window_seconds=0.02
    ) as server:
        client = ServiceClient(server.url, timeout=120)
        # Warm the floor threshold's sketch so bursts measure batching,
        # not the first build.
        client.query("load", _burst_query(BURST_THRESHOLDS[0]))
        answered += 1
        mismatches = []
        for _ in range(BURST_ROUNDS):
            barrier = threading.Barrier(BURST_SIZE)
            lock = threading.Lock()

            def fire(threshold):
                barrier.wait()
                result = client.query("load", _burst_query(threshold))
                with lock:
                    if result.to_edges() != expected["bursts"][threshold]:
                        mismatches.append(threshold)

            threads = [
                threading.Thread(target=fire, args=(t,))
                for t in BURST_THRESHOLDS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            answered += BURST_SIZE
        stats = client.metrics()["datasets"]["load"]
    assert mismatches == []
    assert stats["queries"] == answered
    saved = stats["coalesced"] + stats["batched"]
    # At least half of each burst must ride another member's scan.
    floor = BURST_ROUNDS * (BURST_SIZE // 2)
    _rows.append({
        "phase": "batching",
        "burst_queries": answered - 1, "scans_executed": stats["executed"],
        "coalesce_rate": round(saved / (answered - 1), 4),
    })
    _record_meta["batching"] = {"saved": saved, "floor": floor}
    _write_record()
    assert saved >= floor, (
        f"bursts coalesced only {saved} of {answered - 1} queries "
        f"(floor {floor})"
    )


def test_e20_load_shedding(catalog, expected):
    """Bounded admission under overload: clean 429s, bit-identical 200s."""
    overload_clients = 8
    per_client = 3
    served = []
    shed_errors = []
    other_errors = []
    lock = threading.Lock()
    with _server(
        catalog, service_workers=1, admission_queue_limit=2,
        retry_after_seconds=0.5,
    ) as server:
        url = server.url
        barrier = threading.Barrier(overload_clients)

        def hammer(client_index):
            client = ServiceClient(url, timeout=120)
            barrier.wait()
            for i in range(per_client):
                shape = (client_index + i) % NUM_SHAPES
                try:
                    result = client.query("load", _query_shape(shape))
                except ServiceError as error:
                    with lock:
                        (shed_errors if error.status == 429
                         else other_errors).append(error)
                    continue
                with lock:
                    served.append(
                        (shape, result.to_edges() == expected["shapes"][shape])
                    )

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(overload_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        client = ServiceClient(url, timeout=120)
        stats = client.metrics()["datasets"]["load"]

    assert other_errors == [], f"unexpected failures: {other_errors[:3]}"
    # Zero incorrect responses: every request was either shed cleanly or
    # answered bit-identically.
    assert all(ok for _, ok in served)
    assert len(served) + len(shed_errors) == overload_clients * per_client
    for error in shed_errors:
        assert error.retry_after == 0.5  # the hint survived the wire
    assert stats["admission"]["shed"] == len(shed_errors)
    assert stats["queries"] == len(served)
    _rows.append({
        "phase": "shedding",
        "requests": overload_clients * per_client,
        "served": len(served), "shed": len(shed_errors),
    })
    _record_meta["shedding"] = {
        "queue_limit": 2, "shed": len(shed_errors), "served": len(served),
    }
    _write_record()
    # Overload was real: a 1-worker queue of 2 cannot absorb 8 clients.
    assert shed_errors, "overload produced no shed responses"


def test_e20_worker_rss_stays_shared(catalog, expected):
    """Per-worker anonymous RSS growth stays a fraction of the sketch size."""
    with _server(catalog, service_workers=MAX_WORKERS) as server:
        service = server.service
        client = ServiceClient(server.url, timeout=120)
        if client.metrics()["worker_pool"]["mode"] != MODE_PROCESS:
            pytest.skip("inline pool: no per-worker RSS to measure")
        wall, latencies, mismatches, errors = _drive_load(
            server.url, expected["shapes"], CLIENTS, REQUESTS_PER_CLIENT
        )
        assert errors == [] and mismatches == []
        samples = service._pool.worker_rss()
        runtime = service._runtime("load")
        with runtime.lock:
            segments = runtime.segments.describe()
        assert segments["exports"] >= 1

    # The shared footprint the segment carries (count ~= LENGTH / BASIC).
    count = LENGTH // BASIC
    footprint = 8 * (
        NUM_SERIES * LENGTH                    # values
        + 2 * NUM_SERIES * count               # per-series sums
        + (3 * count + 1) * NUM_SERIES**2      # pairwise + prefix tensors
    )
    bound = RSS_GROWTH_FRACTION * footprint + RSS_ALLOWANCE_BYTES
    growths = []
    for sample in samples:
        if sample["spawn"] is None or sample["now"] is None:
            pytest.skip("RssAnon unavailable on this platform")
        growths.append(sample["now"] - sample["spawn"])
    _rows.append({
        "phase": "worker-rss",
        "sketch_footprint_bytes": footprint,
        "max_growth_bytes": max(growths),
    })
    _record_meta["worker_rss"] = {
        "growth_fraction": RSS_GROWTH_FRACTION,
        "allowance_bytes": RSS_ALLOWANCE_BYTES,
        "growths": growths,
    }
    _write_record()
    assert max(growths) <= bound, (
        f"worker RssAnon grew {max(growths)} bytes, bound {bound:.0f} "
        f"(sketch footprint {footprint}); the segment is not being shared"
    )
