"""E5 — scalability in the number of series N.

Brute force and TSUBASA spend Θ(N²) per window regardless of the threshold;
Dangoron's exact work scales with the number of *candidate* pair-windows.
This module times TSUBASA and Dangoron at increasing N and prints the E5 table
so the divergence of the two curves is visible.
"""

import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e5_scalability
from repro.experiments.workloads import climate_workload

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

SCALES = [0.25, 0.5, 0.75, 1.0]


@pytest.fixture(scope="module", params=SCALES)
def scaled_workload(request):
    return climate_workload(
        scale=request.param * BENCH_SCALE * 2,
        threshold=BENCH_THRESHOLD,
        window_hours=1440,
    )


@pytest.mark.parametrize("engine_name", ["tsubasa", "dangoron"])
def test_e5_engine_at_scale(benchmark, scaled_workload, engine_name):
    workload = scaled_workload
    if engine_name == "tsubasa":
        engine = TsubasaEngine(basic_window_size=workload.basic_window_size)
    else:
        engine = DangoronEngine(basic_window_size=workload.basic_window_size)
    benchmark.extra_info["num_series"] = workload.num_series
    result = benchmark(engine.run, workload.matrix, workload.query)
    assert result.num_series == workload.num_series


def test_e5_scalability_table(benchmark):
    result = benchmark.pedantic(
        experiment_e5_scalability,
        kwargs={
            "scales": tuple(s * BENCH_SCALE * 2 for s in (0.25, 0.5, 1.0)),
            "threshold": BENCH_THRESHOLD,
        },
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    speedup_index = result.headers.index("speedup")
    dangoron_rows = [row for row in result.rows if row[2].startswith("dangoron")]
    largest = max(dangoron_rows, key=lambda row: row[0])
    # At the largest N Dangoron must beat TSUBASA on pure query time.
    assert largest[speedup_index] > 1.0
