"""E2 — accuracy: Dangoron vs ParCorr vs StatStream against the exact answer.

The paper reports Dangoron "achieves an accuracy above 90 percent, comparable
to Parcorr".  This module times the approximate/pruned engines on the climate
workload and prints their edge-set precision / recall / F1 against the
brute-force ground truth (the E2 table).
"""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e2_accuracy

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table


def _engines(basic_window_size):
    return {
        "dangoron": DangoronEngine(basic_window_size=basic_window_size),
        "parcorr": ParCorrEngine(seed=1),
        "parcorr_unverified": ParCorrEngine(verify=False, seed=1),
        "statstream": StatStreamEngine(),
    }


@pytest.mark.parametrize(
    "engine_name", ["dangoron", "parcorr", "parcorr_unverified", "statstream"]
)
def test_e2_engine_runtime(benchmark, climate_bench_workload, engine_name):
    workload = climate_bench_workload
    engine = _engines(workload.basic_window_size)[engine_name]
    result = benchmark(engine.run, workload.matrix, workload.query)
    assert result.num_windows == workload.query.num_windows


def test_e2_accuracy_table(benchmark, climate_bench_workload):
    """Regenerate the E2 accuracy table and assert the paper's accuracy level."""
    workload = climate_bench_workload
    reference = BruteForceEngine().run(workload.matrix, workload.query)
    dangoron = DangoronEngine(basic_window_size=workload.basic_window_size)

    result = benchmark(dangoron.run, workload.matrix, workload.query)
    report = compare_results(result, reference)
    assert report.precision == pytest.approx(1.0)
    assert report.f1 >= 0.9

    table = experiment_e2_accuracy(scale=BENCH_SCALE, threshold=BENCH_THRESHOLD)
    print_experiment_table(table)
    f1_index = table.headers.index("f1")
    dangoron_f1 = next(
        row[f1_index] for row in table.rows if row[0].startswith("dangoron")
    )
    parcorr_f1 = next(
        row[f1_index] for row in table.rows if row[0].startswith("parcorr[")
    )
    # "comparable to Parcorr": within 5 F1 points of the verified ParCorr run.
    assert dangoron_f1 >= parcorr_f1 - 0.05
