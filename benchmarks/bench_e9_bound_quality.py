"""E9 — empirical quality of the Eq. 2 temporal bound.

The temporal bound is derived under a per-basic-window stationarity
assumption, so on real-ish data it can be violated; each violation is a
potentially missed edge.  This module measures the violation rate and mean
slack of the bound at several look-ahead horizons (the E9 table) and times the
vectorized bound-evaluation kernel itself (the operation Dangoron performs
instead of an exact combination).
"""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.bounds import first_possible_crossing
from repro.core.sketch import BasicWindowSketch
from repro.experiments.registry import experiment_e9_bound_quality

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table


@pytest.fixture(scope="module")
def bound_inputs(climate_bench_workload):
    workload = climate_bench_workload
    layout = BasicWindowLayout.for_query(workload.query, workload.basic_window_size)
    sketch = BasicWindowSketch.build(workload.matrix.values, layout)
    rows, cols = np.triu_indices(workload.num_series, k=1)
    window_bw = workload.query.window // layout.size
    step_bw = workload.query.step // layout.size
    corr_now = sketch.exact_pairs_scan(rows, cols, 0, window_bw)
    return sketch, rows, cols, corr_now, window_bw, step_bw, workload


def test_e9_bound_evaluation_kernel(benchmark, bound_inputs):
    """Time the vectorized binary search over all pairs (one window's worth)."""
    sketch, rows, cols, corr_now, window_bw, step_bw, workload = bound_inputs
    max_steps = workload.query.num_windows - 1
    jumps = benchmark(
        first_possible_crossing,
        corr_now,
        BENCH_THRESHOLD,
        sketch.corr_prefix,
        rows,
        cols,
        0,
        step_bw,
        window_bw,
        max_steps,
    )
    assert len(jumps) == len(rows)
    assert jumps.min() >= 1


def test_e9_bound_quality_table(benchmark):
    result = benchmark.pedantic(
        experiment_e9_bound_quality,
        kwargs={"scale": BENCH_SCALE, "horizons": (1, 2, 4, 8, 16)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    rate_index = result.headers.index("violation_rate")
    slack_index = result.headers.index("mean_slack")
    rates = [row[rate_index] for row in result.rows]
    slacks = [row[slack_index] for row in result.rows]
    # Violations are rare at short horizons and the bound loosens with distance.
    assert rates[0] <= 0.2
    assert slacks == sorted(slacks)
