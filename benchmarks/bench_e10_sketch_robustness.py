"""E10 — robustness of frequency/projection sketches vs spectrum concentration.

Related work (§2) notes that frequency-transform methods "only succeed when
energy concentrates in a few domains".  Tomborg makes that knob explicit:
identical correlation structure, different spectrum shapes.  This module times
the unverified sketch baselines on peaked / power-law / flat spectra and
prints their recall alongside Dangoron's (which is insensitive to the
spectrum), regenerating the E10 table.
"""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e10_sketch_robustness
from repro.experiments.workloads import tomborg_workload

from _bench_common import BENCH_SCALE, print_experiment_table

SPECTRA = ["peaked", "power_law", "flat"]


def _workload(spectrum):
    return tomborg_workload(
        scale=BENCH_SCALE * 0.8, distribution="bimodal", spectrum=spectrum
    )


@pytest.mark.parametrize("spectrum", SPECTRA)
@pytest.mark.parametrize("engine_name", ["statstream", "parcorr", "dangoron"])
def test_e10_engine_on_spectrum(benchmark, spectrum, engine_name):
    workload = _workload(spectrum)
    engines = {
        "statstream": StatStreamEngine(
            num_coefficients=8, verify=False, candidate_margin=0.0
        ),
        "parcorr": ParCorrEngine(verify=False, candidate_margin=0.0, seed=3),
        "dangoron": DangoronEngine(basic_window_size=workload.basic_window_size),
    }
    engine = engines[engine_name]
    result = benchmark(engine.run, workload.matrix, workload.query)

    reference = BruteForceEngine().run(workload.matrix, workload.query)
    recall = compare_results(result, reference).recall
    benchmark.extra_info["recall"] = round(recall, 3)
    if engine_name == "dangoron":
        # The exact sketch is insensitive to where the energy lives.
        assert recall >= 0.85


def test_e10_robustness_table(benchmark):
    result = benchmark.pedantic(
        experiment_e10_sketch_robustness,
        kwargs={"scale": BENCH_SCALE * 0.6},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    recall_index = result.headers.index("recall")

    def recall_for(spectrum, engine_prefix):
        for row in result.rows:
            if row[0] == spectrum and row[1].startswith(engine_prefix):
                return row[recall_index]
        raise AssertionError(f"missing row for {spectrum}/{engine_prefix}")

    # The DFT-truncation baseline must degrade from peaked to flat spectra,
    # while Dangoron stays at full recall on both.
    assert recall_for("peaked", "statstream") >= recall_for("flat", "statstream")
    assert recall_for("flat", "dangoron") >= 0.85
    assert recall_for("peaked", "dangoron") >= 0.85
