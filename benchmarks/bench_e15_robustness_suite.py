"""E15 — the named Tomborg robustness suite end to end.

Runs Dangoron over every case of the standard suite (distributions x spectra x
measurement corruption) and prints the per-case accuracy table.  Three
representative cases are additionally timed individually.
"""

import pytest

from repro.core.dangoron import DangoronEngine
from repro.experiments.ablations import experiment_e15_robustness_suite
from repro.tomborg.suite import case_by_name

from _bench_common import BENCH_SCALE, print_experiment_table

TIMED_CASES = ["bimodal_reference", "bimodal_flat_spectrum", "bimodal_white_noise"]


@pytest.mark.parametrize("case_name", TIMED_CASES)
def test_e15_case_runtime(benchmark, case_name):
    case = case_by_name(case_name)
    dataset, query = case.generate(
        num_series=max(12, int(48 * BENCH_SCALE)),
        segment_columns=max(256, int(768 * BENCH_SCALE) // 32 * 32),
        seed=301,
    )
    engine = DangoronEngine(basic_window_size=32)
    result = benchmark(engine.run, dataset.matrix, query)
    assert result.num_windows == query.num_windows


def test_e15_table(benchmark):
    result = benchmark.pedantic(
        experiment_e15_robustness_suite,
        kwargs={"scale": BENCH_SCALE},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    precision_index = result.headers.index("precision")
    recall_index = result.headers.index("recall")
    assert all(row[precision_index] == pytest.approx(1.0) for row in result.rows)
    # Recall may legitimately dip on the noisy / near-threshold cases; it must
    # stay usable everywhere.
    assert all(row[recall_index] >= 0.7 for row in result.rows)
