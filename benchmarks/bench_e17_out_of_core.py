"""E17 — out-of-core execution: bounded memory, bit-identical answers.

The ROADMAP's "catalog bigger than RAM" scenario, measured: a threshold
query over an on-disk chunk store is answered twice —

* **dense** — ``ChunkStore.load`` + ``to_matrix`` + a serial session (the
  pre-tiled pipeline, which materializes the full matrix), and
* **tiled** — ``ChunkStoreReader`` + ``CorrelationSession.from_chunk_store``
  with ``memory_budget`` set to **25% of the dense matrix footprint**, so
  the sketch is built by streaming tiles and the dense matrix is never
  materialized (asserted via ``session.matrix.materialized``).

Each phase runs in a forked child process whose peak RSS is measured with
``getrusage`` relative to its start, so the two measurements don't pollute
each other.  Three claims are asserted:

* **Identity** — the tiled result is bit-identical to the dense serial one
  (sha256 over every window's rows/cols/values).
* **Memory** — the tiled phase's peak-RSS growth stays below the dense
  phase's and within a 0.75x-matrix (+ fixed interpreter slack) allowance,
  even though its budget is 4x smaller than the matrix.  (At default scale
  the tiled growth is well under one matrix: budget-sized tile + sketch.)
* **Time** — tiled wall-clock stays within 1.5x of dense (both phases pay
  the same decompression; the sketch work is identical element-wise).

``REPRO_BENCH_SCALE`` scales the series length (CI smoke runs 0.1, which
also exercises a tiny absolute budget).  On platforms without ``fork`` the
RSS assertions skip; identity is still checked in-process.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import resource
import sys
import time

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.exceptions import ExperimentError
from repro.storage.chunk_store import ChunkStore, ChunkStoreReader

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table

NUM_SERIES = 16
BASIC_WINDOW = 256
WINDOW = 4096
STEP = 2048
#: Columns per stored chunk (1 MiB of raw data per chunk at 16 series).
CHUNK_COLUMNS = 8192

#: Series length: ~768k columns (96 MiB dense) at scale 1.0, floored so the
#: query always has several windows.
LENGTH = max(4 * WINDOW, int(786432 * BENCH_SCALE)) // STEP * STEP
DENSE_BYTES = NUM_SERIES * LENGTH * 8
#: The headline constraint: the budget is 4x smaller than the dense matrix.
MEMORY_BUDGET = DENSE_BYTES // 4

MIB = 1024 * 1024


def _query() -> ThresholdQuery:
    return ThresholdQuery(
        start=0, end=LENGTH, window=WINDOW, step=STEP, threshold=BENCH_THRESHOLD
    )


def _result_digest(result) -> str:
    digest = hashlib.sha256()
    for matrix in result.matrices:
        digest.update(matrix.rows.tobytes())
        digest.update(matrix.cols.tobytes())
        digest.update(matrix.values.tobytes())
    return digest.hexdigest()


def _peak_rss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


def _generate(path: str) -> None:
    rng = np.random.default_rng(20230611)
    # One correlated family so the query finds edges.  The generator runs in
    # its own child process — it is allowed to hold the dense matrix; the
    # measured phases never inherit it.
    base = rng.standard_normal(LENGTH)
    values = base[None, :] * 0.8 + 0.6 * rng.standard_normal((NUM_SERIES, LENGTH))
    store = ChunkStore(num_series=NUM_SERIES, chunk_columns=CHUNK_COLUMNS)
    store.append(values)
    store.save(path)


def _phase_dense(path: str, connection) -> None:
    baseline = _peak_rss_bytes()
    started = time.perf_counter()
    store = ChunkStore.load(path)
    matrix = store.to_matrix()
    del store
    session = CorrelationSession(matrix, basic_window_size=BASIC_WINDOW)
    result = session.run(_query())
    connection.send(
        {
            "digest": _result_digest(result),
            "seconds": time.perf_counter() - started,
            "rss_growth": _peak_rss_bytes() - baseline,
            "plan": session.plan(_query()).describe(),
        }
    )


def _phase_tiled(path: str, connection) -> None:
    baseline = _peak_rss_bytes()
    started = time.perf_counter()
    reader = ChunkStoreReader(path)
    session = CorrelationSession.from_chunk_store(
        reader, basic_window_size=BASIC_WINDOW, memory_budget=MEMORY_BUDGET
    )
    plan = session.plan(_query())
    result = session.run(_query())
    connection.send(
        {
            "digest": _result_digest(result),
            "seconds": time.perf_counter() - started,
            "rss_growth": _peak_rss_bytes() - baseline,
            "plan": plan.describe(),
            "materialized": session.matrix.materialized,
        }
    )


def _run_forked(target, *args) -> dict:
    context = multiprocessing.get_context("fork")
    parent_end, child_end = context.Pipe(duplex=False)
    process = context.Process(target=target, args=(*args, child_end))
    process.start()
    child_end.close()
    try:
        payload = parent_end.recv()
    finally:
        process.join()
    if process.exitcode != 0:
        raise ExperimentError(f"phase process exited with {process.exitcode}")
    return payload


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False
    return True


@pytest.fixture(scope="module")
def saved_store(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("e17") / "catalog.data.npz")
    if _fork_available():
        # Generate in a child so the parent (whose RSS the phase children
        # inherit as their baseline) never holds the dense matrix.
        process = multiprocessing.get_context("fork").Process(
            target=_generate, args=(path,)
        )
        process.start()
        process.join()
        assert process.exitcode == 0
    else:  # pragma: no cover - non-POSIX platforms
        _generate(path)
    return path


def test_e17_out_of_core(saved_store):
    """Tiled vs dense over one on-disk store: identity, memory, wall-clock."""
    if not _fork_available():  # pragma: no cover - non-POSIX platforms
        _assert_identity_in_process(saved_store)
        pytest.skip("no fork(): peak-RSS phases need process isolation")

    dense = _run_forked(_phase_dense, saved_store)
    tiled = _run_forked(_phase_tiled, saved_store)

    rows = [
        ["dense", round(dense["seconds"], 3),
         round(dense["rss_growth"] / MIB, 1), "-"],
        ["tiled", round(tiled["seconds"], 3),
         round(tiled["rss_growth"] / MIB, 1), round(MEMORY_BUDGET / MIB, 1)],
    ]

    class _Table:
        experiment_id = "E17"
        notes = (
            f"{NUM_SERIES} series x {LENGTH} columns "
            f"({DENSE_BYTES / MIB:.1f} MiB dense), window {WINDOW}, "
            f"step {STEP}, b={BASIC_WINDOW}, budget {MEMORY_BUDGET / MIB:.1f} MiB"
        )
        headers = ["path", "wall_seconds", "rss_growth_mib", "budget_mib"]

        def table(self):
            header = " | ".join(self.headers)
            lines = [header, "-" * len(header)]
            lines += [" | ".join(str(v) for v in row) for row in rows]
            return "\n".join(lines)

    print_experiment_table(_Table())

    # The tiled plan actually ran tiled, under the 4x-smaller budget, and
    # never materialized the dense matrix.
    assert MEMORY_BUDGET * 4 <= DENSE_BYTES
    assert f"build=tiled(budget={MEMORY_BUDGET}B)" in tiled["plan"]
    assert tiled["materialized"] is False

    # Bit-identical to the dense serial result.
    assert tiled["digest"] == dense["digest"]

    # Peak RSS: the dense phase must grow by at least the matrix (sanity of
    # the measurement); the tiled phase must stay strictly below one dense
    # matrix and well below the dense phase.
    if dense["rss_growth"] < DENSE_BYTES:  # pragma: no cover - odd allocators
        pytest.skip(
            f"RSS measurement implausible (dense grew "
            f"{dense['rss_growth'] / MIB:.1f} MiB < matrix "
            f"{DENSE_BYTES / MIB:.1f} MiB)"
        )
    allowance = DENSE_BYTES * 0.75 + 8 * MIB
    assert tiled["rss_growth"] <= allowance, (
        f"tiled peak RSS grew {tiled['rss_growth'] / MIB:.1f} MiB, "
        f"allowed {allowance / MIB:.1f} MiB "
        f"(dense matrix is {DENSE_BYTES / MIB:.1f} MiB)"
    )
    assert tiled["rss_growth"] < dense["rss_growth"]

    # Wall-clock: within 1.5x of dense (plus sub-second noise slack).
    assert tiled["seconds"] <= 1.5 * dense["seconds"] + 0.75, (
        f"tiled took {tiled['seconds']:.2f}s vs dense {dense['seconds']:.2f}s"
    )


def _assert_identity_in_process(path: str) -> None:  # pragma: no cover
    dense_session = CorrelationSession(
        ChunkStore.load(path).to_matrix(), basic_window_size=BASIC_WINDOW
    )
    tiled_session = CorrelationSession.from_chunk_store(
        ChunkStoreReader(path),
        basic_window_size=BASIC_WINDOW,
        memory_budget=MEMORY_BUDGET,
    )
    dense = dense_session.run(_query())
    tiled = tiled_session.run(_query())
    assert _result_digest(dense) == _result_digest(tiled)
