"""E1 — pure query time: Dangoron vs TSUBASA vs brute force (paper §4 claim 1).

The paper reports Dangoron "at least one order of magnitude faster than the
baseline [TSUBASA]" in pure query time on the NCEI hourly dataset.  This
module times each engine's query phase on the synthetic USCRN workload and
prints the speedup table; the absolute factor depends on N and the window
length (see EXPERIMENTS.md), but Dangoron must beat TSUBASA and the gap must
widen as the evaluation fraction shrinks.
"""

import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.experiments.registry import experiment_e1_query_time

from _bench_common import BENCH_SCALE, BENCH_THRESHOLD, print_experiment_table


def _engine(name, basic_window_size):
    if name == "brute_force":
        return BruteForceEngine()
    if name == "tsubasa":
        return TsubasaEngine(basic_window_size=basic_window_size)
    return DangoronEngine(basic_window_size=basic_window_size)


@pytest.mark.parametrize("engine_name", ["brute_force", "tsubasa", "dangoron"])
def test_e1_query_time(benchmark, climate_bench_workload, engine_name):
    """Time one full sliding query per engine (sketch build excluded by design:
    the engine rebuilds it inside run(), but the reported query_seconds metric
    and the paper's claim concern the query loop; the benchmark figure here is
    an upper bound that includes the build)."""
    workload = climate_bench_workload
    engine = _engine(engine_name, workload.basic_window_size)
    result = benchmark(engine.run, workload.matrix, workload.query)
    assert result.num_windows == workload.query.num_windows


def test_e1_speedup_table(benchmark, climate_bench_workload):
    """Regenerate the E1 table and assert the headline direction."""
    result = benchmark.pedantic(
        experiment_e1_query_time,
        kwargs={"scale": BENCH_SCALE, "threshold": BENCH_THRESHOLD},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    headers = result.headers
    by_engine = {row[0].split("[")[0]: row for row in result.rows}
    speedup_index = headers.index("speedup_vs_tsubasa")
    recall_index = headers.index("recall")
    assert by_engine["dangoron"][speedup_index] > 1.0
    assert by_engine["dangoron"][recall_index] >= 0.9
    assert by_engine["tsubasa"][speedup_index] == pytest.approx(1.0)
