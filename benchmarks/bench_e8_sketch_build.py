"""E8 — sketch construction cost vs basic-window size.

The paper separates the one-off precomputation ("pre-compute and store basic
window statistics") from the pure query time its evaluation reports.  This
module measures that precomputation: how long the basic-window sketch takes to
build and how much memory it occupies as the basic-window size varies, along
with the query time the resulting sketch enables.
"""

import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.experiments.registry import experiment_e8_sketch_build
from repro.storage.stats_index import StatsIndex

from _bench_common import BENCH_SCALE, print_experiment_table

BASIC_WINDOW_SIZES = [8, 24, 48, 120]


@pytest.mark.parametrize("size", BASIC_WINDOW_SIZES)
def test_e8_sketch_build_time(benchmark, climate_bench_workload, size):
    values = climate_bench_workload.matrix.values
    layout = BasicWindowLayout.for_range(0, values.shape[1], size)
    sketch = benchmark(BasicWindowSketch.build, values, layout)
    benchmark.extra_info["memory_mb"] = round(sketch.memory_bytes() / 1e6, 2)
    assert sketch.num_basic_windows == layout.count


def test_e8_index_persistence_cost(benchmark, climate_bench_workload, tmp_path):
    """Building + persisting the statistics index (the stored artefact)."""
    values = climate_bench_workload.matrix.values

    def build_and_save():
        index = StatsIndex.build(values, basic_window_size=24)
        return index.save(tmp_path / "index.npz")

    path = benchmark(build_and_save)
    assert path.exists()


def test_e8_sketch_table(benchmark):
    result = benchmark.pedantic(
        experiment_e8_sketch_build,
        kwargs={"scale": BENCH_SCALE, "basic_window_sizes": tuple(BASIC_WINDOW_SIZES)},
        rounds=1,
        iterations=1,
    )
    print_experiment_table(result)
    memory_index = result.headers.index("memory_MB")
    sizes = [row[0] for row in result.rows]
    memories = [row[memory_index] for row in result.rows]
    # Larger basic windows -> fewer of them -> smaller pairwise sketches.
    assert sizes == sorted(sizes)
    assert memories == sorted(memories, reverse=True)
