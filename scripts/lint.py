#!/usr/bin/env python3
"""Run repro-lint from a repo checkout without installing the package.

Equivalent to ``PYTHONPATH=src python -m repro.devtools`` but callable from
any working directory::

    python scripts/lint.py src benchmarks scripts
    python scripts/lint.py --list-rules
    python scripts/lint.py src --write-baseline

Exits 0 when only baselined findings remain, 1 on new findings, 2 on
usage errors.  The rule catalogue is documented in ``docs/invariants.md``.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.devtools.cli import main  # noqa: E402  (needs the path bootstrap)

if __name__ == "__main__":
    # Resolve the default baseline relative to the repo root, so the exit
    # status does not depend on the caller's working directory.
    os.chdir(REPO_ROOT)
    sys.exit(main())
