#!/usr/bin/env python
"""Check that README/docs markdown links resolve.

Scans the given markdown files (default: README.md and docs/*.md) for inline
``[text](target)`` links and verifies that

* relative file targets exist on disk (anchors stripped),
* same-file ``#anchor`` targets match a heading in the file (GitHub slug
  rules: lowercase, punctuation dropped, spaces to dashes), and
* every page under ``docs/`` carries at least one runnable doctest
  (``>>>`` block), except the pages grandfathered in
  :data:`DOCTEST_EXEMPT_PAGES` — new documentation must be executable.

External links (``http://``, ``https://``, ``mailto:``) are not fetched —
CI must not depend on the network — they are only counted.  Exits non-zero
listing every broken link, so the CI docs job fails loudly.

Usage::

    python scripts/check_docs_links.py [files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")

#: Pages that must exist (relative to the repo root).  A doc page that is
#: deleted or renamed without updating this registry fails the docs job even
#: if nothing links to it any more.
REQUIRED_PAGES = (
    "README.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/benchmarks.md",
    "docs/invariants.md",
    "docs/planner.md",
    "docs/scaling.md",
    "docs/service.md",
)

#: Pages under docs/ allowed to ship without a doctest.  This list is frozen
#: to the pages that predate the rule — a NEW page under docs/ must either
#: contain a ``>>>`` doctest (and be folded into the tier-1 run via
#: pytest.ini) or be consciously added here with a reason.
DOCTEST_EXEMPT_PAGES = (
    "docs/api.md",          # reference tables; examples live in module doctests
    "docs/architecture.md",  # diagrams and prose only
    "docs/benchmarks.md",    # points at the runnable bench_e* modules
)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def default_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_file(path: Path, root: Path) -> Tuple[List[str], int]:
    """Return (broken link descriptions, number of external links)."""
    text = path.read_text(encoding="utf-8")
    slugs = {github_slug(h) for h in _HEADING.findall(text)}
    broken: List[str] = []
    external = 0
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            external += 1
            continue
        if target.startswith("#"):
            if target[1:] not in slugs:
                broken.append(f"{path.relative_to(root)}: no heading for {target}")
            continue
        file_part = target.split("#", 1)[0]
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: missing file {target}")
    return broken, external


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    files = [Path(arg) for arg in argv] if argv else default_files(root)
    if not files:
        print("no markdown files found to check", file=sys.stderr)
        return 1
    all_broken: List[str] = []
    if not argv:
        all_broken += [
            f"required page missing: {page}"
            for page in REQUIRED_PAGES
            if not (root / page).exists()
        ]
        for page in sorted((root / "docs").glob("*.md")):
            rel = page.relative_to(root).as_posix()
            if rel in DOCTEST_EXEMPT_PAGES:
                continue
            if ">>> " not in page.read_text(encoding="utf-8"):
                all_broken.append(
                    f"doctest-less page: {rel} has no '>>>' example "
                    f"(add one, register it in pytest.ini, or exempt it in "
                    f"DOCTEST_EXEMPT_PAGES with a reason)"
                )
    total_links = 0
    for path in files:
        broken, external = check_file(path, root)
        all_broken += broken
        total_links += external
    for line in all_broken:
        print(f"BROKEN: {line}", file=sys.stderr)
    print(
        f"checked {len(files)} files: "
        f"{len(all_broken)} broken, {total_links} external (not fetched)"
    )
    return 1 if all_broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
