#!/usr/bin/env python
"""Compare the newest BENCH_<n>.json against its predecessor.

Every benchmark run in this repo records a ``BENCH_<n>.json`` in the repo
root (one per PR).  This script pairs the newest recording with the one
before it, matches rows by their non-numeric identity fields, and flags any
metric that moved more than ``--tolerance`` (default 10%) in the *bad*
direction:

* metrics whose key mentions time (``seconds``, ``wall``, ``latency``)
  regress by going **up**;
* metrics whose key mentions rate or gain (``per_sec``, ``throughput``,
  ``speedup``, ``ratio``) regress by going **down**;
* other numeric fields are informational and never flagged.

Benchmarks measure different things PR to PR, so only rows present in BOTH
recordings (same identity) are compared — a brand-new benchmark family has
no baseline and passes vacuously, but the comparison output says so instead
of silently reporting a clean slate.

Exits 0 and prints a JSON report when nothing regressed; exits 1 with the
offending rows otherwise, so CI fails loudly.

Usage::

    python scripts/compare_bench.py [--tolerance 0.10] [--root DIR]
    python scripts/compare_bench.py --baseline BENCH_7.json --candidate BENCH_8.json
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")

#: Substrings classifying a numeric metric's good direction.  Checked in
#: order: a key matching a lower-is-better marker is never also classified
#: higher-is-better.
LOWER_IS_BETTER = ("seconds", "wall", "latency", "elapsed")
HIGHER_IS_BETTER = ("per_sec", "throughput", "speedup", "ratio", "rate")


def find_recordings(root: Path) -> List[Tuple[int, Path]]:
    """Every ``BENCH_<n>.json`` under ``root``, sorted by ``n``."""
    found = []
    for path in root.glob("BENCH_*.json"):
        match = _BENCH_NAME.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def metric_direction(key: str) -> Optional[str]:
    lowered = key.lower()
    if any(marker in lowered for marker in LOWER_IS_BETTER):
        return "lower"
    if any(marker in lowered for marker in HIGHER_IS_BETTER):
        return "higher"
    return None


def row_identity(row: Dict[str, object]) -> str:
    """A row's stable identity: its non-numeric fields, canonically encoded."""
    identity = {
        key: value
        for key, value in row.items()
        if not isinstance(value, (int, float)) or isinstance(value, bool)
    }
    return json.dumps(identity, sort_keys=True, separators=(",", ":"))


def iter_rows(document: Dict[str, object]) -> List[Dict[str, object]]:
    rows = document.get("rows")
    if isinstance(rows, list):
        return [row for row in rows if isinstance(row, dict)]
    return []


def compare_rows(
    baseline: Dict[str, object],
    candidate: Dict[str, object],
    tolerance: float,
) -> Tuple[int, List[Dict[str, object]]]:
    """Match rows by identity and flag out-of-tolerance moves.

    Returns ``(compared_metric_count, regressions)``.
    """
    base_rows = {row_identity(row): row for row in iter_rows(baseline)}
    compared = 0
    regressions: List[Dict[str, object]] = []
    for row in iter_rows(candidate):
        base = base_rows.get(row_identity(row))
        if base is None:
            continue
        for key, value in row.items():
            direction = metric_direction(key)
            if direction is None:
                continue
            before = base.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            if not isinstance(before, (int, float)) or isinstance(before, bool):
                continue
            if before == 0:
                continue
            compared += 1
            change = (value - before) / abs(before)
            worse = change > tolerance if direction == "lower" else change < -tolerance
            if worse:
                regressions.append(
                    {
                        "row": row_identity(row),
                        "metric": key,
                        "direction": direction,
                        "baseline": before,
                        "candidate": value,
                        "change": round(change, 4),
                    }
                )
    return compared, regressions


def build_report(
    baseline_path: Path, candidate_path: Path, tolerance: float
) -> Dict[str, object]:
    baseline = json.loads(baseline_path.read_text())
    candidate = json.loads(candidate_path.read_text())
    compared, regressions = compare_rows(baseline, candidate, tolerance)
    return {
        "baseline": baseline_path.name,
        "candidate": candidate_path.name,
        "tolerance": tolerance,
        "compared_metrics": compared,
        "regressions": regressions,
        "ok": not regressions,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".", help="directory holding the BENCH_<n>.json files"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="fractional change tolerated before a metric counts as a "
             "regression (default 0.10 = 10%%)",
    )
    parser.add_argument("--baseline", default=None, help="explicit baseline file")
    parser.add_argument("--candidate", default=None, help="explicit candidate file")
    args = parser.parse_args(argv)

    if args.tolerance < 0:
        print(f"--tolerance must be non-negative, got {args.tolerance}", file=sys.stderr)
        return 2
    if (args.baseline is None) != (args.candidate is None):
        print("--baseline and --candidate must be given together", file=sys.stderr)
        return 2

    if args.baseline is not None:
        baseline_path, candidate_path = Path(args.baseline), Path(args.candidate)
    else:
        recordings = find_recordings(Path(args.root))
        if len(recordings) < 2:
            print(
                json.dumps(
                    {
                        "ok": True,
                        "compared_metrics": 0,
                        "regressions": [],
                        "note": "fewer than two BENCH_<n>.json recordings; "
                                "nothing to compare",
                    },
                    indent=2,
                )
            )
            return 0
        (_, baseline_path), (_, candidate_path) = recordings[-2], recordings[-1]

    for path in (baseline_path, candidate_path):
        if not path.is_file():
            print(f"no such recording: {path}", file=sys.stderr)
            return 2

    report = build_report(baseline_path, candidate_path, args.tolerance)
    print(json.dumps(report, indent=2))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
