"""Property tests: tiled out-of-core builds are bit-identical to dense builds.

The soundness of caching tiled sketches under the same key as dense ones —
and of answering queries from either interchangeably — rests on exact
bitwise agreement, not closeness.  Hypothesis drives random matrix shapes,
chunk widths (which move the chunk/tile boundary interactions), memory
budgets (which move the tile boundaries) and worker counts (which move the
pair-space partition of the resident tile); the dense and tiled statistics
must agree bit for bit in every case, and so must a full threshold query
through the planner.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CorrelationSession, ThresholdQuery
from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.core.tiled import build_sketch_tiled
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

VALUE_BYTES = 8


@st.composite
def tiled_cases(draw):
    num_series = draw(st.integers(min_value=2, max_value=7))
    size = draw(st.sampled_from([4, 8, 16]))
    count = draw(st.integers(min_value=1, max_value=24))
    offset = draw(st.integers(min_value=0, max_value=13))
    tail = draw(st.integers(min_value=0, max_value=9))
    length = offset + size * count + tail
    chunk_columns = draw(st.integers(min_value=1, max_value=max(1, length)))
    budget_windows = draw(st.integers(min_value=1, max_value=count + 3))
    workers = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    values = np.random.default_rng(seed).standard_normal((num_series, length))
    return values, offset, size, count, chunk_columns, budget_windows, workers


@given(tiled_cases())
@settings(max_examples=60, deadline=None)
def test_tiled_sketch_bit_identical_for_any_boundaries(case):
    values, offset, size, count, chunk_columns, budget_windows, workers = case
    layout = BasicWindowLayout(offset=offset, size=size, count=count)
    store = ChunkStore(num_series=values.shape[0], chunk_columns=chunk_columns)
    store.append(values)

    dense = BasicWindowSketch.build(values, layout)
    budget = values.shape[0] * size * VALUE_BYTES * budget_windows
    tiled = build_sketch_tiled(store, layout, memory_budget=budget, workers=workers)

    assert np.array_equal(dense.series_sums, tiled.series_sums)
    assert np.array_equal(dense.series_sumsqs, tiled.series_sumsqs)
    assert np.array_equal(dense.pair_sumprods, tiled.pair_sumprods)
    assert np.array_equal(dense.pair_corrs, tiled.pair_corrs)


@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_tiled_query_bit_identical_through_session(
    num_series, chunk_columns, budget_windows, seed
):
    """A planner-routed threshold query answers identically dense vs tiled."""
    length, window, step, basic = 256, 64, 32, 16
    values = np.random.default_rng(seed).standard_normal((num_series, length))
    store = ChunkStore(num_series=num_series, chunk_columns=chunk_columns)
    store.append(values)

    budget = num_series * basic * VALUE_BYTES * budget_windows
    tiled_session = CorrelationSession.from_chunk_store(
        store, basic_window_size=basic, memory_budget=budget
    )
    dense_session = CorrelationSession(
        TimeSeriesMatrix(values), basic_window_size=basic
    )
    query = ThresholdQuery(start=0, end=length, window=window, step=step, threshold=0.3)
    assert tiled_session.plan(query).sketch_build == "tiled"

    tiled = tiled_session.run(query)
    dense = dense_session.run(query)
    assert tiled.num_windows == dense.num_windows
    for a, b in zip(tiled.matrices, dense.matrices):
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)
        assert np.array_equal(a.values, b.values)
    # The whole run stayed out-of-core: the dense matrix was never assembled.
    assert not tiled_session.matrix.materialized
