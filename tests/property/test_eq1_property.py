"""Property-based tests: Eq. 1 recombination equals direct Pearson correlation.

The whole sketch machinery rests on the within/between decomposition of the
covariance (Eq. 1).  These tests assert the identity on arbitrary random
series, basic-window sizes, and window positions — not just the hand-picked
cases of the unit tests.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.basic_window import BasicWindowLayout, combine_pair_from_series
from repro.core.correlation import correlation_matrix, pearson
from repro.core.sketch import BasicWindowSketch

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=64
)


@st.composite
def series_pair_and_size(draw):
    """Two equal-length series whose length is a multiple of the window size."""
    size = draw(st.integers(min_value=2, max_value=16))
    num_windows = draw(st.integers(min_value=1, max_value=12))
    length = size * num_windows
    x = draw(
        hnp.arrays(np.float64, shape=length, elements=finite_floats)
    )
    y = draw(
        hnp.arrays(np.float64, shape=length, elements=finite_floats)
    )
    return x, y, size


@given(series_pair_and_size())
@settings(max_examples=60, deadline=None)
def test_eq1_equals_direct_pearson(data):
    x, y, size = data
    recombined = combine_pair_from_series(x, y, size)
    direct = pearson(x, y)
    assert recombined == pytest.approx(direct, abs=1e-6)


@st.composite
def matrix_and_window(draw):
    num_series = draw(st.integers(min_value=2, max_value=6))
    size = draw(st.integers(min_value=2, max_value=8))
    count = draw(st.integers(min_value=2, max_value=10))
    values = draw(
        hnp.arrays(
            np.float64,
            shape=(num_series, size * count),
            elements=st.floats(-100, 100, allow_nan=False, width=64),
        )
    )
    first = draw(st.integers(min_value=0, max_value=count - 1))
    span = draw(st.integers(min_value=1, max_value=count - first))
    return values, size, count, first, span


@given(matrix_and_window())
@settings(max_examples=40, deadline=None)
def test_sketch_scan_matches_direct_correlation(data):
    values, size, count, first, span = data
    layout = BasicWindowLayout(offset=0, size=size, count=count)
    sketch = BasicWindowSketch.build(values, layout)
    window = values[:, first * size : (first + span) * size]
    expected = correlation_matrix(window)
    got = sketch.exact_matrix_scan(first, span)
    assert np.allclose(got, expected, atol=1e-6)


@given(matrix_and_window())
@settings(max_examples=40, deadline=None)
def test_fast_prefix_combination_matches_scan(data):
    values, size, count, first, span = data
    layout = BasicWindowLayout(offset=0, size=size, count=count)
    sketch = BasicWindowSketch.build(values, layout)
    # The fast path recovers range statistics by subtracting prefix sums, so
    # its absolute error scales with the energy accumulated *before* the range
    # ends, not with the range's own signal.  When the range variance is much
    # smaller than that accumulated energy, cancellation noise dominates and
    # the two exact paths legitimately diverge — skip those inputs rather than
    # pretending the ablation path is a precision upgrade.
    window = values[:, first * size : (first + span) * size]
    prefix = values[:, : (first + span) * size]
    energy = np.einsum("ij,ij->i", prefix, prefix)
    centered = window - window.mean(axis=1, keepdims=True)
    variance = np.einsum("ij,ij->i", centered, centered)
    assume(bool(np.all(variance >= 1e-7 * energy)))
    assert np.allclose(
        sketch.exact_matrix_fast(first, span),
        sketch.exact_matrix_scan(first, span),
        atol=1e-7,
    )


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=8, max_value=40),
    st.integers(min_value=0, max_value=1_000_000),
)
@settings(max_examples=30, deadline=None)
def test_unaligned_range_matches_direct(num_series, length, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(num_series, length))
    size = 4
    if length < 2 * size:
        return
    layout = BasicWindowLayout.for_range(0, length, size)
    sketch = BasicWindowSketch.build(values, layout)
    start = int(rng.integers(0, length - 2))
    end = int(rng.integers(start + 2, length + 1))
    expected = correlation_matrix(values[:, start:end])
    got = sketch.exact_matrix_range(start, end, values=values)
    assert np.allclose(got, expected, atol=1e-6)
