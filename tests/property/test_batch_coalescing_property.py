"""Property: batched threshold answering is bit-identical to serial runs.

The service's compatible-query batching (PR 10) answers a batch of threshold
queries differing only in their threshold with **one** engine scan at the
minimum threshold, deriving every member's result through
:func:`repro.service.batching.filter_threshold_result`.  Batch leaders run
that scan under :func:`repro.service.batching.exact_scan_options` — the
threshold-dependent temporal-jumping heuristic off, sound horizontal
pruning on — because a heuristic scan's skip schedule varies with the scan
threshold and could not reproduce each member's own run.  The soundness
argument under the exact configuration (engine values are bit-identical for
surviving pairs regardless of threshold; horizontal pruning at ``t`` is
provably below every member threshold ``>= t``; the filter is an
order-preserving subset) is asserted here across random data, window
layouts, threshold modes and batch compositions: for every member, the
derived result must equal an *independent* serial run of that member's own
query under the same exact scan — same edges, same float bits, same
per-window ordering.

A deterministic regression pins *why* the heuristic is excluded: a case
where Dangoron's jumping schedule at a member's threshold skips a window
whose correlation rose above it (the documented stationarity caveat), which
the batch's exact floor scan catches.  Two guardrail tests pin the filter's
refusals: deriving from a scan whose threshold *exceeds* a member's (not a
superset) or whose grid differs (not compatible) must raise, never silently
return an incomplete answer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import CorrelationSession, ThresholdQuery
from repro.core.query import THRESHOLD_ABSOLUTE, THRESHOLD_SIGNED
from repro.exceptions import ServiceError
from repro.service.batching import (
    batch_key_for,
    exact_scan_options,
    filter_threshold_result,
    is_batchable,
)
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 5
BASIC = 8

#: The scan configuration batch leaders use (jumping heuristic disabled).
EXACT_OPTIONS = exact_scan_options("dangoron", {})


def _matrix(seed: int, length: int) -> TimeSeriesMatrix:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(length)
    values = np.stack(
        [base + (0.2 + 0.2 * i) * rng.standard_normal(length) for i in range(NUM_SERIES)]
    )
    return TimeSeriesMatrix(values)


@st.composite
def batch_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=2**16))
    # Window grids on the basic-window lattice, like the planner produces.
    window = draw(st.sampled_from([2, 3, 4])) * BASIC
    step = draw(st.sampled_from([1, 2])) * BASIC
    num_windows = draw(st.integers(min_value=1, max_value=4))
    length = window + step * (num_windows - 1)
    mode = draw(st.sampled_from([THRESHOLD_SIGNED, THRESHOLD_ABSOLUTE]))
    thresholds = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.95, allow_nan=False),
            min_size=1,
            max_size=5,
        )
    )
    return seed, window, step, length, mode, thresholds


@settings(max_examples=40, deadline=None)
@given(batch_cases())
def test_batched_answers_bit_identical_to_serial_runs(case):
    seed, window, step, length, mode, thresholds = case
    matrix = _matrix(seed, length)
    session = CorrelationSession(
        matrix, basic_window_size=BASIC, engine_options=EXACT_OPTIONS
    )

    def query_at(threshold: float) -> ThresholdQuery:
        return ThresholdQuery(
            start=0, end=length, window=window, step=step,
            threshold=threshold, threshold_mode=mode,
        )

    floor_query = query_at(min(thresholds))
    floor_result = session.run(floor_query)
    for threshold in thresholds:
        member_query = query_at(threshold)
        derived = filter_threshold_result(floor_result, member_query)
        independent = session.run(member_query)
        assert derived.query == independent.query
        assert derived.num_windows == independent.num_windows
        for ours, theirs in zip(derived.matrices, independent.matrices):
            np.testing.assert_array_equal(ours.rows, theirs.rows)
            np.testing.assert_array_equal(ours.cols, theirs.cols)
            # Bitwise, not approximate: the scan computed each surviving
            # value once and the filter must pass it through untouched.
            np.testing.assert_array_equal(ours.values, theirs.values)
        assert derived.to_edges() == independent.to_edges()


@settings(max_examples=20, deadline=None)
@given(batch_cases())
def test_duplicate_and_extreme_thresholds_in_one_batch(case):
    """Batch compositions with duplicates and the floor itself still derive."""
    seed, window, step, length, mode, thresholds = case
    matrix = _matrix(seed, length)
    session = CorrelationSession(
        matrix, basic_window_size=BASIC, engine_options=EXACT_OPTIONS
    )
    # Compose a batch of: every drawn threshold, the floor twice (duplicate
    # members), and a threshold high enough to keep nothing.
    composition = sorted(set(thresholds)) + [min(thresholds), 0.999999]
    floor_query = ThresholdQuery(
        start=0, end=length, window=window, step=step,
        threshold=min(composition), threshold_mode=mode,
    )
    floor_result = session.run(floor_query)
    for threshold in composition:
        member_query = floor_query.with_threshold(threshold)
        derived = filter_threshold_result(floor_result, member_query)
        independent = session.run(member_query)
        assert derived.to_edges() == independent.to_edges()


def test_batch_scans_exclude_the_jumping_heuristic():
    """The regression that forced ``exact_scan_options`` (found by Hypothesis).

    On this data the default engine's temporal jumping, evaluated at
    threshold 0.5, schedules pair (2, 3) past window 1 — where its true
    correlation is ~0.565, above the threshold (the engine's documented
    stationarity caveat: a pair rising faster than the Eq. 2 bound predicts
    is caught late).  A floor scan with jumping on would therefore answer
    differently than a member's own run.  With the batch path's exact
    configuration, the floor-derived answer and the member's independent
    exact run agree bit-for-bit — and both report the edge.
    """
    length, window, step = 32, 24, 8
    matrix = _matrix(1, length)
    member = ThresholdQuery(
        start=0, end=length, window=window, step=step,
        threshold=0.5, threshold_mode=THRESHOLD_SIGNED,
    )

    heuristic = CorrelationSession(matrix, basic_window_size=BASIC).run(member)
    heuristic_edges = {
        (w, r, c)
        for w, m in enumerate(heuristic.matrices)
        for r, c in zip(m.rows.tolist(), m.cols.tolist())
    }
    assert (1, 2, 3) not in heuristic_edges  # the documented recall miss
    assert heuristic.stats.skipped_by_jumping > 0

    exact_session = CorrelationSession(
        matrix, basic_window_size=BASIC, engine_options=EXACT_OPTIONS
    )
    floor = exact_session.run(member.with_threshold(0.0))
    derived = filter_threshold_result(floor, member)
    independent = exact_session.run(member)
    assert derived.to_edges() == independent.to_edges()
    assert any(w == 1 and r == 2 and c == 3 for w, r, c, *_ in derived.to_edges())


def test_filter_rejects_scan_that_is_not_a_superset():
    matrix = _matrix(7, 64)
    session = CorrelationSession(matrix, basic_window_size=BASIC)
    query = ThresholdQuery(start=0, end=64, window=32, step=16, threshold=0.6)
    scan = session.run(query)
    with pytest.raises(ServiceError, match="not a superset"):
        filter_threshold_result(scan, query.with_threshold(0.3))


def test_filter_rejects_incompatible_grid():
    matrix = _matrix(7, 64)
    session = CorrelationSession(matrix, basic_window_size=BASIC)
    scan = session.run(
        ThresholdQuery(start=0, end=64, window=32, step=16, threshold=0.2)
    )
    other_grid = ThresholdQuery(start=0, end=64, window=32, step=32, threshold=0.5)
    with pytest.raises(ServiceError, match="differing only in threshold"):
        filter_threshold_result(scan, other_grid)


def test_batch_key_separates_incompatible_requests():
    base = {"mode": "threshold", "start": 0, "end": 64, "window": 32,
            "step": 16, "threshold": 0.5}
    assert is_batchable(base)
    assert not is_batchable({**base, "mode": "topk", "k": 3})
    assert not is_batchable({**base, "threshold": True})
    assert not is_batchable({**base, "threshold": "0.5"})
    # Thresholds never split batches; anything else does.
    assert batch_key_for(base) == batch_key_for({**base, "threshold": 0.9})
    assert batch_key_for(base) != batch_key_for({**base, "step": 32})
    assert batch_key_for(base) != batch_key_for({**base, "threshold_mode": "absolute"})
    assert batch_key_for(base) != batch_key_for({**base, "workers": 2})
    assert batch_key_for(base) != batch_key_for({**base, "include_edges": True})
