"""Property-based tests for the storage substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex


@st.composite
def chunked_appends(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000_000))
    num_series = draw(st.integers(min_value=1, max_value=6))
    chunk_columns = draw(st.integers(min_value=1, max_value=16))
    batch_sizes = draw(
        st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8)
    )
    rng = np.random.default_rng(seed)
    batches = [rng.normal(size=(num_series, size)) for size in batch_sizes]
    return num_series, chunk_columns, batches


@given(chunked_appends())
@settings(max_examples=40, deadline=None)
def test_chunk_store_reads_equal_original(case):
    num_series, chunk_columns, batches = case
    store = ChunkStore(num_series, chunk_columns=chunk_columns)
    for batch in batches:
        store.append(batch)
    full = np.concatenate(batches, axis=1)
    assert store.length == full.shape[1]
    assert np.allclose(store.read_all(), full)
    # Arbitrary sub-range read.
    if full.shape[1] >= 2:
        assert np.allclose(store.read(1, full.shape[1]), full[:, 1:])


@given(
    st.integers(min_value=0, max_value=10_000_000),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=8),
    st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_incremental_index_extension_matches_batch_build(
    seed, num_series, basic, batch_sizes
):
    rng = np.random.default_rng(seed)
    batches = [rng.normal(size=(num_series, size)) for size in batch_sizes]
    full = np.concatenate(batches, axis=1)
    if full.shape[1] < basic:
        return

    # Feed batches through a stream-style loop with a manual pending buffer.
    index = None
    pending = np.empty((num_series, 0))
    for batch in batches:
        pending = np.concatenate([pending, batch], axis=1)
        complete = pending.shape[1] // basic
        if complete == 0:
            continue
        usable = pending[:, : complete * basic]
        pending = pending[:, complete * basic :]
        if index is None:
            index = StatsIndex.build(usable, basic_window_size=basic)
        else:
            index.extend(usable)

    batch_index = StatsIndex.build(full, basic_window_size=basic)
    assert index is not None
    assert index.layout.count == batch_index.layout.count
    assert np.allclose(index.sketch.series_sums, batch_index.sketch.series_sums)
    assert np.allclose(index.sketch.pair_sumprods, batch_index.sketch.pair_sumprods)
