"""Property-based tests for the correlation bounds.

* The triangle (horizontal) bound is a theorem about any three real vectors:
  it must contain the true correlation for *every* input, so hypothesis can
  hammer it with arbitrary data.
* The Eq. 2 temporal bound is monotone in the number of outgoing windows and
  must agree with the scalar reference implementation for any inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    first_possible_crossing,
    max_skippable_steps_scalar,
    temporal_upper_bound,
    triangle_bounds,
    triangle_bounds_from_pivots,
)
from repro.core.correlation import correlation_matrix


@given(st.integers(min_value=0, max_value=10_000_000), st.integers(4, 64))
@settings(max_examples=80, deadline=None)
def test_triangle_bound_contains_true_correlation(seed, length):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(3, length))
    # Mix the rows so interesting (non-trivial) correlations appear often.
    mix = rng.normal(size=(3, 3))
    data = mix @ data
    corr = correlation_matrix(data)
    lower, upper = triangle_bounds(corr[0, 2], corr[1, 2])
    assert lower - 1e-7 <= corr[0, 1] <= upper + 1e-7


@given(st.integers(min_value=0, max_value=10_000_000), st.integers(2, 5), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_pivot_bounds_contain_all_pairs(seed, num_series, num_pivots):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(num_series + num_pivots, 32))
    corr = correlation_matrix(data)
    pivots = np.arange(num_pivots)
    lower, upper = triangle_bounds_from_pivots(corr[pivots, :])
    assert np.all(corr >= lower - 1e-7)
    assert np.all(corr <= upper + 1e-7)


@given(
    st.floats(-1, 1),
    st.lists(st.floats(-1, 1), min_size=1, max_size=30),
    st.integers(1, 64),
)
@settings(max_examples=80, deadline=None)
def test_temporal_bound_monotone_in_steps(corr_now, outgoing, num_basic_windows):
    running = 0.0
    previous = -np.inf
    for steps, c in enumerate(outgoing, start=1):
        running += c
        bound = temporal_upper_bound(corr_now, steps, running, num_basic_windows)
        assert bound >= previous - 1e-12
        previous = bound


@given(
    st.floats(-0.99, 0.99),
    st.floats(-0.5, 0.99),
    st.lists(st.floats(-1, 1), min_size=2, max_size=20),
    st.integers(2, 16),
)
@settings(max_examples=60, deadline=None)
def test_vectorized_crossing_matches_scalar_reference(corr_now, beta, outgoing, ns):
    """first_possible_crossing with step_bw=1 must equal the scalar loop."""
    outgoing_arr = np.asarray(outgoing)
    max_steps = len(outgoing_arr)
    # Build a fake prefix tensor for a single pair at (0, 1).
    prefix = np.zeros((max_steps + 1, 2, 2))
    prefix[1:, 0, 1] = np.cumsum(outgoing_arr)
    expected = max_skippable_steps_scalar(corr_now, beta, outgoing_arr, ns)
    got = first_possible_crossing(
        np.array([corr_now]), beta, prefix, np.array([0]), np.array([1]),
        bw_start=0, step_bw=1, num_basic_windows=ns, max_steps=max_steps,
    )
    assert got[0] == expected


@given(st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=30, deadline=None)
def test_triangle_bounds_are_valid_intervals(seed):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=20)
    b = rng.uniform(-1, 1, size=20)
    lower, upper = triangle_bounds(a, b)
    assert np.all(lower <= upper + 1e-12)
    assert np.all(lower >= -1 - 1e-12)
    assert np.all(upper <= 1 + 1e-12)
