"""Property-based tests for query enumeration and engine agreement.

The strongest invariant in the repository: for *any* valid aligned query over
*any* data, Dangoron without pruning, TSUBASA and brute force must produce
identical edge sets (they are all exact), and Dangoron with pruning must never
report a false edge (precision 1) regardless of the data distribution.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.timeseries.matrix import TimeSeriesMatrix


@st.composite
def aligned_query_case(draw):
    """Random data plus a random query aligned to a random basic-window size."""
    seed = draw(st.integers(min_value=0, max_value=10_000_000))
    num_series = draw(st.integers(min_value=2, max_value=8))
    basic = draw(st.sampled_from([4, 8, 16]))
    window_bw = draw(st.integers(min_value=2, max_value=6))
    step_bw = draw(st.integers(min_value=1, max_value=4))
    num_windows = draw(st.integers(min_value=1, max_value=8))
    window = basic * window_bw
    step = basic * step_bw
    length = window + step * (num_windows - 1)
    threshold = draw(st.sampled_from([0.3, 0.6, 0.8, 0.95]))
    rng = np.random.default_rng(seed)
    # Mix of independent noise and a shared component so that some, but not
    # all, pairs cross interesting thresholds.
    shared = rng.normal(size=length)
    weights = rng.uniform(0, 1, size=num_series)
    values = (
        weights[:, None] * shared[None, :]
        + rng.normal(size=(num_series, length))
    )
    matrix = TimeSeriesMatrix(values)
    query = SlidingQuery(
        start=0, end=length, window=window, step=step, threshold=threshold
    )
    return matrix, query, basic


@given(aligned_query_case())
@settings(max_examples=25, deadline=None)
def test_exact_engines_agree(case):
    matrix, query, basic = case
    exact = BruteForceEngine().run(matrix, query)
    tsubasa = TsubasaEngine(basic_window_size=basic).run(matrix, query)
    unpruned = DangoronEngine(
        basic_window_size=basic, use_temporal_pruning=False
    ).run(matrix, query)
    for reference, candidate in ((exact, tsubasa), (exact, unpruned)):
        for a, b in zip(reference, candidate):
            assert a.edge_set() == b.edge_set()


@given(aligned_query_case())
@settings(max_examples=25, deadline=None)
def test_pruned_dangoron_never_reports_false_edges(case):
    matrix, query, basic = case
    exact = BruteForceEngine().run(matrix, query)
    pruned = DangoronEngine(basic_window_size=basic).run(matrix, query)
    report = compare_results(pruned, exact)
    assert report.precision == 1.0
    assert report.value_max_error < 1e-7


@given(aligned_query_case())
@settings(max_examples=25, deadline=None)
def test_window_enumeration_consistency(case):
    matrix, query, _ = case
    starts = query.window_starts()
    assert len(starts) == query.num_windows
    assert starts[-1] + query.window <= query.end
    if query.num_windows > 1:
        assert np.all(np.diff(starts) == query.step)
    # Every enumerated window fits inside the matrix.
    for _, begin, end in query.iter_windows():
        assert 0 <= begin < end <= matrix.length
