"""Property-based tests for the extension modules (incremental, top-k, lag, noise).

Invariants checked on arbitrary random inputs:

* the rolling-sums incremental engine agrees with brute force on every window,
  for any (window, step) combination, aligned or not;
* sketch-based top-k reports exactly the pairs brute-force top-k reports;
* lagged correlation at lag 0 is the plain Pearson correlation, the best-lag
  matrix is symmetric in value and antisymmetric in lag, and allowing a wider
  lag range never decreases the best absolute correlation;
* applying a noise model never changes the data shape and is reproducible
  under a fixed seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import BruteForceEngine
from repro.core.correlation import pearson
from repro.core.incremental import IncrementalEngine
from repro.core.lag import lagged_correlation, lagged_correlation_matrix
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k, top_k_brute_force, top_k_overlap
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.noise import AR1Noise, WhiteNoise, apply_noise


@st.composite
def matrix_and_query(draw):
    """A small random matrix plus a valid sliding query over it."""
    num_series = draw(st.integers(min_value=2, max_value=6))
    length = draw(st.integers(min_value=40, max_value=160))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    shared = rng.standard_normal(length)
    weights = rng.uniform(0.0, 1.0, size=num_series)
    values = (
        weights[:, None] * shared[None, :]
        + rng.standard_normal((num_series, length))
    )
    window = draw(st.integers(min_value=8, max_value=max(8, length // 2)))
    step = draw(st.integers(min_value=1, max_value=window))
    threshold = draw(st.floats(min_value=-0.2, max_value=0.9))
    query = SlidingQuery(
        start=0, end=length, window=window, step=step, threshold=threshold
    )
    return TimeSeriesMatrix(values), query


@given(matrix_and_query())
@settings(max_examples=40, deadline=None)
def test_incremental_engine_matches_brute_force(case):
    matrix, query = case
    exact = BruteForceEngine().run(matrix, query)
    rolled = IncrementalEngine().run(matrix, query)
    for ours, theirs in zip(rolled, exact):
        assert ours.edge_set() == theirs.edge_set()
        theirs_values = theirs.edge_dict()
        for edge, value in ours.edge_dict().items():
            assert value == pytest.approx(theirs_values[edge], abs=1e-7)


@given(matrix_and_query(), st.integers(min_value=1, max_value=8))
@settings(max_examples=25, deadline=None)
def test_topk_brute_force_and_sketch_agree(case, k):
    matrix, query = case
    # Align the query with a basic-window size the sketch path can use.
    window = (query.window // 4) * 4
    if window < 8:
        window = 8
    aligned = SlidingQuery(
        start=0, end=matrix.length, window=window, step=4, threshold=0.0
    )
    sketch = sliding_top_k(matrix, aligned, k, basic_window_size=4)
    brute = top_k_brute_force(matrix, aligned, k)
    overlaps = top_k_overlap(sketch, brute)
    # Both paths compute exact correlations, so at most a floating point tie at
    # the k-th value can make the reported pair sets differ by one pair.
    minimum_overlap = (k - 1) / (k + 1) if k > 1 else 0.0
    assert np.all(overlaps >= minimum_overlap - 1e-12)
    for window_sketch, window_brute in zip(sketch, brute):
        if window_sketch.k and window_brute.k:
            # The reported correlation values agree entry by entry.
            assert np.allclose(window_sketch.values, window_brute.values, atol=1e-8)


@st.composite
def series_pair(draw):
    length = draw(st.integers(min_value=20, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(length)
    y = 0.5 * x + rng.standard_normal(length)
    max_lag = draw(st.integers(min_value=0, max_value=min(8, length - 3)))
    return x, y, max_lag


@given(series_pair())
@settings(max_examples=50, deadline=None)
def test_lagged_correlation_zero_lag_is_pearson(case):
    x, y, max_lag = case
    values = lagged_correlation(x, y, max_lag)
    assert len(values) == 2 * max_lag + 1
    assert values[max_lag] == pytest.approx(pearson(x, y), abs=1e-10)
    assert np.all(np.abs(values) <= 1.0 + 1e-12)


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None)
def test_lag_matrix_symmetry_and_monotonicity(seed, num_series, max_lag):
    rng = np.random.default_rng(seed)
    window = rng.standard_normal((num_series, 40))
    result = lagged_correlation_matrix(window, max_lag)
    assert np.allclose(result.best_corr, result.best_corr.T, atol=1e-12)
    assert np.array_equal(result.best_lag, -result.best_lag.T)
    zero = lagged_correlation_matrix(window, 0)
    assert np.all(np.abs(result.best_corr) >= np.abs(zero.best_corr) - 1e-9)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.floats(min_value=0.0, max_value=1.0),
       st.booleans())
@settings(max_examples=40, deadline=None)
def test_noise_preserves_shape_and_is_reproducible(seed, sigma, autocorrelated):
    rng = np.random.default_rng(seed)
    matrix = TimeSeriesMatrix(rng.standard_normal((3, 64)))
    model = AR1Noise(sigma=sigma, coefficient=0.8) if autocorrelated else WhiteNoise(sigma)
    first = apply_noise(matrix, model, seed=seed)
    second = apply_noise(matrix, model, seed=seed)
    assert first.shape == matrix.shape
    assert np.array_equal(first.values, second.values)
    if sigma == 0.0:
        assert np.allclose(first.values, matrix.values)
