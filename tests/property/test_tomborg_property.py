"""Property-based tests for the Tomborg generator and its building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import correlation_matrix
from repro.tomborg.correlation_targets import (
    is_valid_correlation_matrix,
    nearest_correlation_matrix,
)
from repro.tomborg.generator import TomborgGenerator
from repro.tomborg.spectral import (
    power_law_spectrum,
    real_forward_dft,
    real_inverse_dft,
)


@given(st.integers(min_value=0, max_value=10_000_000), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_nearest_correlation_matrix_always_valid(seed, size):
    rng = np.random.default_rng(seed)
    raw = rng.uniform(-1, 1, size=(size, size))
    raw = (raw + raw.T) / 2.0
    np.fill_diagonal(raw, 1.0)
    repaired = nearest_correlation_matrix(raw)
    assert is_valid_correlation_matrix(repaired, tolerance=1e-6)


@given(st.integers(min_value=0, max_value=10_000_000), st.integers(2, 40))
@settings(max_examples=40, deadline=None)
def test_real_dft_round_trip_and_parseval(seed, length):
    rng = np.random.default_rng(seed)
    coefficients = rng.normal(size=(2, length))
    series = real_inverse_dft(coefficients)
    assert np.allclose(real_forward_dft(series), coefficients, atol=1e-8)
    assert np.allclose(
        np.sum(series**2, axis=1), np.sum(coefficients**2, axis=1), atol=1e-8
    )


@given(
    st.integers(min_value=0, max_value=10_000_000),
    st.integers(min_value=3, max_value=8),
    st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=25, deadline=None)
def test_generated_data_reproduces_target(seed, num_series, target_value):
    """For any equicorrelation target the realized correlations match exactly."""
    target = np.full((num_series, num_series), target_value)
    np.fill_diagonal(target, 1.0)
    generator = TomborgGenerator(num_series=num_series, seed=seed)
    dataset = generator.generate(max(64, num_series * 8), target)
    empirical = correlation_matrix(dataset.matrix.values)
    assert np.allclose(empirical, target, atol=1e-7)


@given(
    st.integers(min_value=0, max_value=10_000_000),
    st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=20, deadline=None)
def test_spectrum_shape_does_not_change_realized_correlation(seed, alpha):
    target = np.array([[1.0, 0.6, 0.2], [0.6, 1.0, 0.4], [0.2, 0.4, 1.0]])
    generator = TomborgGenerator(
        num_series=3, spectrum=power_law_spectrum(alpha), seed=seed
    )
    dataset = generator.generate(256, target)
    empirical = correlation_matrix(dataset.matrix.values)
    assert np.allclose(empirical, target, atol=1e-6)


@given(st.integers(min_value=0, max_value=10_000_000))
@settings(max_examples=15, deadline=None)
def test_piecewise_segments_are_independent(seed):
    strong = np.array([[1.0, 0.9], [0.9, 1.0]])
    weak = np.eye(2)
    generator = TomborgGenerator(num_series=2, seed=seed)
    from repro.tomborg.generator import SegmentSpec

    dataset = generator.generate_piecewise(
        [SegmentSpec(128, strong), SegmentSpec(128, weak)]
    )
    first = correlation_matrix(dataset.matrix.values[:, :128])
    second = correlation_matrix(dataset.matrix.values[:, 128:])
    assert first[0, 1] == pytest.approx(0.9, abs=1e-6)
    assert second[0, 1] == pytest.approx(0.0, abs=1e-6)
