"""Property tests: O(Δ) sketch maintenance is bit-identical to rebuilding.

The incremental plan's soundness rests on two exact claims, both driven here
by Hypothesis over arbitrary splits of a stream into a base matrix plus a
sequence of appended batches (including batches smaller than one basic
window, which must sit in the chain's tail buffer until a window completes):

1. a sketch refreshed through ``SketchCache.get_or_extend`` is **bitwise**
   equal to one built from scratch over the full stream, and
2. the chained fingerprint equals ``matrix_fingerprint`` of the grown
   matrix computed from scratch — so extended sketches re-key exactly where
   a cold cache would file them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.storage.cache import SketchCache, matrix_fingerprint
from repro.timeseries.matrix import TimeSeriesMatrix


@st.composite
def append_cases(draw):
    num_series = draw(st.integers(min_value=2, max_value=6))
    size = draw(st.sampled_from([4, 8, 16]))
    base_windows = draw(st.integers(min_value=1, max_value=8))
    base_tail = draw(st.integers(min_value=0, max_value=size - 1))
    base_length = size * base_windows + base_tail
    batches = draw(
        st.lists(
            st.integers(min_value=1, max_value=3 * size),
            min_size=1,
            max_size=5,
        )
    )
    pairwise = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return num_series, size, base_length, batches, pairwise, seed


def grown(matrix: TimeSeriesMatrix, columns: np.ndarray) -> TimeSeriesMatrix:
    return TimeSeriesMatrix(
        np.concatenate([matrix.values, columns], axis=1),
        series_ids=list(matrix.series_ids),
        time_axis=matrix.time_axis,
    )


@given(append_cases())
@settings(max_examples=60, deadline=None)
def test_any_append_split_extends_bit_identically(case):
    num_series, size, base_length, batches, pairwise, seed = case
    rng = np.random.default_rng(seed)
    cache = SketchCache()

    matrix = TimeSeriesMatrix(rng.standard_normal((num_series, base_length)))
    cache.get_or_build(
        matrix, BasicWindowLayout.for_range(0, base_length, size), pairwise=pairwise
    )

    for batch in batches:
        columns = rng.standard_normal((num_series, batch))
        fingerprint = cache.extend_chain(matrix, columns)
        matrix = grown(matrix, columns)
        cache.adopt_fingerprint(matrix, fingerprint)

    # Claim 2: the chained digest equals a from-scratch hash of the stream.
    fresh = TimeSeriesMatrix(
        matrix.values.copy(),
        series_ids=list(matrix.series_ids),
        time_axis=matrix.time_axis,
    )
    assert fingerprint == matrix_fingerprint(fresh)

    # Claim 1: the refreshed sketch is bitwise equal to a scratch build.
    layout = BasicWindowLayout.for_range(0, matrix.length, size)
    refreshed = cache.get_or_extend(matrix, layout, pairwise=pairwise)
    scratch = BasicWindowSketch.build(matrix.values, layout, pairwise=pairwise)
    assert refreshed.layout == scratch.layout
    assert refreshed.series_sums.tobytes() == scratch.series_sums.tobytes()
    assert refreshed.series_sumsqs.tobytes() == scratch.series_sumsqs.tobytes()
    if pairwise:
        assert refreshed.pair_sumprods.tobytes() == scratch.pair_sumprods.tobytes()
        assert refreshed.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()
