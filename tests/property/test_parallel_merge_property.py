"""Property: ANY partition of the pair space merges to the exact serial result.

The merge layer's determinism claim is stronger than "the executor's
contiguous blocks work": for *every* partition of the strict upper triangle
into disjoint groups — contiguous or not, balanced or not, in any order —
running the engine per group and merging must reproduce the serial run bit
for bit (same edges, same float values, same window ids, same per-window
ordering).  Hypothesis drives random partitions over random matrices for
both shardable engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.parallel import merge_shard_results
from repro.timeseries.matrix import TimeSeriesMatrix


def _random_partition(num_pairs: int, num_groups: int, seed: int):
    """Assign every pair position to one of ``num_groups`` groups randomly."""
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, num_groups, size=num_pairs)
    return [np.flatnonzero(assignment == g) for g in range(num_groups)]


@settings(max_examples=20, deadline=None)
@given(
    num_series=st.integers(min_value=4, max_value=12),
    num_groups=st.integers(min_value=2, max_value=5),
    data_seed=st.integers(min_value=0, max_value=2**16),
    partition_seed=st.integers(min_value=0, max_value=2**16),
    threshold=st.sampled_from([0.0, 0.2, 0.5, 0.8]),
    engine_name=st.sampled_from(["dangoron", "tsubasa"]),
)
def test_any_partition_merges_to_serial_result(
    num_series, num_groups, data_seed, partition_seed, threshold, engine_name
):
    rng = np.random.default_rng(data_seed)
    base = rng.standard_normal(160)
    values = 0.7 * base + rng.standard_normal((num_series, 160))
    matrix = TimeSeriesMatrix(values)
    query = SlidingQuery(
        start=0, end=160, window=64, step=16, threshold=threshold
    )
    if engine_name == "dangoron":
        engine = DangoronEngine(basic_window_size=16)
    else:
        engine = TsubasaEngine(basic_window_size=16)

    serial = engine.run(matrix, query)

    rows, cols = np.triu_indices(num_series, k=1)
    groups = _random_partition(len(rows), num_groups, partition_seed)
    shards = [
        engine.run(matrix, query, pairs=(rows[group], cols[group]))
        for group in groups
        if len(group)
    ]
    merged = merge_shard_results(
        query, shards, series_ids=matrix.series_ids
    )

    assert merged.num_windows == serial.num_windows
    for k, (serial_m, merged_m) in enumerate(
        zip(serial.matrices, merged.matrices)
    ):
        assert np.array_equal(serial_m.rows, merged_m.rows), f"window {k}"
        assert np.array_equal(serial_m.cols, merged_m.cols), f"window {k}"
        assert np.array_equal(serial_m.values, merged_m.values), f"window {k}"
    assert merged.stats.exact_evaluations == serial.stats.exact_evaluations
    assert merged.stats.candidate_pairs == serial.stats.candidate_pairs


@pytest.mark.parametrize("engine_factory", [
    lambda: DangoronEngine(basic_window_size=16, use_temporal_pruning=False),
    lambda: DangoronEngine(basic_window_size=16, slack=0.05),
    lambda: DangoronEngine(basic_window_size=16, prefix_combination=True),
])
def test_partition_determinism_across_engine_options(
    small_matrix, standard_query, engine_factory
):
    """The guarantee holds across pruning configurations, not just defaults."""
    engine = engine_factory()
    serial = engine.run(small_matrix, standard_query)
    rows, cols = np.triu_indices(small_matrix.num_series, k=1)
    groups = _random_partition(len(rows), 3, seed=7)
    shards = [
        engine.run(small_matrix, standard_query, pairs=(rows[g], cols[g]))
        for g in groups
        if len(g)
    ]
    merged = merge_shard_results(standard_query, shards)
    for serial_m, merged_m in zip(serial.matrices, merged.matrices):
        assert np.array_equal(serial_m.rows, merged_m.rows)
        assert np.array_equal(serial_m.cols, merged_m.cols)
        assert np.array_equal(serial_m.values, merged_m.values)
