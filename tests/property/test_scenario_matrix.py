"""The scenario matrix: every query family on every execution strategy.

This is the conformance harness for the planner's full routing space — the
cross product

    family    = threshold | topk | lagged
    execution = serial | sharded
    build     = dense | tiled
    pruning   = off | on           (horizontal pruning, a threshold-engine option)

Every cell is classified in :data:`EXPECTED_SUPPORT` with one of three
outcomes:

``supported``
    The planner plans exactly the requested strategy and the result is
    **bit-identical** to the serial/dense reference run with the same
    pruning configuration.
``dense-fallback``
    The cell runs, but the build honestly stays dense and the plan records
    why (``build_reason``) — e.g. pruned threshold queries read raw values
    for pivot selection, so a tiled build cannot bound their memory.
    The result is still bit-identical to the reference.
``inapplicable``
    The cell cannot even be requested: pruning is an option of the
    threshold engine, and the planner rejects engine overrides for
    top-k/lagged queries with :class:`ExperimentError` instead of silently
    ignoring them.

The table is *exhaustive* (a test asserts its keys equal the full product)
and *honest in both directions*: supported cells must plan the strategy they
claim, and excluded cells must be rejected or declined with a reason that
``plan.describe()`` surfaces.  When the planner learns a new cell, the cell's
classification here goes stale and the drift tests fail loudly — updating
this table is part of supporting a new cell.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Calibration,
    CostModel,
    LaggedQuery,
    QueryPlanner,
    ThresholdQuery,
    TopKQuery,
)
from repro.api.planner import (
    EXECUTION_SERIAL,
    EXECUTION_SHARDED,
    SKETCH_BUILD_DENSE,
    SKETCH_BUILD_TILED,
)
from repro.config import FLOAT_DTYPE
from repro.core.engine import create_engine
from repro.exceptions import ExperimentError
from repro.timeseries.matrix import TimeSeriesMatrix

# --------------------------------------------------------------------- matrix
FAMILIES = ("threshold", "topk", "lagged")
EXECUTIONS = (EXECUTION_SERIAL, EXECUTION_SHARDED)
BUILDS = (SKETCH_BUILD_DENSE, SKETCH_BUILD_TILED)
PRUNING = (False, True)

SUPPORTED = "supported"
DENSE_FALLBACK = "dense-fallback"
INAPPLICABLE = "inapplicable"

EXPECTED_SUPPORT = {
    # threshold: the engine path; every strategy pair works, but pruning pins
    # the build dense (pivot selection reads raw values).
    ("threshold", "serial", "dense", False): SUPPORTED,
    ("threshold", "serial", "dense", True): SUPPORTED,
    ("threshold", "serial", "tiled", False): SUPPORTED,
    ("threshold", "serial", "tiled", True): DENSE_FALLBACK,
    ("threshold", "sharded", "dense", False): SUPPORTED,
    ("threshold", "sharded", "dense", True): SUPPORTED,
    ("threshold", "sharded", "tiled", False): SUPPORTED,
    ("threshold", "sharded", "tiled", True): DENSE_FALLBACK,
    # topk: sketch path, no engine — pruning cannot be requested.
    ("topk", "serial", "dense", False): SUPPORTED,
    ("topk", "serial", "tiled", False): SUPPORTED,
    ("topk", "sharded", "dense", False): SUPPORTED,
    ("topk", "sharded", "tiled", False): SUPPORTED,
    ("topk", "serial", "dense", True): INAPPLICABLE,
    ("topk", "serial", "tiled", True): INAPPLICABLE,
    ("topk", "sharded", "dense", True): INAPPLICABLE,
    ("topk", "sharded", "tiled", True): INAPPLICABLE,
    # lagged: raw-value path; "tiled" means streamed window buffers.
    ("lagged", "serial", "dense", False): SUPPORTED,
    ("lagged", "serial", "tiled", False): SUPPORTED,
    ("lagged", "sharded", "dense", False): SUPPORTED,
    ("lagged", "sharded", "tiled", False): SUPPORTED,
    ("lagged", "serial", "dense", True): INAPPLICABLE,
    ("lagged", "serial", "tiled", True): INAPPLICABLE,
    ("lagged", "sharded", "dense", True): INAPPLICABLE,
    ("lagged", "sharded", "tiled", True): INAPPLICABLE,
}

#: Cells this repo learned in the scenario-matrix PR; they must stay
#: ``supported`` — regressing one of these is an API break, not a tweak.
NEWLY_SUPPORTED = (
    ("lagged", "sharded", "dense", False),
    ("lagged", "serial", "tiled", False),
    ("lagged", "sharded", "tiled", False),
    ("topk", "sharded", "dense", False),
    ("topk", "sharded", "tiled", False),
    ("threshold", "sharded", "dense", True),
)

# Query geometry shared by every cell: basic-window aligned (so sharding and
# tiled sketch builds are eligible) and small enough for property runs.
LENGTH = 256
WINDOW = 64
STEP = 32
BASIC = 16

#: Deterministic pruning configuration — shard-safe by construction.
PRUNED_OPTIONS = {
    "use_horizontal_pruning": True,
    "pivot_strategy": "kcenter",
    "num_pivots": 2,
}


def _matrix(num_series: int, seed: int) -> TimeSeriesMatrix:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(LENGTH)
    values = 0.6 * base + rng.standard_normal((num_series, LENGTH))
    return TimeSeriesMatrix(values)


def _query(family: str):
    bounds = dict(start=0, end=LENGTH, window=WINDOW, step=STEP)
    if family == "threshold":
        return ThresholdQuery(threshold=0.4, **bounds)
    if family == "topk":
        return TopKQuery(k=5, **bounds)
    return LaggedQuery(max_lag=4, threshold=0.4, **bounds)


def _planner(execution: str, build: str, pruned: bool, num_series: int) -> QueryPlanner:
    """A planner configured to *request* the cell's strategy pair.

    ``tiled`` is requested via a budget below the dense matrix but above one
    ``(N, window)`` buffer; ``sharded`` via two thread workers with the pair
    floor dropped to 1 so the small property matrices still shard.
    """
    itemsize = np.dtype(FLOAT_DTYPE).itemsize
    budget = num_series * LENGTH * itemsize // 2 if build == "tiled" else None
    return QueryPlanner(
        engine="dangoron",
        engine_options=dict(PRUNED_OPTIONS) if pruned else None,
        basic_window_size=BASIC,
        workers=2 if execution == "sharded" else None,
        parallel_min_pairs=1,
        parallel_mode="thread",
        memory_budget=budget,
    )


def _canonical(family: str, result):
    """A family-specific bytes-level fingerprint (bit-identity, not closeness)."""
    if family == "threshold":
        return [
            (m.rows.tobytes(), m.cols.tobytes(), m.values.tobytes())
            for m in result.matrices
        ]
    if family == "topk":
        return [
            (w.window_index, w.rows.tobytes(), w.cols.tobytes(), w.values.tobytes())
            for w in result.windows
        ]
    return [
        (w.window_index, w.best_corr.tobytes(), w.best_lag.tobytes())
        for w in result.windows
    ]


RUNNABLE_CELLS = sorted(
    cell for cell, outcome in EXPECTED_SUPPORT.items() if outcome != INAPPLICABLE
)
INAPPLICABLE_CELLS = sorted(
    cell for cell, outcome in EXPECTED_SUPPORT.items() if outcome == INAPPLICABLE
)


# ----------------------------------------------------------- table invariants
def test_expected_support_table_is_exhaustive():
    """Every cell of the product is classified — no silent gaps.

    A new family/strategy axis value must be added here explicitly; a missing
    or extra key is a hard failure, not a skip.
    """
    full_product = set(itertools.product(FAMILIES, EXECUTIONS, BUILDS, PRUNING))
    assert set(EXPECTED_SUPPORT) == full_product


def test_newly_supported_cells_stay_supported():
    for cell in NEWLY_SUPPORTED:
        assert EXPECTED_SUPPORT[cell] == SUPPORTED, (
            f"{cell} was promised by the scenario-matrix PR and may not regress"
        )


# ------------------------------------------------- plans match their cells
@pytest.mark.parametrize("cell", RUNNABLE_CELLS, ids=lambda c: "-".join(map(str, c)))
def test_plan_matches_expected_support(cell):
    """Each runnable cell plans exactly what the table claims.

    ``supported`` cells get the requested execution *and* build; a
    ``dense-fallback`` cell keeps the requested execution but records a
    ``build_reason`` that ``describe()`` surfaces.  If the planner starts
    honouring a cell the table calls a fallback, this fails — update the
    table (and the docs matrix) with the new capability.
    """
    family, execution, build, pruned = cell
    matrix = _matrix(8, seed=7)
    planner = _planner(execution, build, pruned, matrix.num_series)
    plan = planner.plan(matrix, _query(family))
    assert plan.execution == execution
    assert plan.execution_reason is None
    if EXPECTED_SUPPORT[cell] == SUPPORTED:
        assert plan.sketch_build == build
        assert plan.build_reason is None
    else:  # dense-fallback: requested tiled, planner honestly declined
        assert plan.sketch_build == SKETCH_BUILD_DENSE
        assert plan.build_reason is not None
        assert f"build=dense ({plan.build_reason})" in plan.describe()


@pytest.mark.parametrize(
    "cell", INAPPLICABLE_CELLS, ids=lambda c: "-".join(map(str, c))
)
def test_inapplicable_cells_reject_the_request(cell):
    """Pruning rides on the threshold engine; other families refuse it loudly.

    The only way to request pruning is an engine override, and the planner
    raises :class:`ExperimentError` for overrides on fixed-path queries —
    never a silent ignore.
    """
    family, execution, build, _ = cell
    matrix = _matrix(8, seed=7)
    planner = _planner(execution, build, pruned=False, num_series=8)
    pruned_engine = create_engine(
        "dangoron", basic_window_size=BASIC, **PRUNED_OPTIONS
    )
    with pytest.raises(ExperimentError, match="threshold queries only"):
        planner.plan(matrix, _query(family), engine=pruned_engine)


# ---------------------------------------------------------------- bit-identity
@settings(max_examples=6, deadline=None)
@given(
    num_series=st.integers(min_value=6, max_value=9),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_every_runnable_cell_is_bit_identical_to_reference(num_series, seed):
    """The conformance sweep: all runnable cells vs the serial/dense reference.

    One reference run per pruning configuration (serial, dense, same engine
    options); every other cell of that family must reproduce it byte for
    byte — sharded, tiled/streamed, and pruned-sharded alike.
    """
    matrix = _matrix(num_series, seed)
    references = {}
    for family, pruned in {(c[0], c[3]) for c in RUNNABLE_CELLS}:
        planner = _planner("serial", "dense", pruned, num_series)
        result = planner.run(matrix, _query(family))
        references[(family, pruned)] = _canonical(family, result)
    for cell in RUNNABLE_CELLS:
        family, execution, build, pruned = cell
        planner = _planner(execution, build, pruned, num_series)
        result = planner.run(matrix, _query(family))
        assert _canonical(family, result) == references[(family, pruned)], (
            f"cell {cell} diverged from the serial/dense reference"
        )


# --------------------------------------------- cost-chosen plans stay identical
def _calibrations():
    """Arbitrary-but-valid calibrations, spanning ~10 orders of magnitude.

    Drawn as exponents so extreme machines (a throughput of 1e2 next to one
    of 1e12) are as likely as plausible ones — the point is that *no*
    calibration, however skewed, may change an answer.
    """
    throughput = st.floats(min_value=2.0, max_value=12.0).map(lambda e: 10.0**e)
    overhead = st.floats(min_value=-9.0, max_value=-2.0).map(lambda e: 10.0**e)
    return st.builds(
        Calibration,
        sketch_build_elems_per_s=throughput,
        sketch_extend_elems_per_s=throughput,
        pair_scan_pair_windows_per_s=throughput,
        merge_pair_windows_per_s=throughput,
        shard_dispatch_seconds=overhead,
        parallel_efficiency=st.floats(min_value=0.05, max_value=1.0),
        tile_io_bytes_per_s=throughput,
        tile_overhead_seconds=overhead,
    )


@settings(max_examples=10, deadline=None)
@given(calibration=_calibrations(), seed=st.integers(min_value=0, max_value=2**16))
def test_cost_chosen_plans_are_bit_identical_whatever_the_calibration(
    calibration, seed
):
    """The cost model may only pick *which* candidate runs, never *what* it
    answers: under any injected calibration — so any reachable choice of
    execution, worker count and tile size — every family's chosen plan
    reproduces the serial/dense reference byte for byte.
    """
    num_series = 7
    matrix = _matrix(num_series, seed)
    for family in FAMILIES:
        reference = _planner("serial", "dense", False, num_series).run(
            matrix, _query(family)
        )
        chooser = _planner("sharded", "tiled", False, num_series)
        chooser.cost_model = CostModel(calibration)
        plan = chooser.plan(matrix, _query(family))
        assert plan.cost_source == "calibration"
        result = chooser.execute(matrix, plan)
        assert _canonical(family, result) == _canonical(family, reference), (
            f"{family} diverged under plan {plan.describe()!r} "
            f"with calibration {calibration}"
        )


# ------------------------------------------------------- declined, with reasons
def test_declined_sharding_names_the_reason_in_describe():
    """Policy declines stay serial and ``describe()`` says why — each gate."""
    matrix = _matrix(8, seed=7)

    # Unseeded random pivots: each shard would draw different pivots.
    planner = QueryPlanner(
        engine="dangoron",
        engine_options={"use_horizontal_pruning": True, "pivot_strategy": "random"},
        basic_window_size=BASIC,
        workers=2,
        parallel_min_pairs=1,
        parallel_mode="thread",
    )
    plan = planner.plan(matrix, _query("threshold"))
    assert plan.execution == EXECUTION_SERIAL
    assert "does not support pair subsets" in plan.describe()

    # Below the pair floor: dispatch overhead would dominate.
    planner = QueryPlanner(basic_window_size=BASIC, workers=2)
    plan = planner.plan(matrix, _query("threshold"))
    assert plan.execution == EXECUTION_SERIAL
    assert "pair count below parallel_min_pairs=" in plan.describe()

    # Unaligned windows: every shard would repeat the dense edge correction.
    # (TSUBASA plans a layout even for unaligned windows, which is what arms
    # this gate; Dangoron plans no layout there and shards on raw values.)
    planner = QueryPlanner(
        engine="tsubasa", basic_window_size=BASIC, workers=2, parallel_min_pairs=1,
        parallel_mode="thread",
    )
    unaligned = ThresholdQuery(start=0, end=LENGTH, window=50, step=25, threshold=0.4)
    plan = planner.plan(matrix, unaligned)
    assert plan.execution == EXECUTION_SERIAL
    assert "windows not basic-window aligned" in plan.describe()


def test_impossible_lagged_budget_raises_naming_family_and_strategy():
    """A budget below one window buffer is impossible, not a policy decline."""
    matrix = _matrix(8, seed=7)
    itemsize = np.dtype(FLOAT_DTYPE).itemsize
    planner = QueryPlanner(
        basic_window_size=BASIC,
        memory_budget=8 * WINDOW * itemsize - 1,  # one byte short of a buffer
    )
    with pytest.raises(ExperimentError) as excinfo:
        planner.plan(matrix, _query("lagged"))
    message = str(excinfo.value)
    assert "lagged" in message
    assert "tiled" in message
    assert "window buffer" in message
