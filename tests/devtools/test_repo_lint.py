"""The meta-test: the repository itself must pass its own lint.

Runs the full five-rule lint over ``src/`` + ``benchmarks/`` + ``scripts/``
inside tier-1, so an invariant violation fails ``pytest`` locally before CI
ever sees it.  The companion tests prove the guard rails are load-bearing:
stripping a blessed-module entry, a ``# requires-lock`` vouch, or a
``with`` block from the *real* sources makes the lint go red.
"""

from pathlib import Path

from repro.devtools import Baseline, LintConfig, lint_paths, lint_source
from repro.devtools.linter import BASELINE_FILENAME

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
LINTED_PATHS = [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "scripts"]


def test_repository_passes_its_own_lint():
    findings = lint_paths(LINTED_PATHS)
    baseline = Baseline.load(REPO_ROOT / BASELINE_FILENAME)
    diff = baseline.diff(findings)
    rendered = "\n".join(f.render() for f in diff.new)
    assert not diff.new, f"new repro-lint findings:\n{rendered}"
    assert not diff.stale, (
        f"baseline entries that no longer occur (regenerate the baseline "
        f"with scripts/lint.py --write-baseline): {diff.stale}"
    )


def test_unblessing_sketch_py_surfaces_its_reductions():
    """core/sketch.py really contains stat reductions the allowlist blesses.

    If this fails, RPR003 has stopped seeing the canonical helpers — which
    would also mean it cannot see a rogue reduction anywhere else.
    """
    config = LintConfig(blessed_accumulation_modules=())
    source = (REPO_ROOT / "src" / "repro" / "core" / "sketch.py").read_text()
    found = lint_source(
        source, module_path="repro/core/sketch.py", config=config, codes=["RPR003"]
    )
    assert any(f.code == "RPR003" for f in found)


def test_stripping_a_requires_lock_vouch_turns_cache_red():
    """The cache's # requires-lock annotations are what keep RPR005 green."""
    source = (REPO_ROOT / "src" / "repro" / "storage" / "cache.py").read_text()
    assert "# requires-lock: _lock" in source
    stripped = source.replace("# requires-lock: _lock", "")
    found = lint_source(
        stripped, module_path="repro/storage/cache.py", codes=["RPR005"]
    )
    assert any(f.code == "RPR005" for f in found)
    # ...and the committed file, vouches intact, is clean.
    assert lint_source(
        source, module_path="repro/storage/cache.py", codes=["RPR005"]
    ) == []


def test_stripping_a_service_lock_vouch_turns_service_red():
    source = (REPO_ROOT / "src" / "repro" / "service" / "service.py").read_text()
    assert "# requires-lock: lock" in source
    stripped = source.replace("# requires-lock: lock", "", 1)
    found = lint_source(
        stripped, module_path="repro/service/service.py", codes=["RPR005"]
    )
    assert any(f.code == "RPR005" for f in found)


def test_unlocking_the_flights_map_turns_service_red():
    """Replacing the coalescing lock with a different one is caught."""
    source = (REPO_ROOT / "src" / "repro" / "service" / "service.py").read_text()
    assert "with runtime.flights_lock:" in source
    swapped = source.replace(
        "with runtime.flights_lock:", "with self._runtimes_lock:"
    )
    found = lint_source(
        swapped, module_path="repro/service/service.py", codes=["RPR005"]
    )
    assert any("flights" in f.message for f in found if f.code == "RPR005")


def test_widening_rpr001_scope_finds_nothing_hidden():
    """No module sneaks banned raises past the scope patterns.

    The committed tree passes with the *widest* possible RPR001 scope, so
    the per-module scope list is a formality rather than a loophole.
    """
    config = LintConfig(rpr001_modules=("*",), rpr001_exempt=("tests/*", "*/conftest.py"))
    findings = [
        f
        for f in lint_paths(LINTED_PATHS, config=config, codes=["RPR001"])
        if f.code == "RPR001"
    ]
    rendered = "\n".join(f.render() for f in findings)
    assert not findings, f"banned raises outside the default scope:\n{rendered}"
