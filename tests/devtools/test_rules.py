"""Per-rule positive/negative fixtures for the five repro-lint rules."""

import textwrap

from repro.devtools import LintConfig, lint_source


def codes(source, module_path, config=None, rules=None):
    return [
        f.code
        for f in lint_source(
            textwrap.dedent(source), module_path=module_path, config=config, codes=rules
        )
    ]


# ---------------------------------------------------------------------------
# RPR001 — exception discipline
# ---------------------------------------------------------------------------


class TestExceptionDiscipline:
    def test_bare_builtin_raise_is_flagged(self):
        assert codes("raise ValueError('bad')", "repro/core/x.py") == ["RPR001"]

    def test_all_three_banned_builtins(self):
        for name in ("ValueError", "TypeError", "RuntimeError"):
            assert codes(f"raise {name}('x')", "repro/core/x.py") == ["RPR001"]

    def test_reraise_without_operand_is_not_flagged(self):
        source = """
        try:
            f()
        except ValueError:
            raise
        """
        assert codes(source, "repro/core/x.py") == []

    def test_taxonomy_raise_is_clean(self):
        source = """
        from repro.exceptions import StorageError
        raise StorageError('bad chunk')
        """
        assert codes(source, "repro/storage/x.py") == []

    def test_scripts_and_benchmarks_are_in_scope(self):
        assert codes("raise RuntimeError('x')", "scripts/tool.py") == ["RPR001"]
        assert codes("raise RuntimeError('x')", "benchmarks/bench.py") == ["RPR001"]

    def test_tests_are_exempt(self):
        assert codes("raise ValueError('x')", "tests/unit/test_x.py") == []

    def test_raise_from_name_is_flagged(self):
        source = """
        error = ValueError('x')
        raise ValueError
        """
        assert codes(source, "repro/core/x.py") == ["RPR001"]


# ---------------------------------------------------------------------------
# RPR002 — lazy-materialization guard
# ---------------------------------------------------------------------------


class TestLazyMaterializationGuard:
    def test_values_on_matrix_name_is_flagged(self):
        assert codes("x = matrix.values", "repro/api/x.py") == ["RPR002"]

    def test_private_values_is_flagged(self):
        assert codes("x = chunk_matrix._values", "repro/service/x.py") == ["RPR002"]

    def test_self_matrix_attribute_base_is_flagged(self):
        source = """
        class S:
            def go(self):
                return self.matrix.values
        """
        assert codes(source, "repro/api/x.py") == ["RPR002"]

    def test_annotated_parameter_is_flagged_regardless_of_name(self):
        source = """
        def build(data: TimeSeriesMatrix):
            return data.values
        """
        assert codes(source, "repro/storage/x.py") == ["RPR002"]

    def test_raw_path_module_is_allowed(self):
        assert codes("x = matrix.values", "repro/baselines/brute.py") == []
        assert codes("x = matrix.values", "repro/datasets/load.py") == []

    def test_non_matrix_receiver_is_not_flagged(self):
        assert codes("x = edges.values", "repro/api/x.py") == []
        assert codes("x = result.values", "repro/service/x.py") == []

    def test_removing_an_allowlist_entry_turns_the_lint_red(self):
        config = LintConfig(
            raw_value_modules=tuple(
                m
                for m in LintConfig().raw_value_modules
                if m != "repro/baselines/*"
            )
        )
        assert codes("x = matrix.values", "repro/baselines/brute.py", config) == [
            "RPR002"
        ]


# ---------------------------------------------------------------------------
# RPR003 — canonical-accumulation guard
# ---------------------------------------------------------------------------


STAT_REDUCTION = """
import numpy as np

def combine(stats):
    return np.einsum('ij,j->i', stats.pair_sumprods, stats.weights)
"""

AXIS_REDUCTION = """
def tally(series_sums):
    return series_sums.sum(axis=0)
"""


class TestCanonicalAccumulationGuard:
    def test_einsum_over_stats_outside_blessed_is_flagged(self):
        assert codes(STAT_REDUCTION, "repro/api/x.py") == ["RPR003"]

    def test_method_axis_reduction_over_stats_is_flagged(self):
        assert codes(AXIS_REDUCTION, "repro/parallel/x.py") == ["RPR003"]

    def test_np_dot_over_stats_is_flagged(self):
        source = "import numpy as np\nr = np.dot(pair_corrs, weights)"
        assert codes(source, "repro/service/x.py") == ["RPR003"]

    def test_blessed_modules_are_allowed(self):
        assert codes(STAT_REDUCTION, "repro/core/sketch.py") == []
        assert codes(AXIS_REDUCTION, "repro/core/tiled.py") == []

    def test_reduction_without_stat_names_is_not_flagged(self):
        source = "import numpy as np\nr = np.dot(weights, prices)"
        assert codes(source, "repro/api/x.py") == []

    def test_full_sum_without_axis_is_not_flagged(self):
        source = "import numpy as np\nr = np.sum(pair_sumprods)"
        assert codes(source, "repro/api/x.py") == []

    def test_removing_a_blessed_entry_turns_the_lint_red(self):
        for removed in ("repro/core/sketch.py", "repro/core/tiled.py"):
            config = LintConfig(
                blessed_accumulation_modules=tuple(
                    m
                    for m in LintConfig().blessed_accumulation_modules
                    if m != removed
                )
            )
            assert codes(STAT_REDUCTION, removed, config) == ["RPR003"]


# ---------------------------------------------------------------------------
# RPR004 — engine-protocol conformance
# ---------------------------------------------------------------------------


class TestEngineProtocolConformance:
    def test_pair_subset_without_pairs_kwarg_is_flagged(self):
        source = """
        class ShardyEngine:
            def supports_pair_subset(self):
                return True
            def run(self, matrix, query, *, sketch=None):
                pass
        """
        assert codes(source, "repro/core/custom.py") == ["RPR004"]

    def test_pair_subset_with_pairs_kwarg_is_clean(self):
        source = """
        class ShardyEngine:
            def supports_pair_subset(self):
                return not self.pruning
            def run(self, matrix, query, *, sketch=None, pairs=None):
                pass
        """
        assert codes(source, "repro/core/custom.py") == []

    def test_star_kwargs_count_as_accepting_pairs(self):
        source = """
        class ShardyEngine:
            def supports_pair_subset(self):
                return True
            def run(self, matrix, query, **kwargs):
                pass
        """
        assert codes(source, "repro/core/custom.py") == []

    def test_literal_false_support_needs_no_pairs(self):
        source = """
        class DenseEngine:
            def supports_pair_subset(self):
                return False
            def run(self, matrix, query, *, sketch=None):
                pass
        """
        assert codes(source, "repro/core/custom.py") == []

    def test_plan_layout_signature_drift_is_flagged(self):
        source = """
        class DriftyEngine:
            def plan_layout(self, query, hint):
                pass
        """
        assert codes(source, "repro/core/custom.py") == ["RPR004"]

    def test_needs_raw_values_signature_drift_is_flagged(self):
        source = """
        class DriftyEngine:
            def needs_raw_values(self, q):
                pass
        """
        assert codes(source, "repro/core/custom.py") == ["RPR004"]

    def test_run_positional_shape_is_enforced(self):
        source = """
        class OddEngine:
            def run(self, data, spec):
                pass
        """
        assert codes(source, "repro/core/custom.py") == ["RPR004"]

    def test_non_engine_classes_are_ignored(self):
        source = """
        class Report:
            def run(self, job):
                pass
            def plan_layout(self, query, extra):
                pass
        """
        assert codes(source, "repro/core/custom.py") == []

    def test_engine_base_class_name_triggers_the_check(self):
        source = """
        class Custom(SlidingCorrelationEngine):
            def needs_raw_values(self, spec):
                pass
        """
        assert codes(source, "repro/core/custom.py") == ["RPR004"]


# ---------------------------------------------------------------------------
# RPR005 — service lock discipline
# ---------------------------------------------------------------------------


GUARDED_CLASS = """
import threading

class Cacheish:
    def __init__(self):
        self._lock = threading.RLock()
        self.entries = {{}}  # guarded-by: _lock

    def mutate(self):
        {body}
"""


def guarded(body, module_path="repro/storage/cache.py", config=None):
    return codes(GUARDED_CLASS.format(body=body), module_path, config)


class TestLockDiscipline:
    def test_unlocked_subscript_write_is_flagged(self):
        assert guarded("self.entries['k'] = 1") == ["RPR005"]

    def test_unlocked_assignment_is_flagged(self):
        assert guarded("self.entries = {}") == ["RPR005"]

    def test_unlocked_mutator_call_is_flagged(self):
        assert guarded("self.entries.clear()") == ["RPR005"]

    def test_unlocked_del_is_flagged(self):
        assert guarded("del self.entries['k']") == ["RPR005"]

    def test_unlocked_augassign_on_field_is_flagged(self):
        assert guarded("self.entries.count += 1") == ["RPR005"]

    def test_write_under_the_right_lock_is_clean(self):
        assert (
            guarded("with self._lock:\n            self.entries['k'] = 1") == []
        )

    def test_write_under_a_different_lock_is_flagged(self):
        assert guarded(
            "with self._other:\n            self.entries['k'] = 1"
        ) == ["RPR005"]

    def test_requires_lock_annotation_vouches_for_the_method(self):
        source = """
        import threading

        class Cacheish:
            def __init__(self):
                self._lock = threading.RLock()
                self.entries = {}  # guarded-by: _lock

            def _insert(self, key):  # requires-lock: _lock
                self.entries[key] = 1
        """
        assert codes(source, "repro/storage/cache.py") == []

    def test_init_is_exempt(self):
        source = """
        import threading

        class Cacheish:
            def __init__(self):
                self._lock = threading.RLock()
                self.entries = {}  # guarded-by: _lock
                self.entries["seed"] = 0
        """
        assert codes(source, "repro/storage/cache.py") == []

    def test_cross_object_access_uses_the_owners_lock(self):
        source = """
        import threading

        class Runtime:
            def __init__(self):
                self.lock = threading.RLock()
                self.counters = {}  # guarded-by: lock

        class Service:
            def bump(self, runtime):
                runtime.counters["queries"] += 1

            def bump_locked(self, runtime):
                with runtime.lock:
                    runtime.counters["queries"] += 1
        """
        found = lint_source(
            textwrap.dedent(source), module_path="repro/service/service.py"
        )
        assert [f.code for f in found] == ["RPR005"]
        assert "runtime.counters" in found[0].message

    def test_modules_outside_the_discipline_are_ignored(self):
        assert guarded("self.entries['k'] = 1", "repro/api/x.py") == []

    def test_removing_the_annotation_disarms_the_rule(self):
        source = GUARDED_CLASS.format(body="self.entries['k'] = 1").replace(
            "  # guarded-by: _lock", ""
        )
        assert codes(source, "repro/storage/cache.py") == []
