"""Framework behavior: pragmas, baselines, module paths, CLI exit codes."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools import Baseline, lint_source, module_path_for
from repro.devtools.cli import main
from repro.devtools.linter import collect_files
from repro.exceptions import LintError


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------


class TestPragmas:
    def test_justified_pragma_suppresses_the_named_code(self):
        source = (
            "raise ValueError('x')  "
            "# repro-lint: disable=RPR001 -- fixture exercises the bad path"
        )
        assert lint_source(source, module_path="repro/core/x.py") == []

    def test_pragma_only_covers_its_own_line(self):
        source = textwrap.dedent(
            """
            raise ValueError('a')  # repro-lint: disable=RPR001 -- justified here
            raise ValueError('b')
            """
        )
        found = lint_source(source, module_path="repro/core/x.py")
        assert [f.code for f in found] == ["RPR001"]
        assert found[0].line == 3

    def test_pragma_for_another_code_does_not_suppress(self):
        source = (
            "raise ValueError('x')  # repro-lint: disable=RPR002 -- wrong code"
        )
        assert [
            f.code for f in lint_source(source, module_path="repro/core/x.py")
        ] == ["RPR001"]

    def test_reasonless_pragma_is_itself_a_finding(self):
        source = "raise ValueError('x')  # repro-lint: disable=RPR001"
        found = lint_source(source, module_path="repro/core/x.py")
        assert [f.code for f in found] == ["RPR000"]
        assert "justification" in found[0].message

    def test_unknown_code_in_pragma_is_a_finding(self):
        source = "x = 1  # repro-lint: disable=RPR777 -- typo"
        found = lint_source(source, module_path="repro/core/x.py")
        assert [f.code for f in found] == ["RPR000"]
        assert "RPR777" in found[0].message

    def test_multiple_codes_in_one_pragma(self):
        source = (
            "x = matrix.values  "
            "# repro-lint: disable=RPR002,RPR003 -- fixture needs both off"
        )
        assert lint_source(source, module_path="repro/api/x.py") == []


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


class TestBaseline:
    def findings(self):
        return lint_source(
            "raise ValueError('a')\nraise TypeError('b')",
            module_path="repro/core/x.py",
        )

    def test_roundtrip_and_diff(self, tmp_path):
        findings = self.findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).write(path)
        diff = Baseline.load(path).diff(findings)
        assert diff.new == [] and len(diff.grandfathered) == 2 and diff.stale == []

    def test_new_findings_are_not_grandfathered(self, tmp_path):
        first, second = self.findings()
        path = tmp_path / "baseline.json"
        Baseline.from_findings([first]).write(path)
        diff = Baseline.load(path).diff([first, second])
        assert diff.new == [second] and diff.grandfathered == [first]

    def test_fixed_findings_surface_as_stale(self):
        first, second = self.findings()
        baseline = Baseline.from_findings([first, second])
        diff = baseline.diff([first])
        assert diff.new == [] and diff.stale == [second.fingerprint]

    def test_fingerprint_ignores_line_numbers(self):
        moved = lint_source(
            "\n\n\nraise ValueError('a')\nraise TypeError('b')",
            module_path="repro/core/x.py",
        )
        assert [f.fingerprint for f in moved] == [
            f.fingerprint for f in self.findings()
        ]

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_corrupt_baseline_raises_lint_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(LintError):
            Baseline.load(path)
        path.write_text('{"findings": {"fp": -2}}')
        with pytest.raises(LintError):
            Baseline.load(path)


# ---------------------------------------------------------------------------
# Module paths and file collection
# ---------------------------------------------------------------------------


class TestModulePaths:
    def test_src_layout_is_anchored_at_repro(self, tmp_path):
        path = tmp_path / "checkout" / "src" / "repro" / "core" / "sketch.py"
        assert module_path_for(path) == "repro/core/sketch.py"

    def test_scripts_anchor(self, tmp_path):
        assert module_path_for(tmp_path / "scripts" / "lint.py") == "scripts/lint.py"

    def test_unanchored_path_falls_back_to_name(self, tmp_path):
        assert module_path_for(tmp_path / "stray.py") == "stray.py"

    def test_missing_path_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError):
            collect_files([tmp_path / "nope"])

    def test_syntax_error_raises_lint_error(self):
        with pytest.raises(LintError):
            lint_source("def broken(:\n", module_path="repro/core/x.py")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


@pytest.fixture
def project(tmp_path, monkeypatch):
    """A tiny fake checkout with one violation, cwd-pinned for the CLI."""
    package = tmp_path / "src" / "repro" / "core"
    package.mkdir(parents=True)
    (package / "bad.py").write_text("raise ValueError('nope')\n")
    (package / "good.py").write_text(
        "from repro.exceptions import StorageError\n"
        "def f():\n    raise StorageError('typed')\n"
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestCli:
    def test_findings_exit_nonzero(self, project, capsys):
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "repro/core/bad.py" in out

    def test_clean_tree_exits_zero(self, project):
        (project / "src" / "repro" / "core" / "bad.py").unlink()
        assert main(["src"]) == 0

    def test_write_baseline_then_clean(self, project):
        assert main(["src", "--write-baseline"]) == 0
        assert main(["src"]) == 0  # baselined finding no longer fails
        assert main(["src", "--no-baseline"]) == 1

    def test_baselined_finding_is_reported_as_such(self, project, capsys):
        main(["src", "--write-baseline"])
        main(["src"])
        assert "[baselined]" in capsys.readouterr().out

    def test_rule_selection(self, project):
        assert main(["src", "--rules", "RPR002"]) == 0
        assert main(["src", "--rules", "RPR001"]) == 1

    def test_unknown_rule_code_is_a_usage_error(self, project, capsys):
        assert main(["src", "--rules", "RPR999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, project, capsys):
        assert main(["absent_dir"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_names_all_five(self, project, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert code in out
