"""Integration: all engines answer the same queries consistently across datasets.

These tests exercise full engine runs on every synthetic dataset family and
check the relationships the paper relies on: exact engines agree with brute
force everywhere, pruned/approximate engines keep precision 1 when they verify,
and Dangoron's accuracy stays at the paper's level (>90%).
"""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.datasets.climate import SyntheticUSCRN
from repro.datasets.finance import SyntheticMarket
from repro.datasets.fmri import SyntheticBOLD


def _workloads():
    climate = SyntheticUSCRN(num_stations=24, num_days=40, seed=5).generate_anomalies()
    market = SyntheticMarket(num_assets=20, num_days=630, seed=6).generate_returns()
    bold, _ = SyntheticBOLD(
        grid_shape=(3, 3, 2), num_regions=4, num_volumes=320, seed=7
    ).generate()
    return [
        (
            "climate",
            climate,
            SlidingQuery(start=0, end=climate.length, window=240, step=48, threshold=0.6),
            24,
        ),
        (
            "finance",
            market,
            SlidingQuery(start=0, end=market.length, window=126, step=42, threshold=0.55),
            21,
        ),
        (
            "fmri",
            bold,
            SlidingQuery(start=0, end=320, window=80, step=20, threshold=0.5),
            10,
        ),
    ]


WORKLOADS = _workloads()


@pytest.mark.parametrize("name,matrix,query,basic", WORKLOADS, ids=[w[0] for w in WORKLOADS])
class TestEnginesAgree:
    def test_tsubasa_matches_brute_force(self, name, matrix, query, basic):
        exact = BruteForceEngine().run(matrix, query)
        sketched = TsubasaEngine(basic_window_size=basic).run(matrix, query)
        report = compare_results(sketched, exact)
        assert report.recall == pytest.approx(1.0)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-6

    def test_dangoron_meets_paper_accuracy(self, name, matrix, query, basic):
        exact = BruteForceEngine().run(matrix, query)
        pruned = DangoronEngine(basic_window_size=basic).run(matrix, query)
        report = compare_results(pruned, exact)
        assert report.precision == pytest.approx(1.0)
        assert report.recall >= 0.9
        assert report.f1 >= 0.9

    def test_verified_sketch_baselines_keep_precision(self, name, matrix, query, basic):
        exact = BruteForceEngine().run(matrix, query)
        for engine in (ParCorrEngine(seed=1), StatStreamEngine()):
            result = engine.run(matrix, query)
            assert compare_results(result, exact).precision == pytest.approx(1.0)

    def test_engine_stats_are_consistent(self, name, matrix, query, basic):
        result = DangoronEngine(basic_window_size=basic).run(matrix, query)
        stats = result.stats
        assert stats.num_windows == query.num_windows
        assert stats.exact_evaluations <= stats.total_pair_windows
        assert stats.exact_evaluations + stats.skipped_by_jumping <= (
            stats.total_pair_windows + stats.candidate_pairs
        )
        assert result.total_edges() == sum(m.num_edges for m in result.matrices)
