"""Concurrency regression: hammer the observable surface during load.

Extends the RPR005 lock-discipline coverage with a behavioural check: while
query threads (mixed thresholds, so batching and coalescing both fire) and an
append writer run against a pooled server, sibling threads hammer
``GET /metrics`` and ``GET /datasets/{name}`` over real HTTP and record every
snapshot.  The assertions pin what the runtime lock is supposed to buy:

* no torn reads — every snapshot satisfies the counter invariant
  ``queries >= coalesced + batched`` (requests answered without their own
  scan can never exceed requests answered), and every counter is
  non-negative;
* counters are **monotonic** across one reader's successive snapshots;
* every completed query response stays bit-identical to the precomputed
  expectation for its threshold — appends only extend the series, so the
  fixed ``[0, LENGTH)`` range must be unaffected by the concurrent writer.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.service import CorrelationServer, CorrelationService, ServiceClient
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 8
LENGTH = 256
BASIC = 16

THRESHOLDS = (0.35, 0.5, 0.65)
QUERY_THREADS = 6
QUERIES_PER_THREAD = 6
APPEND_BLOCKS = 4

#: Counters whose values must never decrease across one reader's snapshots.
MONOTONIC = ("queries", "executed", "coalesced", "batched", "appended_columns")


def _query_at(threshold: float) -> ThresholdQuery:
    return ThresholdQuery(
        start=0, end=LENGTH, window=64, step=32, threshold=threshold
    )


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(20260808)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.4 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture(scope="module")
def expected_edges(values):
    session = CorrelationSession(
        TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
        basic_window_size=BASIC,
    )
    return {t: session.run(_query_at(t)).to_edges() for t in THRESHOLDS}


@pytest.fixture(scope="module")
def client(tmp_path_factory, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=64)
    store.append(values)
    catalog = Catalog(tmp_path_factory.mktemp("hammer-catalog"))
    catalog.add_dataset("hammer", store, description="concurrency dataset")
    service = CorrelationService(
        catalog,
        basic_window_size=BASIC,
        service_workers=2,
        batch_window_seconds=0.002,
    )
    with CorrelationServer(service) as server:
        yield ServiceClient(server.url)


def test_counters_consistent_under_concurrent_load(client, expected_edges):
    # Warm-up: load the dataset runtime so metrics list it from snapshot one.
    warmup = client.query("hammer", _query_at(THRESHOLDS[0]))
    assert warmup.to_edges() == expected_edges[THRESHOLDS[0]]

    stop = threading.Event()
    errors = []
    snapshots_per_reader = []

    def hammer_metrics():
        mine = []
        snapshots_per_reader.append(mine)
        while not stop.is_set():
            try:
                document = client.metrics()
                mine.append(document["datasets"]["hammer"])
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)
                return

    def hammer_dataset():
        mine = []
        snapshots_per_reader.append(mine)
        while not stop.is_set():
            try:
                mine.append(client.dataset("hammer")["stats"])
            except Exception as error:  # noqa: BLE001 — surfaced below
                errors.append(error)
                return

    def run_queries(offset: int):
        try:
            for i in range(QUERIES_PER_THREAD):
                threshold = THRESHOLDS[(offset + i) % len(THRESHOLDS)]
                result = client.query("hammer", _query_at(threshold))
                if result.to_edges() != expected_edges[threshold]:
                    errors.append(
                        AssertionError(
                            f"response for threshold {threshold} diverged"
                        )
                    )
        except Exception as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    def run_appends():
        rng = np.random.default_rng(99)
        try:
            for _ in range(APPEND_BLOCKS):
                client.append(
                    "hammer", rng.standard_normal((NUM_SERIES, BASIC))
                )
        except Exception as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    readers = [threading.Thread(target=hammer_metrics) for _ in range(2)]
    readers += [threading.Thread(target=hammer_dataset) for _ in range(2)]
    workers = [
        threading.Thread(target=run_queries, args=(offset,))
        for offset in range(QUERY_THREADS)
    ]
    workers.append(threading.Thread(target=run_appends))
    for thread in readers + workers:
        thread.start()
    for thread in workers:
        thread.join(timeout=120)
    stop.set()
    for thread in readers:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in readers + workers)
    assert errors == []

    # One final authoritative snapshot, after quiescence.
    final = client.metrics()["datasets"]["hammer"]
    snapshots_per_reader.append([final])

    total_snapshots = 0
    for snapshots in snapshots_per_reader:
        previous = None
        for stats in snapshots:
            total_snapshots += 1
            # No torn reads: each snapshot is internally consistent.
            assert stats["queries"] >= stats["coalesced"] + stats["batched"]
            for counter in MONOTONIC:
                assert stats[counter] >= 0
            assert stats["admission"]["queue_depth"] >= 0
            assert stats["admission"]["shed"] == 0  # no queue limit configured
            # Monotonic within one reader's timeline.
            if previous is not None:
                for counter in MONOTONIC:
                    assert stats[counter] >= previous[counter], counter
            previous = stats
    assert total_snapshots > len(snapshots_per_reader)  # readers actually read

    # Quiescent accounting: every answered request was exactly one of
    # executed-scan leader, coalesced duplicate, or batched derivation.
    assert final["queries"] == QUERY_THREADS * QUERIES_PER_THREAD + 1  # + warm-up
    assert final["executed"] + final["coalesced"] + final["batched"] == final["queries"]
    assert final["appended_columns"] == APPEND_BLOCKS * BASIC


def test_metrics_document_shape(client):
    document = client.metrics()
    service = document["service"]
    assert service["service_workers"] == 2
    assert service["engine"]
    pool = document["worker_pool"]
    assert pool["size"] == 2
    assert pool["mode"] in ("process", "inline")
    stats = document["datasets"]["hammer"]
    assert {"queries", "executed", "coalesced", "batched"} <= set(stats)
    assert {"queue_depth", "shed"} <= set(stats["admission"])
    if pool["mode"] == "process":
        assert stats["segments"]["generation"] >= 1
