"""Service smoke: the acceptance path of the catalog-backed query server.

Mirrors what the CI service-smoke job runs inside its 60-second budget:
generate a dataset, register it (data + a persisted stats index) in an
on-disk catalog, start a real HTTP server on an ephemeral port, and assert

1. a threshold query answered through :class:`ServiceClient` is
   **bit-identical** to the same query run in-process through
   :class:`CorrelationSession`,
2. a second identical request — issued concurrently — is served from the
   coalesced/warm-cache path (no second sketch build; asserted via the
   sketch ``CacheStats`` the server exposes), and
3. the streaming loop closes: appended columns reach a standing query and
   match the offline engine over the extended stream.
"""

import threading

import numpy as np
import pytest

from repro.api import CorrelationSession, LaggedQuery, ThresholdQuery, TopKQuery
from repro.service import CorrelationServer, CorrelationService, ServiceClient
from repro.service.wire import result_from_wire
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 12
LENGTH = 512
BASIC = 16

QUERY = ThresholdQuery(start=0, end=LENGTH, window=128, step=32, threshold=0.55)


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(20230618)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.5 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=128)
    store.append(values)
    catalog = Catalog(tmp_path_factory.mktemp("smoke-catalog"))
    catalog.add_dataset("generated", store, description="smoke dataset")
    catalog.add_index("generated", StatsIndex.build(values, basic_window_size=BASIC))
    with CorrelationServer(CorrelationService(catalog, basic_window_size=BASIC)) as server:
        yield server


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


def test_service_query_bit_identical_and_warm(client, values):
    local_session = CorrelationSession(
        TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
        basic_window_size=BASIC,
    )
    local = local_session.run(QUERY)

    remote = client.query("generated", QUERY)
    assert remote.query == local.query
    assert remote.to_edges() == local.to_edges()  # bit-identical, edge for edge
    for (_, ours), (_, theirs) in zip(local.iter_windows(), remote.iter_windows()):
        np.testing.assert_array_equal(ours.rows, theirs.rows)
        np.testing.assert_array_equal(ours.cols, theirs.cols)
        np.testing.assert_array_equal(ours.values, theirs.values)

    # Fire the identical query from several clients at once: every response
    # must stay bit-identical, and the server must not build a second sketch
    # — requests either coalesce onto the in-flight execution or hit the
    # warm cache.
    results = []

    def fire():
        results.append(client.query("generated", QUERY))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(results) == 4
    assert all(result.to_edges() == local.to_edges() for result in results)

    stats = client.dataset("generated")["stats"]
    cache = stats["sketch_cache"]
    # The catalog's persisted index satisfied the first query, so the server
    # never built a sketch at all; repeats were warm hits or coalesced.
    assert cache["builds"] == 0 and cache["seeds"] == 1
    # ``queries`` counts answered requests, ``executed`` the planner scans;
    # the gap is the requests answered by coalescing/batching.
    assert stats["queries"] == 5
    assert stats["executed"] + stats["coalesced"] + stats["batched"] == 5
    assert stats["queries"] >= stats["coalesced"] + stats["batched"]


def test_streaming_append_reaches_standing_queries(client, values):
    watch = client.watch("generated", QUERY)
    assert watch["emitted_windows"] == QUERY.num_windows

    rng = np.random.default_rng(7)
    block = rng.standard_normal((NUM_SERIES, 64))
    response = client.append("generated", block)
    assert response["length"] == LENGTH + 64
    (state,) = [w for w in response["watches"] if w["id"] == watch["id"]]
    assert len(state["windows"]) == 2  # 64 new columns complete two 32-steps

    full = np.concatenate([values, block], axis=1)
    offline = CorrelationSession(
        TimeSeriesMatrix(full), basic_window_size=BASIC
    ).run(
        ThresholdQuery(start=0, end=LENGTH + 64, window=128, step=32,
                       threshold=QUERY.threshold)
    )
    for emitted in state["windows"]:
        matrix = offline.matrices[emitted["index"]]
        assert emitted["rows"] == matrix.rows.tolist()
        assert emitted["cols"] == matrix.cols.tolist()
        assert emitted["values"] == pytest.approx(matrix.values.tolist())


def test_appended_stream_refreshes_sketch_incrementally(client, values):
    """Runs after the append test: the 64 appended columns advanced the
    fingerprint chain, so querying the grown range refreshes the seeded
    sketch in O(Δ) — the plan says so, the extension counters move, and the
    ``builds`` counter stays at zero (an extension is not a rebuild)."""
    stats = client.dataset("generated")["stats"]["sketch_cache"]
    assert {"extensions", "extended_windows", "buffered_columns"} <= set(stats)
    assert stats["extensions"] == 0  # nothing has queried the grown range yet

    grown_query = ThresholdQuery(start=0, end=LENGTH + 64, window=128, step=32,
                                 threshold=QUERY.threshold)
    document = client.query_raw("generated", grown_query)
    assert "build=incremental(" in document["plan"]

    rng = np.random.default_rng(7)  # the block the append test streamed in
    block = rng.standard_normal((NUM_SERIES, 64))
    offline = CorrelationSession(
        TimeSeriesMatrix(np.concatenate([values, block], axis=1)),
        basic_window_size=BASIC,
    ).run(grown_query)
    remote = result_from_wire(document)
    assert remote.to_edges() == offline.to_edges()

    stats = client.dataset("generated")["stats"]["sketch_cache"]
    assert stats["extensions"] == 1
    assert stats["extended_windows"] == 64 // BASIC
    assert stats["builds"] == 0  # the seeded sketch was extended, not rebuilt
    assert stats["buffered_columns"] == 0  # write-through server: no buffer


# --------------------------------------------------------------------------
# Scenario-matrix smoke: the newly-supported execution cells served over
# ``repro.result/v1``.  A second server is sized so ``workers=2`` requests
# clear the parallel pair floor (96 series = 4560 pairs) and configured with
# a memory budget below the dense matrix, so top-k sketches build tiled and
# lagged queries stream their window buffers — while a pruned (deterministic
# kcenter) Dangoron answers threshold queries.  Every response must be
# bit-identical to a plain serial/dense in-process run, and each response's
# ``plan`` string must prove the cell actually executed (no silent serial
# or dense fallback passing as coverage).
# --------------------------------------------------------------------------
MATRIX_NUM = 96
#: Below the 96 x 512 x 8B = 384 KiB dense matrix, above one 96 x 128-column
#: window buffer (96 KiB): sketch builds tile and lagged windows stream.
MATRIX_BUDGET = 128 * 1024
PRUNED_OPTIONS = {
    "use_horizontal_pruning": True,
    "pivot_strategy": "kcenter",
    "num_pivots": 3,
}


@pytest.fixture(scope="module")
def matrix_values():
    rng = np.random.default_rng(20230807)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.6 * rng.standard_normal(LENGTH) for _ in range(MATRIX_NUM)]
    )


@pytest.fixture(scope="module")
def matrix_client(tmp_path_factory, matrix_values):
    store = ChunkStore(MATRIX_NUM, chunk_columns=128)
    store.append(matrix_values)
    catalog = Catalog(tmp_path_factory.mktemp("matrix-catalog"))
    catalog.add_dataset("cells", store, description="scenario-matrix dataset")
    service = CorrelationService(
        catalog,
        engine_options=dict(PRUNED_OPTIONS),
        basic_window_size=BASIC,
        memory_budget=MATRIX_BUDGET,
    )
    with CorrelationServer(service) as server:
        yield ServiceClient(server.url)


@pytest.fixture(scope="module")
def matrix_reference(matrix_values):
    """Serial, dense, in-process: the bit-identity baseline for every cell."""
    return CorrelationSession(
        TimeSeriesMatrix(matrix_values),
        engine_options=dict(PRUNED_OPTIONS),
        basic_window_size=BASIC,
    )


def _served(client, query, workers=None):
    document = client.query_raw("cells", query, workers=workers)
    return document["plan"], result_from_wire(document)


def test_matrix_smoke_pruned_threshold_sharded(matrix_client, matrix_reference):
    query = ThresholdQuery(start=0, end=LENGTH, window=128, step=32, threshold=0.55)
    local = matrix_reference.run(query)
    plan, remote = _served(matrix_client, query, workers=2)
    assert "exec=sharded(workers=2)" in plan
    # Pruning reads raw values for pivot selection; the plan says so instead
    # of pretending the budget bounded the build.
    assert "build=dense (engine needs raw values" in plan
    for (_, ours), (_, theirs) in zip(local.iter_windows(), remote.iter_windows()):
        np.testing.assert_array_equal(ours.rows, theirs.rows)
        np.testing.assert_array_equal(ours.cols, theirs.cols)
        np.testing.assert_array_equal(ours.values, theirs.values)


def test_matrix_smoke_topk_sharded_tiled(matrix_client, matrix_reference):
    query = TopKQuery(start=0, end=LENGTH, window=128, step=32, k=25)
    local = matrix_reference.run(query)
    plan, remote = _served(matrix_client, query, workers=2)
    assert "exec=sharded(workers=2)" in plan
    assert f"build=tiled(budget={MATRIX_BUDGET}B)" in plan
    assert remote.k == local.k and remote.num_windows == local.num_windows
    for ours, theirs in zip(local.windows, remote.windows):
        assert ours.window_index == theirs.window_index
        np.testing.assert_array_equal(ours.rows, theirs.rows)
        np.testing.assert_array_equal(ours.cols, theirs.cols)
        np.testing.assert_array_equal(ours.values, theirs.values)


@pytest.mark.parametrize("workers,expected_exec", [
    (None, "exec=serial"),                 # lagged x tiled: streamed windows
    (2, "exec=sharded(workers=2)"),        # lagged x sharded x tiled
])
def test_matrix_smoke_lagged_streamed(
    matrix_client, matrix_reference, workers, expected_exec
):
    query = LaggedQuery(start=0, end=LENGTH, window=128, step=32,
                        max_lag=4, threshold=0.6)
    local = matrix_reference.run(query)
    plan, remote = _served(matrix_client, query, workers=workers)
    assert expected_exec in plan
    assert f"build=tiled(budget={MATRIX_BUDGET}B)" in plan
    assert remote.num_windows == local.num_windows
    for ours, theirs in zip(local.windows, remote.windows):
        assert ours.window_index == theirs.window_index
        np.testing.assert_array_equal(ours.best_corr, theirs.best_corr)
        np.testing.assert_array_equal(ours.best_lag, theirs.best_lag)
