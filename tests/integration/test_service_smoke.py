"""Service smoke: the acceptance path of the catalog-backed query server.

Mirrors what the CI service-smoke job runs inside its 60-second budget:
generate a dataset, register it (data + a persisted stats index) in an
on-disk catalog, start a real HTTP server on an ephemeral port, and assert

1. a threshold query answered through :class:`ServiceClient` is
   **bit-identical** to the same query run in-process through
   :class:`CorrelationSession`,
2. a second identical request — issued concurrently — is served from the
   coalesced/warm-cache path (no second sketch build; asserted via the
   sketch ``CacheStats`` the server exposes), and
3. the streaming loop closes: appended columns reach a standing query and
   match the offline engine over the extended stream.
"""

import threading

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.service import CorrelationServer, CorrelationService, ServiceClient
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 12
LENGTH = 512
BASIC = 16

QUERY = ThresholdQuery(start=0, end=LENGTH, window=128, step=32, threshold=0.55)


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(20230618)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.5 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=128)
    store.append(values)
    catalog = Catalog(tmp_path_factory.mktemp("smoke-catalog"))
    catalog.add_dataset("generated", store, description="smoke dataset")
    catalog.add_index("generated", StatsIndex.build(values, basic_window_size=BASIC))
    with CorrelationServer(CorrelationService(catalog, basic_window_size=BASIC)) as server:
        yield server


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url)


def test_service_query_bit_identical_and_warm(client, values):
    local_session = CorrelationSession(
        TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
        basic_window_size=BASIC,
    )
    local = local_session.run(QUERY)

    remote = client.query("generated", QUERY)
    assert remote.query == local.query
    assert remote.to_edges() == local.to_edges()  # bit-identical, edge for edge
    for (_, ours), (_, theirs) in zip(local.iter_windows(), remote.iter_windows()):
        np.testing.assert_array_equal(ours.rows, theirs.rows)
        np.testing.assert_array_equal(ours.cols, theirs.cols)
        np.testing.assert_array_equal(ours.values, theirs.values)

    # Fire the identical query from several clients at once: every response
    # must stay bit-identical, and the server must not build a second sketch
    # — requests either coalesce onto the in-flight execution or hit the
    # warm cache.
    results = []

    def fire():
        results.append(client.query("generated", QUERY))

    threads = [threading.Thread(target=fire) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(results) == 4
    assert all(result.to_edges() == local.to_edges() for result in results)

    stats = client.dataset("generated")["stats"]
    cache = stats["sketch_cache"]
    # The catalog's persisted index satisfied the first query, so the server
    # never built a sketch at all; repeats were warm hits or coalesced.
    assert cache["builds"] == 0 and cache["seeds"] == 1
    assert cache["hits"] + stats["coalesced"] >= 4
    assert stats["queries"] + stats["coalesced"] == 5


def test_streaming_append_reaches_standing_queries(client, values):
    watch = client.watch("generated", QUERY)
    assert watch["emitted_windows"] == QUERY.num_windows

    rng = np.random.default_rng(7)
    block = rng.standard_normal((NUM_SERIES, 64))
    response = client.append("generated", block)
    assert response["length"] == LENGTH + 64
    (state,) = [w for w in response["watches"] if w["id"] == watch["id"]]
    assert len(state["windows"]) == 2  # 64 new columns complete two 32-steps

    full = np.concatenate([values, block], axis=1)
    offline = CorrelationSession(
        TimeSeriesMatrix(full), basic_window_size=BASIC
    ).run(
        ThresholdQuery(start=0, end=LENGTH + 64, window=128, step=32,
                       threshold=QUERY.threshold)
    )
    for emitted in state["windows"]:
        matrix = offline.matrices[emitted["index"]]
        assert emitted["rows"] == matrix.rows.tolist()
        assert emitted["cols"] == matrix.cols.tolist()
        assert emitted["values"] == pytest.approx(matrix.values.tolist())
