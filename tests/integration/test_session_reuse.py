"""Acceptance: cross-query sketch reuse makes threshold sweeps measurably faster.

The E4 workload (climate anomalies, 30-day window sliding daily) swept over
five thresholds is the canonical interactive-exploration pattern.  Through a
:class:`CorrelationSession` the sweep must (a) build the basic-window sketch
exactly once — asserted via cache stats, deterministically — and (b) beat
five independent ``DangoronEngine.run`` calls by >= 1.5x wall clock, because
the γ·N² sketch build dominates each independent run.
"""

import time

import pytest

from repro.api import CorrelationSession
from repro.core.dangoron import DangoronEngine
from repro.experiments.workloads import climate_workload

THRESHOLDS = [0.5, 0.6, 0.7, 0.8, 0.9]


@pytest.fixture(scope="module")
def workload():
    """The bench_e4 workload at its default size (scale 1.0)."""
    return climate_workload(scale=1.0, threshold=0.7, window_hours=1440)


class TestSweepReuse:
    def test_sweep_builds_sketch_exactly_once(self, workload):
        session = CorrelationSession(
            workload.matrix, basic_window_size=workload.basic_window_size
        )
        results = session.run_many(
            workload.query.with_threshold(beta) for beta in THRESHOLDS
        )
        assert len(results) == len(THRESHOLDS)
        assert session.sketch_cache.builds == 1
        assert session.cache_stats.misses == 1
        assert session.cache_stats.hits == len(THRESHOLDS) - 1

    def test_sweep_results_match_independent_runs(self, workload):
        session = CorrelationSession(
            workload.matrix, basic_window_size=workload.basic_window_size
        )
        engine = DangoronEngine(basic_window_size=workload.basic_window_size)
        for beta in THRESHOLDS:
            query = workload.query.with_threshold(beta)
            assert session.run(query).edge_sets() == engine.run(
                workload.matrix, query
            ).edge_sets()

    def test_sweep_is_at_least_1_5x_faster_than_independent_runs(self, workload):
        engine = DangoronEngine(basic_window_size=workload.basic_window_size)
        engine.run(workload.matrix, workload.query)  # warm numpy/BLAS paths

        started = time.perf_counter()
        for beta in THRESHOLDS:
            engine.run(workload.matrix, workload.query.with_threshold(beta))
        independent_seconds = time.perf_counter() - started

        session = CorrelationSession(
            workload.matrix, basic_window_size=workload.basic_window_size
        )
        started = time.perf_counter()
        session.run_many(
            workload.query.with_threshold(beta) for beta in THRESHOLDS
        )
        batched_seconds = time.perf_counter() - started

        assert session.sketch_cache.builds == 1
        speedup = independent_seconds / batched_seconds
        assert speedup >= 1.5, (
            f"sweep via session took {batched_seconds:.3f}s vs "
            f"{independent_seconds:.3f}s independent (speedup {speedup:.2f}x)"
        )
