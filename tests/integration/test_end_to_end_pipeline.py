"""Integration: the full pipeline from raw data to exported networks.

Mirrors what a user of the library would actually do with the paper's system:
generate (or load) data, persist it with a statistics index, answer a sliding
query with Dangoron, build the dynamic network, and export the results — then
verify every artefact is consistent with a direct computation.
"""

import numpy as np

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.datasets.climate import SyntheticUSCRN
from repro.datasets.loaders import load_uscrn_hourly, write_uscrn_hourly
from repro.network.dynamic import DynamicNetwork
from repro.network.export import read_edge_list, write_edge_list, write_summary_json
from repro.network.builder import graph_from_matrix
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex
from repro.timeseries.preprocess import znormalize


class TestClimatePipeline:
    def test_generate_store_query_network_export(self, tmp_path):
        # 1. Generate USCRN-like data and write it in the real file format.
        generator = SyntheticUSCRN(num_stations=12, num_days=30, seed=17)
        raw = generator.generate()
        paths = write_uscrn_hourly(raw, tmp_path / "uscrn")

        # 2. Load it back the way a user with real files would.
        loaded = load_uscrn_hourly(paths, resolution_hours=1.0)
        assert loaded.num_series == raw.num_series

        # 3. Preprocess (anomalies via z-normalisation for this small test).
        matrix = znormalize(loaded)

        # 4. Persist raw data + statistics index in a catalog.
        catalog = Catalog(tmp_path / "catalog")
        store = ChunkStore(matrix.num_series, chunk_columns=256,
                           series_ids=matrix.series_ids)
        store.append(matrix.values)
        catalog.add_dataset("uscrn_2020", store, description="synthetic USCRN")
        index = StatsIndex.build(matrix.values, basic_window_size=24)
        catalog.add_index("uscrn_2020", index)

        # 5. Answer a sliding query with Dangoron over the catalogued data.
        reopened = Catalog(tmp_path / "catalog")
        data = reopened.load_dataset("uscrn_2020").read_all()
        query = SlidingQuery(
            start=0, end=data.shape[1], window=240, step=24, threshold=0.5
        )
        from repro.timeseries.matrix import TimeSeriesMatrix

        ts = TimeSeriesMatrix(data, series_ids=matrix.series_ids)
        result = DangoronEngine(basic_window_size=24).run(ts, query)
        reference = BruteForceEngine().run(ts, query)
        report = compare_results(result, reference)
        assert report.precision == 1.0
        assert report.recall >= 0.9

        # 6. Build the dynamic network and export artefacts.
        network = DynamicNetwork.from_result(result)
        assert len(network) == query.num_windows
        edge_path = write_edge_list(
            graph_from_matrix(result[0], series_ids=result.series_ids),
            tmp_path / "window0.csv",
        )
        assert read_edge_list(edge_path).number_of_edges() == result[0].num_edges
        summary_path = write_summary_json(result, tmp_path / "summary.json")
        assert summary_path.exists()

    def test_query_results_identical_from_store_and_memory(self, tmp_path):
        generator = SyntheticUSCRN(num_stations=10, num_days=20, seed=23)
        matrix = generator.generate_anomalies()
        store = ChunkStore(matrix.num_series, chunk_columns=128,
                           series_ids=matrix.series_ids)
        store.append(matrix.values)
        path = store.save(tmp_path / "data.npz")
        restored = ChunkStore.load(path).read_all()
        assert np.allclose(restored, matrix.values)

        from repro.timeseries.matrix import TimeSeriesMatrix

        query = SlidingQuery(
            start=0, end=matrix.length, window=120, step=24, threshold=0.6
        )
        engine = DangoronEngine(basic_window_size=24)
        from_memory = engine.run(matrix, query)
        from_store = engine.run(
            TimeSeriesMatrix(restored, series_ids=matrix.series_ids), query
        )
        assert [m.edge_set() for m in from_memory] == [
            m.edge_set() for m in from_store
        ]
