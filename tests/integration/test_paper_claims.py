"""Integration: the paper's §4 claims at reduced scale.

The benchmark harness reproduces the claims at paper-like scale; these tests
assert the same *direction* of the results at a scale small enough for the
regular test suite, so a regression that destroys the headline behaviour is
caught by ``pytest tests/`` alone:

* Dangoron answers the climate workload faster than TSUBASA (the full-scale
  gap is ~an order of magnitude; here we only require a strict win).
* Its edge-set accuracy stays above 90%.
* Its accuracy is comparable to (not much worse than) verified ParCorr.
"""

import pytest

from repro.experiments.runner import run_comparison
from repro.experiments.workloads import climate_workload
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine


@pytest.fixture(scope="module")
def comparison():
    # A 30-day window sliding daily over ~three months of hourly data for ~100
    # stations: large enough for the pruning advantage to dominate the
    # per-window bookkeeping, small enough for the regular test suite.
    workload = climate_workload(scale=0.75, threshold=0.7, window_hours=1440)
    engines = [
        BruteForceEngine(),
        TsubasaEngine(basic_window_size=workload.basic_window_size),
        DangoronEngine(basic_window_size=workload.basic_window_size),
        ParCorrEngine(seed=1),
    ]
    return run_comparison(workload, engines=engines)


class TestPaperClaims:
    def test_dangoron_faster_than_tsubasa_pure_query_time(self, comparison):
        """Timing claim, made robust to scheduler noise by taking min-of-3 runs."""
        workload = comparison.workload
        tsubasa = TsubasaEngine(basic_window_size=workload.basic_window_size)
        dangoron = DangoronEngine(basic_window_size=workload.basic_window_size)
        tsubasa_best = min(
            tsubasa.run(workload.matrix, workload.query).stats.query_seconds
            for _ in range(3)
        )
        dangoron_best = min(
            dangoron.run(workload.matrix, workload.query).stats.query_seconds
            for _ in range(3)
        )
        assert dangoron_best < tsubasa_best

    def test_dangoron_prunes_most_pair_windows(self, comparison):
        dangoron = comparison.row("dangoron")
        assert dangoron.evaluation_fraction < 0.5

    def test_dangoron_accuracy_above_90_percent(self, comparison):
        dangoron = comparison.row("dangoron")
        assert dangoron.precision == pytest.approx(1.0)
        assert dangoron.recall >= 0.9
        assert dangoron.f1 >= 0.9

    def test_dangoron_accuracy_comparable_to_parcorr(self, comparison):
        dangoron = comparison.row("dangoron")
        parcorr = comparison.row("parcorr")
        assert dangoron.f1 >= parcorr.f1 - 0.05

    def test_exact_engines_report_identical_edges(self, comparison):
        brute = comparison.row("brute_force")
        tsubasa = comparison.row("tsubasa")
        assert brute.edges == tsubasa.edges
        assert tsubasa.recall == pytest.approx(1.0)
