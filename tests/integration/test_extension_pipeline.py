"""Integration tests across the extension modules.

These tie the new pieces together the way the examples do: cached repeated
queries, exploratory top-k feeding a threshold query, the robustness suite
driving engines end to end, and streaming alerting agreeing with an offline
analysis of the same data.
"""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results
from repro.analysis.significance import significance_threshold
from repro.analysis.stability import threshold_crossings
from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.core.incremental import IncrementalEngine
from repro.core.query import SlidingQuery
from repro.core.topk import sliding_top_k
from repro.network.communities import link_activity
from repro.network.dynamic import DynamicNetwork
from repro.storage.cache import QueryCache
from repro.streaming.monitor import NetworkChangeMonitor
from repro.streaming.online import OnlineCorrelationMonitor
from repro.tomborg.suite import case_by_name


class TestCachedExploration:
    def test_threshold_exploration_reuses_cached_results(self, small_matrix):
        """Sweeping thresholds re-runs the engine once per distinct threshold only."""
        cache = QueryCache(max_entries=8)
        engine = DangoronEngine(basic_window_size=32)
        base = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=0.6
        )
        sweep = [0.6, 0.7, 0.8, 0.7, 0.6]
        edge_counts = [
            cache.get_or_compute(small_matrix, base.with_threshold(beta), engine).total_edges()
            for beta in sweep
        ]
        assert cache.stats.misses == 3
        assert cache.stats.hits == 2
        # Higher thresholds never report more edges.
        assert edge_counts[0] >= edge_counts[1] >= edge_counts[2]
        # Cached answers equal recomputed answers.
        assert edge_counts[3] == edge_counts[1]
        assert edge_counts[4] == edge_counts[0]


class TestTopKToThresholdPipeline:
    def test_topk_suggested_threshold_captures_persistent_pairs(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=0.0
        )
        topk = sliding_top_k(small_matrix, query, k=5, basic_window_size=32)
        beta = max(topk.suggested_threshold(), significance_threshold(query.window))
        tuned = query.with_threshold(beta)
        result = DangoronEngine(basic_window_size=32).run(small_matrix, tuned)
        network = DynamicNetwork.from_result(result)
        reported_pairs = set()
        ids = small_matrix.series_ids
        for graph in network.graphs:
            reported_pairs |= {tuple(sorted(e)) for e in graph.edges()}
        for i, j in topk.persistent_pairs(min_fraction=0.9):
            assert tuple(sorted((ids[i], ids[j]))) in reported_pairs


class TestSuiteDrivenEngines:
    def test_incremental_and_dangoron_agree_on_suite_case(self):
        dataset, query = case_by_name("sparse_easy").generate(
            num_series=12, segment_columns=256, seed=17
        )
        exact = BruteForceEngine().run(dataset.matrix, query)
        rolled = IncrementalEngine().run(dataset.matrix, query)
        pruned = DangoronEngine(basic_window_size=32).run(dataset.matrix, query)
        assert compare_results(rolled, exact).f1 == pytest.approx(1.0)
        assert compare_results(pruned, exact).precision == pytest.approx(1.0)

    def test_crossing_rate_predicts_pruned_recall_direction(self):
        """More threshold crossings (near-threshold data) means lower pruned recall."""
        easy_data, easy_query = case_by_name("sparse_easy").generate(
            num_series=12, segment_columns=256, seed=19
        )
        hard_data, hard_query = case_by_name("uniform_near_threshold").generate(
            num_series=12, segment_columns=256, seed=19
        )
        easy_crossings = threshold_crossings(easy_data.matrix, easy_query).crossing_rate
        hard_crossings = threshold_crossings(hard_data.matrix, hard_query).crossing_rate
        assert hard_crossings >= easy_crossings


class TestStreamingVsOffline:
    def test_monitor_edge_counts_match_offline_run(self, rng):
        base = rng.standard_normal(512)
        values = np.stack([
            base,
            base + 0.1 * rng.standard_normal(512),
            rng.standard_normal(512),
            rng.standard_normal(512),
        ])
        from repro.timeseries.matrix import TimeSeriesMatrix

        matrix = TimeSeriesMatrix(values)
        online = OnlineCorrelationMonitor(
            num_series=4, window=128, step=64, threshold=0.8, basic_window_size=32,
            use_temporal_pruning=False,
        )
        monitor = NetworkChangeMonitor(monitor=online)
        for start in range(0, 512, 64):
            monitor.append(values[:, start : start + 64])

        offline = BruteForceEngine().run(matrix, online.equivalent_query(512))
        assert monitor.edge_count_history == [m.num_edges for m in offline.matrices]
        # The blinking-link view of the offline result covers the same windows.
        activity = link_activity(DynamicNetwork.from_result(offline))
        assert activity.num_windows == offline.num_windows
