"""Integration: Tomborg as a benchmark — known ground truth drives evaluation.

This is the workflow the paper proposes Tomborg for: generate data with a
known (possibly time-varying) correlation structure, run the engines, and
score them against both the generated ground truth and the exact computation.
"""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine
from repro.baselines.statstream import StatStreamEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.network.dynamic import DynamicNetwork
from repro.tomborg.correlation_targets import block_correlation_matrix
from repro.tomborg.distributions import BimodalCorrelations
from repro.tomborg.generator import SegmentSpec, TomborgGenerator
from repro.tomborg.spectral import flat_spectrum, peaked_spectrum
from repro.tomborg.validation import validate_dataset


class TestTomborgDrivenEvaluation:
    def test_target_edges_recovered_within_segment(self):
        target = block_correlation_matrix([6, 6, 6], within=0.85, between=0.05)
        generator = TomborgGenerator(num_series=18, seed=41)
        dataset = generator.generate(1024, target)
        assert validate_dataset(dataset)[0].max_abs_error < 1e-6

        query = SlidingQuery(
            start=0, end=1024, window=1024, step=1024, threshold=0.7
        )
        result = DangoronEngine(basic_window_size=64).run(dataset.matrix, query)
        assert result[0].edge_set() == dataset.target_edges(0.7)

    def test_dynamic_ground_truth_tracked_across_segments(self):
        generator = TomborgGenerator(num_series=16, seed=43)
        dense = block_correlation_matrix([8, 8], within=0.9, between=0.3)
        sparse = np.eye(16)
        dataset = generator.generate_piecewise(
            [SegmentSpec(512, dense), SegmentSpec(512, sparse)]
        )
        query = SlidingQuery(
            start=0, end=1024, window=128, step=64, threshold=0.7
        )
        result = DangoronEngine(basic_window_size=64).run(dataset.matrix, query)
        network = DynamicNetwork.from_result(result)
        edge_counts = network.edge_count_series()
        starts = result.window_starts()
        first_segment = edge_counts[starts + query.window <= 512]
        second_segment = edge_counts[starts >= 512]
        assert first_segment.mean() > 10 * max(second_segment.mean(), 0.1)

    def test_robustness_gap_between_spectra(self):
        """Frequency-truncation degrades on flat spectra; Dangoron does not (E10)."""
        distribution = BimodalCorrelations(strong_fraction=0.2, strong_center=0.85)
        recalls = {}
        for name, spectrum in (("peaked", peaked_spectrum(0.03, 0.01)),
                               ("flat", flat_spectrum())):
            generator = TomborgGenerator(num_series=16, spectrum=spectrum, seed=47)
            dataset = generator.generate(1024, distribution)
            query = SlidingQuery(
                start=0, end=1024, window=256, step=128, threshold=0.7
            )
            exact = BruteForceEngine().run(dataset.matrix, query)
            statstream = StatStreamEngine(
                num_coefficients=6, verify=False, candidate_margin=0.0
            ).run(dataset.matrix, query)
            dangoron = DangoronEngine(basic_window_size=64).run(dataset.matrix, query)
            recalls[name] = {
                "statstream": compare_results(statstream, exact).recall,
                "dangoron": compare_results(dangoron, exact).recall,
            }
        assert recalls["peaked"]["statstream"] >= recalls["flat"]["statstream"]
        assert recalls["flat"]["dangoron"] >= 0.9
        assert recalls["peaked"]["dangoron"] >= 0.9

    def test_parcorr_insensitive_to_spectrum(self):
        """Random projection does not depend on energy concentration."""
        distribution = BimodalCorrelations(strong_fraction=0.2, strong_center=0.85)
        recalls = []
        for spectrum in (peaked_spectrum(0.03, 0.01), flat_spectrum()):
            generator = TomborgGenerator(num_series=14, spectrum=spectrum, seed=53)
            dataset = generator.generate(768, distribution)
            query = SlidingQuery(
                start=0, end=768, window=256, step=128, threshold=0.7
            )
            exact = BruteForceEngine().run(dataset.matrix, query)
            parcorr = ParCorrEngine(
                sketch_size=128, candidate_margin=0.1, seed=2
            ).run(dataset.matrix, query)
            recalls.append(compare_results(parcorr, exact).recall)
        assert min(recalls) >= 0.85
        assert abs(recalls[0] - recalls[1]) < 0.15
