"""Integration: streaming ingestion matches offline batch evaluation."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.streaming.online import OnlineCorrelationMonitor
from repro.tomborg.correlation_targets import block_correlation_matrix
from repro.tomborg.generator import SegmentSpec, TomborgGenerator


@pytest.fixture(scope="module")
def piecewise_dataset():
    """Tomborg data whose correlation structure changes mid-stream."""
    generator = TomborgGenerator(num_series=14, seed=31)
    dense = block_correlation_matrix([7, 7], within=0.85, between=0.2)
    sparse = block_correlation_matrix([7, 7], within=0.3, between=0.0)
    return generator.generate_piecewise(
        [SegmentSpec(640, dense), SegmentSpec(640, sparse)]
    )


class TestStreamingMatchesOffline:
    @pytest.mark.parametrize("batch_columns", [13, 64, 200])
    def test_any_batching_produces_identical_windows(
        self, piecewise_dataset, batch_columns
    ):
        matrix = piecewise_dataset.matrix
        monitor = OnlineCorrelationMonitor(
            num_series=matrix.num_series,
            window=256,
            step=64,
            threshold=0.7,
            basic_window_size=64,
        )
        emitted = []
        for start in range(0, matrix.length, batch_columns):
            emitted.extend(
                monitor.append(matrix.values[:, start : start + batch_columns])
            )
        query = monitor.equivalent_query(matrix.length)
        offline = DangoronEngine(basic_window_size=64).run(matrix, query)
        assert len(emitted) == query.num_windows
        for streamed, batch in zip(emitted, offline.matrices):
            assert streamed.matrix.edge_set() == batch.edge_set()

    def test_stream_detects_structure_change(self, piecewise_dataset):
        matrix = piecewise_dataset.matrix
        monitor = OnlineCorrelationMonitor(
            num_series=matrix.num_series,
            window=256,
            step=64,
            threshold=0.7,
            basic_window_size=64,
        )
        emitted = []
        for start in range(0, matrix.length, 128):
            emitted.extend(monitor.append(matrix.values[:, start : start + 128]))
        edge_counts = np.array([r.matrix.num_edges for r in emitted])
        boundary = piecewise_dataset.segments[1].start
        early = edge_counts[[i for i, r in enumerate(emitted) if r.end <= boundary]]
        late = edge_counts[[i for i, r in enumerate(emitted) if r.start >= boundary]]
        assert early.mean() > late.mean()

    def test_streamed_edges_are_exact(self, piecewise_dataset):
        matrix = piecewise_dataset.matrix
        monitor = OnlineCorrelationMonitor(
            num_series=matrix.num_series,
            window=256,
            step=128,
            threshold=0.7,
            basic_window_size=64,
            use_temporal_pruning=False,
        )
        emitted = []
        for start in range(0, matrix.length, 160):
            emitted.extend(monitor.append(matrix.values[:, start : start + 160]))
        query = monitor.equivalent_query(matrix.length)
        reference = BruteForceEngine().run(matrix, query)
        for streamed, exact in zip(emitted, reference.matrices):
            assert streamed.matrix.edge_set() == exact.edge_set()
            for edge, value in streamed.matrix.edge_dict().items():
                assert value == pytest.approx(exact.edge_dict()[edge], abs=1e-7)
