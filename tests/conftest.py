"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens of series, a few thousand columns) so
the whole suite runs in well under a minute; the benchmark harness is where
paper-scale workloads live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import SlidingQuery
from repro.datasets.random_walk import ar1_series, white_noise
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.distributions import BimodalCorrelations
from repro.tomborg.generator import SegmentSpec, TomborgGenerator
from repro.tomborg.spectral import power_law_spectrum


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20230618)


@pytest.fixture(scope="session")
def small_matrix() -> TimeSeriesMatrix:
    """16 correlated AR(1) series of length 512 (shared innovations)."""
    return ar1_series(16, 512, coefficient=0.8, shared_innovation_weight=0.7, seed=42)


@pytest.fixture(scope="session")
def noise_matrix() -> TimeSeriesMatrix:
    """12 independent white-noise series of length 384 (no true edges)."""
    return white_noise(12, 384, seed=43)


@pytest.fixture(scope="session")
def tomborg_dataset():
    """Piecewise-stationary Tomborg data: 20 series, two segments of 768 columns."""
    generator = TomborgGenerator(
        num_series=20, spectrum=power_law_spectrum(0.5), seed=44
    )
    strong = BimodalCorrelations(strong_fraction=0.25, strong_center=0.85)
    weak = BimodalCorrelations(strong_fraction=0.05, strong_center=0.8)
    return generator.generate_piecewise(
        [SegmentSpec(768, strong), SegmentSpec(768, weak)]
    )


@pytest.fixture(scope="session")
def tomborg_matrix(tomborg_dataset) -> TimeSeriesMatrix:
    return tomborg_dataset.matrix


@pytest.fixture
def standard_query(small_matrix) -> SlidingQuery:
    """A query aligned with basic windows of size 16/32 over the small matrix."""
    return SlidingQuery(
        start=0,
        end=small_matrix.length,
        window=128,
        step=32,
        threshold=0.6,
    )
