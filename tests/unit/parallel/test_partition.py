"""Unit tests for the pair-space partitioner."""

import numpy as np
import pytest

from repro.exceptions import ParallelError
from repro.parallel.partition import (
    pair_count,
    pair_slice,
    partition_pairs,
)


def test_pair_count_matches_triangle():
    for n in (0, 1, 2, 3, 10, 100):
        assert pair_count(n) == n * (n - 1) // 2


def test_pair_count_rejects_negative():
    with pytest.raises(ParallelError):
        pair_count(-1)


@pytest.mark.parametrize("n,blocks", [(2, 1), (5, 2), (10, 3), (17, 5), (17, 1)])
def test_partition_covers_every_pair_exactly_once(n, blocks):
    rows, cols = np.triu_indices(n, k=1)
    partition = partition_pairs(n, blocks)
    assert [b.index for b in partition] == list(range(len(partition)))
    covered_rows = np.concatenate([b.rows for b in partition])
    covered_cols = np.concatenate([b.cols for b in partition])
    assert np.array_equal(covered_rows, rows)
    assert np.array_equal(covered_cols, cols)
    # Contiguity: each block continues exactly where the previous stopped.
    position = 0
    for block in partition:
        assert block.start == position
        position = block.stop
        assert block.num_pairs == block.stop - block.start
    assert position == pair_count(n)


def test_partition_block_sizes_nearly_equal():
    partition = partition_pairs(32, 7)
    sizes = [b.num_pairs for b in partition]
    assert max(sizes) - min(sizes) <= 1
    assert sum(sizes) == pair_count(32)


def test_partition_clamps_blocks_to_pair_count():
    partition = partition_pairs(3, 10)  # only 3 pairs exist
    assert len(partition) == 3
    assert all(b.num_pairs == 1 for b in partition)


def test_partition_rejects_zero_blocks():
    with pytest.raises(ParallelError):
        partition_pairs(8, 0)


def test_pair_slice_matches_partition_blocks():
    for block in partition_pairs(12, 4):
        rows, cols = pair_slice(12, block.start, block.stop)
        assert np.array_equal(rows, block.rows)
        assert np.array_equal(cols, block.cols)


def test_pair_slice_rejects_out_of_range():
    with pytest.raises(ParallelError):
        pair_slice(5, 0, pair_count(5) + 1)
    with pytest.raises(ParallelError):
        pair_slice(5, -1, 2)
