"""Pair-subset runs of the shardable engines match their full serial runs."""

import numpy as np
import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.engine import validate_pair_subset
from repro.exceptions import ParallelError


def _subset_of_serial(serial_matrix, rows, cols):
    """The serial window entries restricted to the requested pair subset."""
    wanted = set(zip(rows.tolist(), cols.tolist()))
    keep = [
        index
        for index, (i, j) in enumerate(
            zip(serial_matrix.rows.tolist(), serial_matrix.cols.tolist())
        )
        if (i, j) in wanted
    ]
    return (
        serial_matrix.rows[keep],
        serial_matrix.cols[keep],
        serial_matrix.values[keep],
    )


@pytest.mark.parametrize("engine_factory", [
    lambda: DangoronEngine(basic_window_size=16),
    lambda: TsubasaEngine(basic_window_size=16),
])
def test_pair_subset_run_matches_serial_restriction(
    small_matrix, standard_query, engine_factory
):
    engine = engine_factory()
    serial = engine.run(small_matrix, standard_query)
    rows, cols = np.triu_indices(small_matrix.num_series, k=1)
    subset = slice(10, 75)
    restricted = engine.run(
        small_matrix, standard_query, pairs=(rows[subset], cols[subset])
    )
    assert restricted.num_windows == serial.num_windows
    assert restricted.stats.candidate_pairs == 65
    for serial_m, restricted_m in zip(serial.matrices, restricted.matrices):
        expected = _subset_of_serial(serial_m, rows[subset], cols[subset])
        assert np.array_equal(restricted_m.rows, expected[0])
        assert np.array_equal(restricted_m.cols, expected[1])
        assert np.array_equal(restricted_m.values, expected[2])


def test_dangoron_declares_shardability_by_configuration():
    assert DangoronEngine().supports_pair_subset()
    # Horizontal pruning is per-pair (pivot bounds are identical in every
    # shard), so it shards — except when unseeded random pivot selection
    # would make each shard draw different pivots.
    assert DangoronEngine(use_horizontal_pruning=True).supports_pair_subset()
    assert DangoronEngine(
        use_horizontal_pruning=True, pivot_strategy="variance"
    ).supports_pair_subset()
    assert DangoronEngine(
        use_horizontal_pruning=True, pivot_strategy="random", seed=7
    ).supports_pair_subset()
    assert not DangoronEngine(
        use_horizontal_pruning=True, pivot_strategy="random"
    ).supports_pair_subset()
    assert TsubasaEngine().supports_pair_subset()


def test_dangoron_rejects_pairs_with_unseeded_random_pivots(
    small_matrix, standard_query
):
    engine = DangoronEngine(
        basic_window_size=16, use_horizontal_pruning=True, pivot_strategy="random"
    )
    with pytest.raises(ParallelError, match="random"):
        engine.run(
            small_matrix,
            standard_query,
            pairs=(np.array([0, 0]), np.array([1, 2])),
        )


@pytest.mark.parametrize("engine_options", [
    {"pivot_strategy": "kcenter"},
    {"pivot_strategy": "variance"},
    {"pivot_strategy": "random", "seed": 11},
    {"pivot_strategy": "kcenter", "use_temporal_pruning": False},
])
def test_pruned_pair_subset_matches_serial_restriction(
    small_matrix, standard_query, engine_options
):
    """Horizontal pruning decisions are per-pair: subsets match the serial run."""
    engine = DangoronEngine(
        basic_window_size=16,
        use_horizontal_pruning=True,
        num_pivots=3,
        **engine_options,
    )
    serial = engine.run(small_matrix, standard_query)
    rows, cols = np.triu_indices(small_matrix.num_series, k=1)
    subset = slice(10, 75)
    restricted = engine.run(
        small_matrix, standard_query, pairs=(rows[subset], cols[subset])
    )
    for serial_m, restricted_m in zip(serial.matrices, restricted.matrices):
        expected = _subset_of_serial(serial_m, rows[subset], cols[subset])
        assert np.array_equal(restricted_m.rows, expected[0])
        assert np.array_equal(restricted_m.cols, expected[1])
        assert np.array_equal(restricted_m.values, expected[2])


def test_validate_pair_subset_rejects_malformed_subsets():
    with pytest.raises(ParallelError):
        validate_pair_subset((np.array([0, 1]), np.array([1])), 4)
    with pytest.raises(ParallelError):
        validate_pair_subset((np.array([1]), np.array([1])), 4)  # i == j
    with pytest.raises(ParallelError):
        validate_pair_subset((np.array([2]), np.array([1])), 4)  # i > j
    with pytest.raises(ParallelError):
        validate_pair_subset((np.array([0]), np.array([4])), 4)  # j out of range
    with pytest.raises(ParallelError):
        validate_pair_subset("not-a-pair-tuple", 4)


def test_validate_pair_subset_accepts_empty_and_normalizes_dtype():
    rows, cols = validate_pair_subset(([], []), 4)
    assert len(rows) == 0 and len(cols) == 0
    rows, cols = validate_pair_subset(([0, 1], [2, 3]), 4)
    assert rows.dtype == np.int64 and cols.dtype == np.int64
