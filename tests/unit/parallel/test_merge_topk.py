"""Top-k merge edge cases and the sharded-pruning regression guarantee.

The merge layer's top-k claim is *exactness*: re-ranking the union of the
shards' local top-k candidates reproduces the serial selection under the
canonical total order (rank descending, then ascending ``(i, j)``).  The
edge cases that historically break approximate mergers — duplicate values
straddling the k boundary, shards smaller than k, shards with no pairs at
all — are pinned here, alongside the regression test that sharding never
costs pruning effectiveness.
"""

import numpy as np
import pytest

from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.core.topk import TopKResult, TopKWindow, select_top_k
from repro.exceptions import ParallelError
from repro.parallel.merge import merge_topk_results

#: One-window query shared by the constructed-shard tests.
QUERY = SlidingQuery(start=0, end=64, window=64, step=64, threshold=1.0)


def _shard(rows, cols, values, k, absolute=False):
    """A TopKResult as a shard would return it: its own local top-k."""
    window = select_top_k(
        np.asarray(rows), np.asarray(cols), np.asarray(values), k,
        absolute=absolute, window_index=0,
    )
    return TopKResult(query=QUERY, k=k, absolute=absolute, windows=[window])


def _merged_pairs(shards, k, absolute=False):
    merged = merge_topk_results(QUERY, k, absolute, shards)
    window = merged.windows[0]
    return list(zip(window.rows.tolist(), window.cols.tolist(),
                    window.values.tolist()))


def test_duplicate_values_at_the_k_boundary_resolve_canonically():
    """Ties at the cut break by ascending (i, j) — in merge AND in serial.

    Four pairs share the boundary value 0.5; with k=3 only the two
    canonically smallest tied pairs may survive alongside the 0.9 leader,
    regardless of which shard held which tied pair.
    """
    rows = [0, 0, 1, 2, 3]
    cols = [1, 2, 3, 4, 5]
    values = [0.9, 0.5, 0.5, 0.5, 0.5]
    serial = select_top_k(
        np.array(rows), np.array(cols), np.array(values), 3,
        absolute=False, window_index=0,
    )
    shards = [
        _shard(rows[:2], cols[:2], values[:2], k=3),   # holds (0,1) and (0,2)
        _shard(rows[2:], cols[2:], values[2:], k=3),   # holds the other ties
    ]
    merged = _merged_pairs(shards, k=3)
    assert merged == list(zip(serial.rows.tolist(), serial.cols.tolist(),
                              serial.values.tolist()))
    assert merged == [(0, 1, 0.9), (0, 2, 0.5), (1, 3, 0.5)]


def test_k_larger_than_a_shard_pair_count():
    """Shards holding fewer than k pairs contribute everything they have."""
    shards = [
        _shard([0], [1], [0.2], k=4),                      # 1 pair < k
        _shard([0, 1, 2], [2, 2, 3], [0.8, 0.6, 0.4], k=4),
    ]
    assert _merged_pairs(shards, k=4) == [
        (0, 2, 0.8), (1, 2, 0.6), (2, 3, 0.4), (0, 1, 0.2),
    ]


def test_empty_shards_are_harmless():
    """A shard whose pair block produced no candidates merges as a no-op."""
    empty = _shard([], [], [], k=2)
    assert empty.windows[0].k == 0
    populated = _shard([0, 1], [1, 2], [0.7, 0.3], k=2)
    assert _merged_pairs([empty, populated, empty], k=2) == [
        (0, 1, 0.7), (1, 2, 0.3),
    ]
    # All-empty is still a valid (empty) answer, not an error.
    assert _merged_pairs([empty, empty], k=2) == []


def test_absolute_ranking_merges_by_magnitude():
    """|r| ranking survives the merge: a -0.9 beats a +0.8 across shards."""
    shards = [
        _shard([0], [1], [-0.9], k=2, absolute=True),
        _shard([1], [2], [0.8], k=2, absolute=True),
    ]
    assert _merged_pairs(shards, k=2, absolute=True) == [
        (0, 1, -0.9), (1, 2, 0.8),
    ]


def test_merge_rejects_empty_shard_list():
    with pytest.raises(ParallelError, match="empty list"):
        merge_topk_results(QUERY, 3, False, [])


def test_sharded_pruning_prunes_at_least_as_much_as_serial(
    small_matrix, standard_query
):
    """Sharding never costs pruning power.

    Pivot bounds are computed identically in every shard from the shared
    sketch, so each pair's prune/evaluate decision is partition-independent —
    the shards' pruned counts sum to *exactly* the serial count.  Asserted
    as >= (the regression direction) plus the exact-sum identity.
    """
    engine = DangoronEngine(
        basic_window_size=16,
        use_horizontal_pruning=True,
        pivot_strategy="kcenter",
        num_pivots=3,
    )
    serial = engine.run(small_matrix, standard_query)
    rows, cols = np.triu_indices(small_matrix.num_series, k=1)
    half = len(rows) // 2
    shards = [
        engine.run(small_matrix, standard_query,
                   pairs=(rows[:half], cols[:half])),
        engine.run(small_matrix, standard_query,
                   pairs=(rows[half:], cols[half:])),
    ]
    assert serial.stats.pruned_horizontally > 0  # the guarantee is non-vacuous
    sharded_pruned = sum(s.stats.pruned_horizontally for s in shards)
    assert sharded_pruned >= serial.stats.pruned_horizontally
    assert sharded_pruned == serial.stats.pruned_horizontally
    assert (
        sum(s.stats.exact_evaluations for s in shards)
        == serial.stats.exact_evaluations
    )
