"""Unit tests for the sharded executor and the merge layer."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import ParallelError
from repro.parallel import (
    MODE_PROCESS,
    MODE_SERIAL,
    MODE_THREAD,
    ShardedExecutor,
    available_workers,
    merge_shard_results,
    partition_pairs,
)


def _assert_identical(serial, sharded):
    assert sharded.num_windows == serial.num_windows
    for a, b in zip(serial.matrices, sharded.matrices):
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)
        assert np.array_equal(a.values, b.values)


@pytest.mark.parametrize("mode", [MODE_THREAD, MODE_PROCESS])
def test_sharded_run_is_bit_identical(small_matrix, standard_query, mode):
    engine = DangoronEngine(basic_window_size=16)
    serial = engine.run(small_matrix, standard_query)
    sharded = ShardedExecutor(workers=3, mode=mode).run(
        engine, small_matrix, standard_query
    )
    _assert_identical(serial, sharded)
    assert sharded.stats.exact_evaluations == serial.stats.exact_evaluations
    assert sharded.stats.skipped_by_jumping == serial.stats.skipped_by_jumping
    assert sharded.stats.candidate_pairs == serial.stats.candidate_pairs
    assert sharded.stats.extra["parallel_workers"] == 3.0
    assert sharded.stats.extra["parallel_mode_process"] == float(
        mode == MODE_PROCESS
    )


def test_sharded_run_shares_one_prebuilt_sketch(small_matrix, standard_query):
    engine = TsubasaEngine(basic_window_size=16)
    sketch = BasicWindowSketch.build(
        small_matrix.values, engine.plan_layout(standard_query)
    )
    sharded = ShardedExecutor(workers=2, mode=MODE_THREAD).run(
        engine, small_matrix, standard_query, sketch=sketch
    )
    serial = engine.run(small_matrix, standard_query, sketch=sketch)
    _assert_identical(serial, sharded)
    assert sharded.stats.sketch_build_seconds == sketch.build_seconds


def test_workers_one_runs_serially(small_matrix, standard_query):
    engine = DangoronEngine(basic_window_size=16)
    result = ShardedExecutor(workers=1).run(engine, small_matrix, standard_query)
    # The serial path returns the engine's own result: no parallel extras.
    assert "parallel_workers" not in result.stats.extra


def test_auto_mode_picks_threads_for_small_inputs():
    executor = ShardedExecutor(workers=4)
    assert executor.resolve_mode(num_pairs=120, num_windows=10) == MODE_THREAD
    assert (
        executor.resolve_mode(num_pairs=10_000, num_windows=100) == MODE_PROCESS
    )
    assert ShardedExecutor(workers=1).resolve_mode(120, 10) == MODE_SERIAL


def test_unshardable_engine_is_rejected(small_matrix, standard_query):
    executor = ShardedExecutor(workers=2, mode=MODE_THREAD)
    with pytest.raises(ParallelError):
        executor.run(BruteForceEngine(), small_matrix, standard_query)


def test_executor_validates_configuration():
    with pytest.raises(ParallelError):
        ShardedExecutor(workers=0)
    with pytest.raises(ParallelError):
        ShardedExecutor(workers=2, mode="fleet")
    with pytest.raises(ParallelError):
        ShardedExecutor(workers=2, num_shards=0)
    with pytest.raises(ParallelError):
        ShardedExecutor(workers=2, shards_per_worker=0)


def test_available_workers_positive():
    assert available_workers() >= 1


def test_shardable_engine_without_sketch_kwarg_runs_sketchless(
    small_matrix, standard_query
):
    """A shardable engine lacking the sketch keyword must not get one."""
    from repro.core.basic_window import BasicWindowLayout
    from repro.core.engine import SlidingCorrelationEngine
    from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix

    class _PairsOnlyEngine(SlidingCorrelationEngine):
        name = "pairs-only"
        exact = True

        def plan_layout(self, query):
            return BasicWindowLayout.for_query(query, 16)

        def supports_pair_subset(self):
            return True

        def run(self, matrix, query, *, pairs=None):  # no sketch kwarg
            matrices = [
                ThresholdedMatrix(matrix.num_series, [], [], [])
                for _ in range(query.num_windows)
            ]
            return CorrelationSeriesResult(query, matrices)

    result = ShardedExecutor(workers=2, mode=MODE_THREAD).run(
        _PairsOnlyEngine(), small_matrix, standard_query
    )
    assert result.num_windows == standard_query.num_windows


def test_merge_rejects_inconsistent_shards(small_matrix, standard_query):
    engine = DangoronEngine(basic_window_size=16)
    blocks = partition_pairs(small_matrix.num_series, 2)
    shard = engine.run(
        small_matrix, standard_query, pairs=(blocks[0].rows, blocks[0].cols)
    )
    with pytest.raises(ParallelError):
        merge_shard_results(standard_query, [])
    shorter = type(standard_query)(
        start=standard_query.start,
        end=standard_query.end,
        window=standard_query.window,
        step=standard_query.step * 2,
        threshold=standard_query.threshold,
    )
    with pytest.raises(ParallelError):
        merge_shard_results(shorter, [shard])


def test_merge_handles_arbitrary_shard_order(small_matrix, standard_query):
    engine = DangoronEngine(basic_window_size=16)
    serial = engine.run(small_matrix, standard_query)
    blocks = partition_pairs(small_matrix.num_series, 4)
    shards = [
        engine.run(small_matrix, standard_query, pairs=(b.rows, b.cols))
        for b in blocks
    ]
    merged = merge_shard_results(
        standard_query, list(reversed(shards)), series_ids=small_matrix.series_ids
    )
    _assert_identical(serial, merged)
