"""Merge edge cases: empty shards and degenerate (single-pair) pair spaces."""

import numpy as np
import pytest

from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.exceptions import ParallelError
from repro.parallel.merge import merge_shard_results
from repro.parallel.partition import partition_pairs
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture
def matrix():
    rng = np.random.default_rng(17)
    base = rng.standard_normal(256)
    values = np.stack([base + 0.3 * rng.standard_normal(256) for _ in range(6)])
    return TimeSeriesMatrix(values)


@pytest.fixture
def query():
    return SlidingQuery(start=0, end=256, window=64, step=32, threshold=0.5)


def _assert_identical(serial, merged):
    assert serial.num_windows == merged.num_windows
    for a, b in zip(serial.matrices, merged.matrices):
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)
        assert np.array_equal(a.values, b.values)


@pytest.mark.parametrize("engine_cls", [DangoronEngine, TsubasaEngine])
def test_merge_with_empty_shard_reproduces_serial(matrix, query, engine_cls):
    """A shard holding zero pairs contributes nothing and breaks nothing.

    ``partition_pairs`` never produces empty blocks, but a custom partition
    (or a pair space smaller than the shard count upstream) legitimately
    can; the merge must treat an all-windows-empty shard as a no-op.
    """
    engine = engine_cls(basic_window_size=16)
    serial = engine.run(matrix, query)
    rows, cols = np.triu_indices(matrix.num_series, k=1)
    empty = np.empty(0, dtype=np.int64)
    shards = [
        engine.run(matrix, query, pairs=(rows, cols)),
        engine.run(matrix, query, pairs=(empty, empty)),
    ]
    merged = merge_shard_results(query, shards, series_ids=matrix.series_ids)
    _assert_identical(serial, merged)
    # The empty shard still answered the query's windows, just with no pairs.
    assert all(m.num_edges == 0 for m in shards[1].matrices)


def test_merge_only_empty_shards_yields_empty_windows(matrix, query):
    engine = TsubasaEngine(basic_window_size=16)
    empty = np.empty(0, dtype=np.int64)
    shard = engine.run(matrix, query, pairs=(empty, empty))
    merged = merge_shard_results(query, [shard, shard])
    assert merged.num_windows == query.num_windows
    assert all(m.num_edges == 0 for m in merged.matrices)


def test_single_pair_space_partitions_and_merges(query):
    """Two series (one pair): partitioning clamps and the merge stays exact."""
    rng = np.random.default_rng(3)
    base = rng.standard_normal(256)
    matrix = TimeSeriesMatrix(
        np.stack([base, base + 0.2 * rng.standard_normal(256)])
    )
    blocks = partition_pairs(2, 4)
    assert len(blocks) == 1  # clamped to the single pair
    engine = DangoronEngine(basic_window_size=16)
    serial = engine.run(matrix, query)
    shards = [
        engine.run(matrix, query, pairs=(block.rows, block.cols))
        for block in blocks
    ]
    merged = merge_shard_results(query, shards, series_ids=matrix.series_ids)
    _assert_identical(serial, merged)


def test_merge_rejects_empty_shard_list(query):
    with pytest.raises(ParallelError, match="empty list"):
        merge_shard_results(query, [])
