"""Unit tests for the persisted basic-window statistics index."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.stats_index import StatsIndex


class TestBuildAndQuery:
    def test_build_covers_complete_basic_windows(self, rng):
        data = rng.normal(size=(6, 100))
        index = StatsIndex.build(data, basic_window_size=16)
        assert index.layout.size == 16
        assert index.layout.count == 6
        assert index.covered_columns == 96
        assert index.num_series == 6
        assert index.memory_bytes() > 0

    def test_wrapped_sketch_answers_queries(self, rng):
        data = rng.normal(size=(5, 128))
        index = StatsIndex.build(data, basic_window_size=32)
        from repro.core.correlation import correlation_matrix

        expected = correlation_matrix(data[:, 0:64])
        assert np.allclose(index.sketch.exact_matrix_scan(0, 2), expected, atol=1e-9)

    def test_build_requires_2d(self, rng):
        with pytest.raises(StorageError):
            StatsIndex.build(rng.normal(size=50), basic_window_size=10)


class TestExtension:
    def test_extend_matches_full_rebuild(self, rng):
        data = rng.normal(size=(4, 160))
        incremental = StatsIndex.build(data[:, :64], basic_window_size=16)
        appended = incremental.extend(data[:, 64:160])
        assert appended == 6
        rebuilt = StatsIndex.build(data, basic_window_size=16)
        assert incremental.layout.count == rebuilt.layout.count
        assert np.allclose(
            incremental.sketch.series_sums, rebuilt.sketch.series_sums
        )
        assert np.allclose(
            incremental.sketch.pair_sumprods, rebuilt.sketch.pair_sumprods
        )
        assert np.allclose(
            incremental.sketch.exact_matrix_scan(0, 10),
            rebuilt.sketch.exact_matrix_scan(0, 10),
        )

    def test_extend_with_incomplete_window_appends_nothing(self, rng):
        index = StatsIndex.build(rng.normal(size=(3, 32)), basic_window_size=16)
        assert index.extend(rng.normal(size=(3, 10))) == 0
        assert index.layout.count == 2

    def test_extend_with_previous_tail(self, rng):
        data = rng.normal(size=(3, 64))
        index = StatsIndex.build(data[:, :32], basic_window_size=16)
        tail = data[:, 32:40]
        appended = index.extend(data[:, 40:64], previous_tail=tail)
        assert appended == 2
        rebuilt = StatsIndex.build(data, basic_window_size=16)
        assert np.allclose(index.sketch.series_sums, rebuilt.sketch.series_sums)

    def test_extend_shape_mismatch(self, rng):
        index = StatsIndex.build(rng.normal(size=(3, 32)), basic_window_size=16)
        with pytest.raises(StorageError):
            index.extend(rng.normal(size=(4, 16)))


class TestPersistence:
    def test_save_load_round_trip(self, rng, tmp_path):
        data = rng.normal(size=(4, 96))
        index = StatsIndex.build(data, basic_window_size=24)
        path = index.save(tmp_path / "stats.npz")
        loaded = StatsIndex.load(path)
        assert loaded.layout.size == 24
        assert loaded.layout.count == index.layout.count
        assert np.allclose(
            loaded.sketch.exact_matrix_scan(0, 4),
            index.sketch.exact_matrix_scan(0, 4),
        )

    def test_load_missing_or_foreign_file(self, tmp_path):
        with pytest.raises(StorageError):
            StatsIndex.load(tmp_path / "missing.npz")
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, unrelated=np.arange(4))
        with pytest.raises(StorageError):
            StatsIndex.load(foreign)

    def test_repr(self, rng):
        index = StatsIndex.build(rng.normal(size=(3, 64)), basic_window_size=16)
        assert "basic_windows=4" in repr(index)
