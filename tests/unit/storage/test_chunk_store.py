"""Unit tests for the columnar chunk store."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.chunk_store import ChunkStore


class TestAppendAndRead:
    def test_append_single_and_multi_columns(self, rng):
        store = ChunkStore(num_series=3, chunk_columns=4)
        store.append(rng.normal(size=3))
        assert store.length == 1
        store.append(rng.normal(size=(3, 10)))
        assert store.length == 11
        assert store.num_chunks == 3  # 4 + 4 + 3

    def test_read_spans_chunk_boundaries(self, rng):
        data = rng.normal(size=(4, 50))
        store = ChunkStore(4, chunk_columns=7)
        store.append(data)
        assert np.allclose(store.read(5, 30), data[:, 5:30])
        assert np.allclose(store.read_all(), data)

    def test_read_all_on_empty_store(self):
        store = ChunkStore(2, chunk_columns=5)
        assert store.read_all().shape == (2, 0)

    def test_chunk_boundaries(self, rng):
        store = ChunkStore(2, chunk_columns=10)
        store.append(rng.normal(size=(2, 25)))
        assert store.chunk_boundaries() == [0, 10, 20, 25]

    def test_incremental_appends_equal_bulk_append(self, rng):
        data = rng.normal(size=(3, 40))
        bulk = ChunkStore(3, chunk_columns=16)
        bulk.append(data)
        incremental = ChunkStore(3, chunk_columns=16)
        for start in range(0, 40, 7):
            incremental.append(data[:, start : start + 7])
        assert np.allclose(bulk.read_all(), incremental.read_all())

    def test_invalid_reads(self, rng):
        store = ChunkStore(2, chunk_columns=8)
        store.append(rng.normal(size=(2, 8)))
        with pytest.raises(StorageError):
            store.read(0, 9)
        with pytest.raises(StorageError):
            store.read(-1, 4)
        with pytest.raises(StorageError):
            store.read(4, 4)

    def test_append_validation(self, rng):
        store = ChunkStore(3, chunk_columns=8)
        with pytest.raises(StorageError):
            store.append(rng.normal(size=(2, 5)))
        with pytest.raises(StorageError):
            store.append(np.array([[np.nan], [1.0], [2.0]]))

    def test_constructor_validation(self):
        with pytest.raises(StorageError):
            ChunkStore(0)
        with pytest.raises(StorageError):
            ChunkStore(2, chunk_columns=0)
        with pytest.raises(StorageError):
            ChunkStore(2, series_ids=["only-one"])


class TestPersistence:
    def test_save_and_load_round_trip(self, rng, tmp_path):
        data = rng.normal(size=(5, 33))
        store = ChunkStore(5, chunk_columns=8, series_ids=list("abcde"))
        store.append(data)
        path = store.save(tmp_path / "store.npz")
        loaded = ChunkStore.load(path)
        assert loaded.series_ids == list("abcde")
        assert loaded.chunk_columns == 8
        assert np.allclose(loaded.read_all(), data)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            ChunkStore.load(tmp_path / "nope.npz")

    def test_load_rejects_foreign_archive(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(StorageError):
            ChunkStore.load(path)

    def test_repr(self, rng):
        store = ChunkStore(2, chunk_columns=4)
        store.append(rng.normal(size=(2, 5)))
        assert "length=5" in repr(store)
