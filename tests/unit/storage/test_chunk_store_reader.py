"""Tests for the chunk-store streaming API, the lazy reader, and dtype safety."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.chunk_store import ChunkStore, ChunkStoreReader


@pytest.fixture
def values():
    return np.random.default_rng(9).standard_normal((4, 250))


@pytest.fixture
def store(values):
    store = ChunkStore(num_series=4, chunk_columns=64)
    store.append(values)
    return store


@pytest.fixture
def saved(store, tmp_path):
    return store.save(tmp_path / "data.npz")


class TestIterChunks:
    def test_stream_reassembles_to_read_all(self, values, store):
        chunks = list(store.iter_chunks())
        assert np.array_equal(np.concatenate(chunks, axis=1), values)
        for chunk in chunks:
            assert chunk.flags.c_contiguous
            assert chunk.dtype == np.float64

    def test_chunk_byte_sizes_match_stream(self, store):
        sizes = store.chunk_byte_sizes()
        assert sizes == [chunk.nbytes for chunk in store.iter_chunks()]
        assert sum(sizes) == 4 * 250 * 8


class TestDtypeMismatch:
    def _save_with_chunk_dtype(self, tmp_path, dtype):
        path = tmp_path / "drifted.npz"
        np.savez_compressed(
            path,
            __meta_num_series=np.array([2]),
            __meta_chunk_columns=np.array([8]),
            __meta_series_ids=np.array(["a", "b"]),
            chunk_000000=np.zeros((2, 8), dtype=dtype),
        )
        return path

    def test_load_rejects_drifted_dtype(self, tmp_path):
        path = self._save_with_chunk_dtype(tmp_path, np.float32)
        with pytest.raises(StorageError) as excinfo:
            ChunkStore.load(path)
        message = str(excinfo.value)
        assert "chunk_000000" in message
        assert "float32" in message
        assert "float64" in message
        assert str(path) in message

    def test_reader_rejects_drifted_dtype(self, tmp_path):
        path = self._save_with_chunk_dtype(tmp_path, np.int64)
        with pytest.raises(StorageError, match="expected float64"):
            list(ChunkStoreReader(path).iter_chunks())

    def test_load_accepts_canonical_dtype(self, tmp_path):
        path = self._save_with_chunk_dtype(tmp_path, np.float64)
        assert ChunkStore.load(path).length == 8


class TestSingleReadColdCache:
    def test_cold_tiled_build_reads_the_source_once(self, store):
        """Fingerprint and tiles share one pass over a cold source."""
        from repro.core.basic_window import BasicWindowLayout
        from repro.storage.cache import SketchCache, matrix_fingerprint
        from repro.core.tiled import ChunkBackedMatrix

        passes = {"count": 0}
        original = store.iter_chunks

        class CountingStore:
            num_series = store.num_series
            length = store.length
            series_ids = store.series_ids

            def iter_chunks(self):
                passes["count"] += 1
                return original()

        lazy = ChunkBackedMatrix(CountingStore())
        cache = SketchCache()
        layout = BasicWindowLayout(offset=0, size=25, count=10)
        sketch = cache.get_or_build_tiled(lazy, layout, memory_budget=10**6)
        assert passes["count"] == 1  # hashed during the tile pass, not before
        # The recorded fingerprint matches an independent dense computation.
        assert cache._fingerprint.peek(lazy) == matrix_fingerprint(
            ChunkBackedMatrix(store)
        )
        # Warm source: the second call is a pure cache hit, no re-read.
        assert cache.get_or_build_tiled(lazy, layout, memory_budget=10**6) is sketch
        assert passes["count"] == 1
        assert cache.builds == 1 and cache.stats.hits == 1


class TestChunkStoreReader:
    def test_metadata_matches_store(self, store, saved):
        with ChunkStoreReader(saved) as reader:
            assert reader.num_series == store.num_series
            assert reader.chunk_columns == store.chunk_columns
            assert reader.series_ids == store.series_ids
            assert reader.length == store.length
            assert reader.num_chunks == store.num_chunks

    def test_stream_matches_in_memory_store(self, store, saved):
        reader = ChunkStoreReader(saved)
        for lazy, resident in zip(reader.iter_chunks(), store.iter_chunks()):
            assert np.array_equal(lazy, resident)
        assert reader.chunk_byte_sizes() == store.chunk_byte_sizes()

    def test_read_all_and_to_matrix(self, values, saved):
        reader = ChunkStoreReader(saved)
        assert np.array_equal(reader.read_all(), values)
        assert np.array_equal(reader.to_matrix().values, values)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            ChunkStoreReader(tmp_path / "absent.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(StorageError, match="not a readable"):
            ChunkStoreReader(path)

    def test_wrong_kind_archive(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, something=np.arange(4))
        with pytest.raises(StorageError, match="not a chunk-store archive"):
            ChunkStoreReader(path)

    def test_length_probe_reads_headers_not_data(self, store, saved):
        # The reader learns the last chunk's width from the .npy header; a
        # full decompression at open time would defeat metadata-only use.
        reader = ChunkStoreReader(saved)
        assert reader.length == store.length
        assert reader._chunk_width(reader._chunk_keys[0]) == store.chunk_columns

    def test_empty_store_roundtrip(self, tmp_path):
        path = ChunkStore(num_series=3, chunk_columns=8).save(tmp_path / "empty.npz")
        reader = ChunkStoreReader(path)
        assert reader.length == 0
        assert list(reader.iter_chunks()) == []
        with pytest.raises(StorageError, match="no columns"):
            reader.to_matrix()
