"""Unit tests for fingerprint chaining and O(Δ) sketch extension.

The chain lets an append-only stream re-key its cached sketches under the
grown matrix's digest without re-hashing history, and lets the cache refresh
a sketch by extending a cached prefix with only the appended basic windows
(``SketchCache.get_or_extend``) — bit-identical to a scratch build.
"""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.datasets.random_walk import ar1_series
from repro.exceptions import StorageError
from repro.storage.cache import SketchCache, matrix_fingerprint
from repro.timeseries.matrix import TimeSeriesMatrix


def grown(matrix: TimeSeriesMatrix, columns: np.ndarray) -> TimeSeriesMatrix:
    return TimeSeriesMatrix(
        np.concatenate([matrix.values, columns], axis=1),
        series_ids=list(matrix.series_ids),
        time_axis=matrix.time_axis,
    )


@pytest.fixture
def matrix():
    return ar1_series(6, 256, coefficient=0.8, shared_innovation_weight=0.5, seed=3)


@pytest.fixture
def delta():
    rng = np.random.default_rng(11)
    return rng.normal(size=(6, 64))


class TestFingerprintChain:
    def test_chained_fingerprint_matches_scratch_hash(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        assert fingerprint == matrix_fingerprint(grown(matrix, delta))

    def test_chain_survives_multiple_appends(self, matrix):
        rng = np.random.default_rng(4)
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        current = matrix
        for step in (1, 7, 32, 64):  # including sub-window batches
            columns = rng.normal(size=(6, step))
            fingerprint = cache.extend_chain(current, columns)
            current = grown(current, columns)
            cache.adopt_fingerprint(current, fingerprint)
            assert fingerprint == matrix_fingerprint(
                TimeSeriesMatrix(
                    current.values.copy(),
                    series_ids=list(current.series_ids),
                    time_axis=current.time_axis,
                )
            )

    def test_entries_move_to_the_grown_fingerprint(self, matrix, delta):
        cache = SketchCache()
        layout = BasicWindowLayout.for_range(0, 256, 32)
        cache.get_or_build(matrix, layout)
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        # The old-range sketch is still served, now keyed under the grown
        # matrix's digest: same offset/size/count covers the same columns.
        assert cache.contains(bigger, layout)
        assert cache.get_or_build(bigger, layout).layout == layout
        assert cache.stats.hits == 1 and cache.builds == 1

    def test_append_shape_mismatch_raises(self, matrix):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        with pytest.raises(StorageError, match="columns"):
            cache.extend_chain(matrix, np.zeros((5, 4)))
        with pytest.raises(StorageError, match="columns"):
            cache.extend_chain(matrix, np.zeros(6))

    def test_has_chain_is_per_content(self, matrix, delta):
        cache = SketchCache()
        assert not cache.has_chain(matrix)
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        assert cache.has_chain(bigger)
        assert not cache.has_chain(matrix)  # the chain moved to the new digest


class TestExtensionCoverage:
    def test_prefix_coverage_reported(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        layout = BasicWindowLayout.for_range(0, 320, 32)
        assert cache.extension_coverage(bigger, layout) == 8

    def test_exact_hit_reports_full_coverage(self, matrix):
        cache = SketchCache()
        layout = BasicWindowLayout.for_range(0, 256, 32)
        cache.get_or_build(matrix, layout)
        # An exact cached entry is full coverage: nothing needs extending.
        assert cache.extension_coverage(matrix, layout) == layout.count

    def test_cold_cache_reports_no_coverage(self, matrix):
        cache = SketchCache()
        layout = BasicWindowLayout.for_range(0, 256, 32)
        assert cache.extension_coverage(matrix, layout) is None

    def test_no_coverage_without_prefix_entry(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        # Different window size: the cached prefix does not apply.
        assert cache.extension_coverage(bigger, BasicWindowLayout.for_range(0, 320, 16)) is None
        # Different offset: not a prefix of this layout.
        assert cache.extension_coverage(bigger, BasicWindowLayout.for_range(32, 320, 32)) is None

    def test_coverage_probe_has_no_side_effects(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        before = (cache.stats.hits, cache.stats.misses, cache.builds)
        cache.extension_coverage(bigger, BasicWindowLayout.for_range(0, 320, 32))
        assert (cache.stats.hits, cache.stats.misses, cache.builds) == before


class TestGetOrExtend:
    def test_extension_is_bit_identical_to_scratch_build(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        layout = BasicWindowLayout.for_range(0, 320, 32)
        extended = cache.get_or_extend(bigger, layout)
        scratch = BasicWindowSketch.build(bigger.values, layout)
        assert extended.series_sums.tobytes() == scratch.series_sums.tobytes()
        assert extended.series_sumsqs.tobytes() == scratch.series_sumsqs.tobytes()
        assert extended.pair_sumprods.tobytes() == scratch.pair_sumprods.tobytes()
        assert extended.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()

    def test_extension_counts_stats_not_builds(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        cache.get_or_extend(bigger, BasicWindowLayout.for_range(0, 320, 32))
        assert cache.builds == 1  # only the original scratch build
        assert cache.stats.sketch_extensions == 1
        assert cache.stats.extended_windows == 2

    def test_second_request_hits_the_extended_entry(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        layout = BasicWindowLayout.for_range(0, 320, 32)
        first = cache.get_or_extend(bigger, layout)
        second = cache.get_or_extend(bigger, layout)
        assert first is second
        assert cache.stats.sketch_extensions == 1

    def test_falls_back_to_build_without_chain(self, matrix):
        cache = SketchCache()
        layout = BasicWindowLayout.for_range(0, 256, 32)
        sketch = cache.get_or_extend(matrix, layout)
        assert cache.builds == 1
        assert sketch.layout == layout

    def test_sub_window_appends_extend_once_enough_columns_accumulate(self, matrix):
        rng = np.random.default_rng(8)
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        current = matrix
        for _ in range(5):  # 5 x 13 = 65 columns -> 2 new basic windows
            columns = rng.normal(size=(6, 13))
            fingerprint = cache.extend_chain(current, columns)
            current = grown(current, columns)
            cache.adopt_fingerprint(current, fingerprint)
        layout = BasicWindowLayout.for_range(0, current.length, 32)
        assert layout.count == 10
        extended = cache.get_or_extend(current, layout)
        scratch = BasicWindowSketch.build(current.values, layout)
        assert extended.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()
        assert cache.stats.extended_windows == 2

    def test_clear_drops_chains(self, matrix, delta):
        cache = SketchCache()
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 32))
        fingerprint = cache.extend_chain(matrix, delta)
        bigger = grown(matrix, delta)
        cache.adopt_fingerprint(bigger, fingerprint)
        cache.clear()
        assert not cache.has_chain(bigger)


class TestBufferedColumnsGauge:
    def test_gauge_set_and_reset(self, matrix):
        cache = SketchCache()
        cache.set_buffered_columns(48)
        assert cache.stats.buffered_columns == 48
        assert cache.stats.as_dict()["buffered_columns"] == 48
        cache.set_buffered_columns(0)
        assert cache.stats.buffered_columns == 0
