"""Unit tests for the query result cache (repro.storage.cache)."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.exceptions import StorageError
from repro.storage.cache import (
    QueryCache,
    matrix_fingerprint,
    query_fingerprint,
)


class TestFingerprints:
    def test_matrix_fingerprint_stable_and_content_sensitive(self, small_matrix):
        first = matrix_fingerprint(small_matrix)
        second = matrix_fingerprint(small_matrix)
        assert first == second
        perturbed = small_matrix.with_values(small_matrix.values + 1e-9)
        assert matrix_fingerprint(perturbed) != first

    def test_query_fingerprint_distinguishes_fields(self):
        base = SlidingQuery(start=0, end=512, window=128, step=32, threshold=0.7)
        assert query_fingerprint(base) == query_fingerprint(
            SlidingQuery(start=0, end=512, window=128, step=32, threshold=0.7)
        )
        assert query_fingerprint(base) != query_fingerprint(base.with_threshold(0.8))
        absolute = SlidingQuery(
            start=0, end=512, window=128, step=32, threshold=0.7,
            threshold_mode="absolute",
        )
        assert query_fingerprint(base) != query_fingerprint(absolute)


class TestCacheBehaviour:
    def test_get_or_compute_hits_second_time(self, small_matrix, standard_query):
        cache = QueryCache()
        engine = DangoronEngine(basic_window_size=32)
        first = cache.get_or_compute(small_matrix, standard_query, engine)
        second = cache.get_or_compute(small_matrix, standard_query, engine)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_different_engines_cached_separately(self, small_matrix, standard_query):
        cache = QueryCache()
        pruned = cache.get_or_compute(
            small_matrix, standard_query, DangoronEngine(basic_window_size=32)
        )
        exact = cache.get_or_compute(small_matrix, standard_query, BruteForceEngine())
        assert pruned is not exact
        assert len(cache) == 2

    def test_different_thresholds_cached_separately(self, small_matrix, standard_query):
        cache = QueryCache()
        engine = DangoronEngine(basic_window_size=32)
        cache.get_or_compute(small_matrix, standard_query, engine)
        cache.get_or_compute(
            small_matrix, standard_query.with_threshold(0.9), engine
        )
        assert len(cache) == 2
        assert cache.stats.misses == 2

    def test_lru_eviction_by_entry_count(self, small_matrix):
        cache = QueryCache(max_entries=2)
        engine = BruteForceEngine()
        queries = [
            SlidingQuery(start=0, end=small_matrix.length, window=128, step=64,
                         threshold=beta)
            for beta in (0.5, 0.6, 0.7)
        ]
        for query in queries:
            cache.get_or_compute(small_matrix, query, engine)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest query (0.5) was evicted; the newest two still hit.
        assert cache.get(small_matrix, queries[0], engine.describe()) is None
        assert cache.get(small_matrix, queries[2], engine.describe()) is not None

    def test_recently_used_entry_survives_eviction(self, small_matrix):
        cache = QueryCache(max_entries=2)
        engine = BruteForceEngine()
        q1 = SlidingQuery(start=0, end=small_matrix.length, window=128, step=64,
                          threshold=0.5)
        q2 = q1.with_threshold(0.6)
        q3 = q1.with_threshold(0.7)
        cache.get_or_compute(small_matrix, q1, engine)
        cache.get_or_compute(small_matrix, q2, engine)
        cache.get(small_matrix, q1, engine.describe())  # touch q1
        cache.get_or_compute(small_matrix, q3, engine)  # evicts q2, not q1
        assert cache.get(small_matrix, q1, engine.describe()) is not None
        assert cache.get(small_matrix, q2, engine.describe()) is None

    def test_byte_bound_eviction(self, small_matrix, standard_query):
        engine = BruteForceEngine()
        reference = engine.run(small_matrix, standard_query)
        size = sum(
            m.rows.nbytes + m.cols.nbytes + m.values.nbytes for m in reference.matrices
        )
        cache = QueryCache(max_entries=10, max_bytes=int(size * 1.5))
        cache.put(small_matrix, standard_query, "a", reference)
        cache.put(small_matrix, standard_query, "b", reference)
        assert len(cache) == 1
        assert cache.current_bytes <= int(size * 1.5)

    def test_clear_resets_entries_not_stats(self, small_matrix, standard_query):
        cache = QueryCache()
        cache.get_or_compute(
            small_matrix, standard_query, DangoronEngine(basic_window_size=32)
        )
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_modified_copy_of_matrix_misses(self, small_matrix, standard_query):
        cache = QueryCache()
        engine = BruteForceEngine()
        cache.get_or_compute(small_matrix, standard_query, engine)
        modified = small_matrix.with_values(small_matrix.values * 2.0)
        assert cache.get(modified, standard_query, engine.describe()) is None

    def test_invalid_limits_rejected(self):
        with pytest.raises(StorageError):
            QueryCache(max_entries=0)
        with pytest.raises(StorageError):
            QueryCache(max_bytes=0)
