"""Unit tests for the cross-query sketch cache (repro.storage.cache.SketchCache)."""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.datasets.random_walk import ar1_series
from repro.exceptions import StorageError
from repro.storage.cache import SketchCache


@pytest.fixture
def matrix():
    return ar1_series(8, 256, coefficient=0.8, shared_innovation_weight=0.6, seed=9)


@pytest.fixture
def layout():
    return BasicWindowLayout.for_range(0, 256, 32)


class TestHitMissAccounting:
    def test_first_request_builds(self, matrix, layout):
        cache = SketchCache()
        sketch = cache.get_or_build(matrix, layout)
        assert cache.builds == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        assert sketch.layout == layout

    def test_repeat_request_hits_and_returns_same_object(self, matrix, layout):
        cache = SketchCache()
        first = cache.get_or_build(matrix, layout)
        second = cache.get_or_build(matrix, layout)
        assert first is second
        assert cache.builds == 1
        assert cache.stats.hits == 1

    def test_distinct_layouts_miss(self, matrix, layout):
        cache = SketchCache()
        cache.get_or_build(matrix, layout)
        cache.get_or_build(matrix, BasicWindowLayout.for_range(0, 256, 16))
        cache.get_or_build(matrix, BasicWindowLayout.for_range(32, 256, 32))
        assert cache.builds == 3

    def test_pairwise_flag_is_part_of_the_key(self, matrix, layout):
        cache = SketchCache()
        full = cache.get_or_build(matrix, layout, pairwise=True)
        slim = cache.get_or_build(matrix, layout, pairwise=False)
        assert full is not slim
        assert cache.builds == 2
        assert not slim.has_pairwise

    def test_identical_content_shares_across_objects(self, matrix, layout):
        cache = SketchCache()
        clone = type(matrix)(
            matrix.values.copy(),
            series_ids=list(matrix.series_ids),
            time_axis=matrix.time_axis,
        )
        cache.get_or_build(matrix, layout)
        cache.get_or_build(clone, layout)
        assert cache.builds == 1  # keyed on content fingerprint, not identity

    def test_different_content_misses(self, matrix, layout):
        cache = SketchCache()
        other = type(matrix)(
            matrix.values + 1.0,
            series_ids=list(matrix.series_ids),
            time_axis=matrix.time_axis,
        )
        cache.get_or_build(matrix, layout)
        cache.get_or_build(other, layout)
        assert cache.builds == 2


class TestFingerprintMemoSafety:
    def test_memo_entry_dies_with_the_matrix(self, layout):
        """The per-object fingerprint memo must not survive its matrix: a
        recycled id() would otherwise inherit a dead object's fingerprint and
        silently serve a sketch built from different data."""
        import gc

        cache = SketchCache()
        matrix = ar1_series(8, 256, coefficient=0.8, seed=1)
        cache.get_or_build(matrix, layout)
        assert len(cache._fingerprint._fingerprints) == 1
        del matrix
        gc.collect()
        assert len(cache._fingerprint._fingerprints) == 0


class TestEvictionAndLimits:
    def test_lru_eviction(self, matrix):
        cache = SketchCache(max_entries=2)
        layouts = [BasicWindowLayout.for_range(0, 256, size) for size in (8, 16, 32)]
        for layout in layouts:
            cache.get_or_build(matrix, layout)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.get_or_build(matrix, layouts[0])  # evicted -> rebuilt
        assert cache.builds == 4

    def test_clear_preserves_stats(self, matrix, layout):
        cache = SketchCache()
        cache.get_or_build(matrix, layout)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        cache.get_or_build(matrix, layout)
        assert cache.builds == 2

    def test_invalid_limits_raise(self):
        with pytest.raises(StorageError):
            SketchCache(max_entries=0)
        with pytest.raises(StorageError):
            SketchCache(scan_memo_entries=-1)

    def test_memory_accounting(self, matrix, layout):
        cache = SketchCache()
        cache.get_or_build(matrix, layout)
        assert cache.memory_bytes > 0


class TestSeeding:
    """Prebuilt sketches (persisted stats indexes) entering the cache."""

    def test_seed_then_query_hits_without_build(self, matrix, layout):
        from repro.core.sketch import BasicWindowSketch

        cache = SketchCache()
        prebuilt = BasicWindowSketch.build(matrix.values, layout)
        assert cache.seed(matrix, prebuilt)
        assert cache.seeds == 1 and cache.builds == 0
        assert cache.contains(matrix, layout)
        assert cache.get_or_build(matrix, layout) is prebuilt
        assert cache.stats.hits == 1 and cache.builds == 0

    def test_seed_does_not_replace_cached_sketch(self, matrix, layout):
        from repro.core.sketch import BasicWindowSketch

        cache = SketchCache()
        built = cache.get_or_build(matrix, layout)
        assert not cache.seed(matrix, BasicWindowSketch.build(matrix.values, layout))
        assert cache.seeds == 0
        assert cache.get_or_build(matrix, layout) is built

    def test_seed_enables_scan_memo_like_builds(self, matrix, layout):
        from repro.core.sketch import BasicWindowSketch

        cache = SketchCache(scan_memo_entries=4)
        sketch = BasicWindowSketch.build(matrix.values, layout)
        cache.seed(matrix, sketch)
        sketch.exact_matrix_scan(0, 4)
        sketch.exact_matrix_scan(0, 4)
        assert sketch.scan_memo_hits == 1

    def test_seed_rejects_mismatched_sketch(self, matrix, layout):
        from repro.core.sketch import BasicWindowSketch
        from repro.datasets.random_walk import ar1_series

        cache = SketchCache()
        other = ar1_series(4, 256, coefficient=0.5, seed=1)
        foreign = BasicWindowSketch.build(other.values, layout)
        with pytest.raises(StorageError, match="series"):
            cache.seed(matrix, foreign)

    def test_contains_has_no_stats_side_effects(self, matrix, layout):
        cache = SketchCache()
        assert not cache.contains(matrix, layout)
        assert cache.stats.requests == 0


class TestScanMemo:
    def test_cached_sketches_memoize_dense_scans(self, matrix, layout):
        cache = SketchCache(scan_memo_entries=4)
        sketch = cache.get_or_build(matrix, layout)
        first = sketch.exact_matrix_scan(0, 4)
        second = sketch.exact_matrix_scan(0, 4)
        assert sketch.scan_memo_hits == 1
        np.testing.assert_array_equal(first, second)
        second[0, 1] = 42.0  # defensive copy: mutating a result is safe
        assert sketch.exact_matrix_scan(0, 4)[0, 1] != 42.0

    def test_memo_can_be_disabled(self, matrix, layout):
        cache = SketchCache(scan_memo_entries=0)
        sketch = cache.get_or_build(matrix, layout)
        sketch.exact_matrix_scan(0, 4)
        sketch.exact_matrix_scan(0, 4)
        assert sketch.scan_memo_hits == 0
