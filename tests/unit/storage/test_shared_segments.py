"""Segment lifecycle: export, mmap attach, generation bump, corruption.

The multi-process service shares sketch state with its workers through
exported segment directories (:mod:`repro.storage.shared`).  These tests pin
the lifecycle contract:

* export -> attach round-trips every array bit-identically, and the attached
  arrays are genuinely memmapped (``np.memmap``), not copies;
* :class:`SegmentManager.ensure` is idempotent per ``(fingerprint, layout)``
  and bumps the generation when either changes (the append protocol);
* superseded generations are pruned, keeping ``KEEP_GENERATIONS``;
* every corruption mode — missing manifest, bad schema, missing array,
  truncated array, shape mismatch, torn export — raises
  :class:`~repro.exceptions.StorageError` naming the offending path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import SketchError, StorageError
from repro.storage.chunk_store import ChunkStore
from repro.storage.shared import (
    SEGMENT_SCHEMA,
    SegmentManager,
    attach_segment,
    export_segment,
)

NUM_SERIES = 4
LENGTH = 96
BASIC = 8
LAYOUT = BasicWindowLayout(offset=0, size=BASIC, count=LENGTH // BASIC)


@pytest.fixture
def store():
    rng = np.random.default_rng(11)
    chunk_store = ChunkStore(NUM_SERIES, chunk_columns=32)
    chunk_store.append(rng.standard_normal((NUM_SERIES, LENGTH)))
    return chunk_store


@pytest.fixture
def sketch(store):
    return BasicWindowSketch.build(store.read_all(), LAYOUT)


def _memmap_backed(array: np.ndarray) -> bool:
    """True when ``array`` is (a view over) a file-backed ``np.memmap``."""
    node = array
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


def _export(tmp_path, store, sketch, generation=1, fingerprint="fp-1"):
    return export_segment(
        tmp_path / f"gen-{generation:06d}",
        store,
        sketch,
        fingerprint=fingerprint,
        generation=generation,
        series_ids=[f"s{i}" for i in range(NUM_SERIES)],
    )


class TestExportAttach:
    def test_round_trip_is_bit_identical_and_memmapped(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        segment = attach_segment(path)
        assert segment.generation == 1
        assert segment.fingerprint == "fp-1"
        assert segment.series_ids == [f"s{i}" for i in range(NUM_SERIES)]
        np.testing.assert_array_equal(segment.values, store.read_all())
        attached = segment.sketch
        assert attached.layout == LAYOUT
        np.testing.assert_array_equal(attached.series_sums, sketch.series_sums)
        np.testing.assert_array_equal(attached.series_sumsqs, sketch.series_sumsqs)
        np.testing.assert_array_equal(attached.pair_sumprods, sketch.pair_sumprods)
        np.testing.assert_array_equal(attached.pair_corrs, sketch.pair_corrs)
        np.testing.assert_array_equal(attached.corr_prefix, sketch.corr_prefix)
        # The dominant arrays must be file-backed views, not private copies —
        # that is the whole point of the shared segment.
        assert _memmap_backed(segment.values)
        assert _memmap_backed(attached.pair_corrs)
        assert _memmap_backed(attached.corr_prefix)
        assert segment.sketch_bytes > 0

    def test_export_requires_pairwise_sketch(self, tmp_path, store):
        lean = BasicWindowSketch.build(store.read_all(), LAYOUT, pairwise=False)
        with pytest.raises(StorageError, match="pairwise"):
            _export(tmp_path, store, lean)

    def test_torn_store_refuses_to_export(self, tmp_path, store, sketch):
        class LyingStore:
            num_series = store.num_series
            length = store.length + 7  # claims columns it cannot yield

            @staticmethod
            def iter_chunks():
                return store.iter_chunks()

        with pytest.raises(StorageError, match="torn segment"):
            export_segment(
                tmp_path / "gen-000001", LyingStore(), sketch,
                fingerprint="fp", generation=1, series_ids=["a", "b", "c", "d"],
            )

    def test_attached_corr_prefix_validates_shape(self, store, sketch):
        fresh = BasicWindowSketch.build(store.read_all(), LAYOUT)
        with pytest.raises(SketchError, match="corr prefix shape"):
            fresh.attach_corr_prefix(np.zeros((2, 2, 2)))


class TestCorruption:
    def test_missing_manifest_names_the_directory(self, tmp_path):
        missing = tmp_path / "gen-000009"
        missing.mkdir()
        with pytest.raises(StorageError, match=str(missing)):
            attach_segment(missing)

    def test_unreadable_manifest_names_the_file(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(StorageError, match="manifest.json"):
            attach_segment(path)

    def test_unknown_schema_is_rejected(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema"] = "repro.segment/v999"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StorageError, match=SEGMENT_SCHEMA):
            attach_segment(path)

    def test_missing_array_names_the_file(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        (path / "pair_corrs.npy").unlink()
        with pytest.raises(StorageError, match="pair_corrs.npy"):
            attach_segment(path)

    def test_truncated_array_names_the_file(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        target = path / "corr_prefix.npy"
        target.write_bytes(target.read_bytes()[:40])
        with pytest.raises(StorageError, match="corr_prefix.npy"):
            attach_segment(path)

    def test_shape_mismatch_names_the_file(self, tmp_path, store, sketch):
        path = _export(tmp_path, store, sketch)
        np.save(path / "series_sums.npy", np.zeros((NUM_SERIES, 1)))
        with pytest.raises(StorageError, match="series_sums.npy"):
            attach_segment(path)


class TestSegmentManager:
    def test_ensure_is_idempotent_per_snapshot(self, tmp_path, store, sketch):
        manager = SegmentManager(tmp_path / "segments")
        first = manager.ensure(store, sketch, "fp-a", store.series_ids)
        again = manager.ensure(store, sketch, "fp-a", store.series_ids)
        assert first == again
        assert manager.describe() == {"generation": 1, "exports": 1, "live": 1}

    def test_fingerprint_change_bumps_generation(self, tmp_path, store, sketch):
        manager = SegmentManager(tmp_path / "segments")
        path1, gen1 = manager.ensure(store, sketch, "fp-a", store.series_ids)
        path2, gen2 = manager.ensure(store, sketch, "fp-b", store.series_ids)
        assert gen2 == gen1 + 1
        assert path1 != path2
        assert attach_segment(path2).fingerprint == "fp-b"

    def test_alternating_layouts_stay_live(self, tmp_path, store):
        """Distinct query layouts must not evict each other's exports.

        Alternating shapes would otherwise re-export (an O(N*L) disk write
        under the runtime lock) on every layout switch.
        """
        manager = SegmentManager(tmp_path / "segments")
        layouts = [
            BasicWindowLayout(offset=offset, size=BASIC, count=4)
            for offset in (0, BASIC, 2 * BASIC)
        ]
        sketches = [
            BasicWindowSketch.build(store.read_all(), layout)
            for layout in layouts
        ]
        first_pass = [
            manager.ensure(store, sketch, "fp-a", store.series_ids)
            for sketch in sketches
        ]
        # A second alternation over the same shapes exports nothing new.
        second_pass = [
            manager.ensure(store, sketch, "fp-a", store.series_ids)
            for sketch in sketches
        ]
        assert first_pass == second_pass
        assert manager.describe() == {
            "generation": len(layouts), "exports": len(layouts),
            "live": len(layouts),
        }
        for path, _ in first_pass:
            assert attach_segment(path).fingerprint == "fp-a"

    def test_prune_keeps_two_generations(self, tmp_path, store, sketch):
        manager = SegmentManager(tmp_path / "segments")
        paths = [
            manager.ensure(store, sketch, f"fp-{i}", store.series_ids)[0]
            for i in range(4)
        ]
        survivors = sorted(p.name for p in (tmp_path / "segments").glob("gen-*"))
        assert survivors == [paths[-2].name, paths[-1].name]
        # The previous generation must still attach: a job dispatched just
        # before the newest export may still name it.
        assert attach_segment(paths[-2]).fingerprint == "fp-2"

    def test_close_removes_every_export(self, tmp_path, store, sketch):
        manager = SegmentManager(tmp_path / "segments")
        manager.ensure(store, sketch, "fp-a", store.series_ids)
        manager.close()
        assert not (tmp_path / "segments").exists()
