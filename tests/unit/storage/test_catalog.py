"""Unit tests for the on-disk dataset catalog."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage.catalog import Catalog, DatasetEntry
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex


@pytest.fixture
def store(rng):
    chunk_store = ChunkStore(4, chunk_columns=32, series_ids=list("wxyz"))
    chunk_store.append(rng.normal(size=(4, 96)))
    return chunk_store


class TestCatalog:
    def test_add_and_load_dataset(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        entry = catalog.add_dataset("demo", store, description="test data")
        assert entry.name == "demo"
        assert catalog.dataset_names() == ["demo"]
        loaded = catalog.load_dataset("demo")
        assert np.allclose(loaded.read_all(), store.read_all())

    def test_add_index_and_load_by_label(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        label = catalog.add_index("demo", index)
        assert label == "b16"
        loaded = catalog.load_index("demo", label)
        assert loaded.layout.size == 16
        default = catalog.load_index("demo")
        assert default.layout.size == 16

    def test_duplicate_dataset_requires_overwrite(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        with pytest.raises(StorageError):
            catalog.add_dataset("demo", store)
        catalog.add_dataset("demo", store, overwrite=True)

    def test_manifest_survives_reopen(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store, description="persisted")
        index = StatsIndex.build(store.read_all(), basic_window_size=32)
        catalog.add_index("demo", index, label="coarse")

        reopened = Catalog(tmp_path)
        assert reopened.dataset_names() == ["demo"]
        assert reopened.describe("demo").description == "persisted"
        assert reopened.load_index("demo", "coarse").layout.size == 32

    def test_unknown_dataset_and_index_errors(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        with pytest.raises(StorageError):
            catalog.describe("missing")
        with pytest.raises(StorageError):
            catalog.load_dataset("missing")
        catalog.add_dataset("demo", store)
        with pytest.raises(StorageError):
            catalog.load_index("demo")
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        catalog.add_index("demo", index)
        with pytest.raises(StorageError):
            catalog.load_index("demo", "wrong-label")

    def test_add_index_requires_dataset(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        with pytest.raises(StorageError):
            catalog.add_index("demo", index)

    def test_corrupt_manifest_rejected(self, tmp_path):
        (tmp_path / "catalog.json").write_text("{not json")
        with pytest.raises(StorageError):
            Catalog(tmp_path)

    def test_entry_serialization_round_trip(self):
        entry = DatasetEntry(
            name="n", data_file="f.npz", index_files={"b16": "i.npz"}, description="d"
        )
        assert DatasetEntry.from_dict(entry.as_dict()) == entry
        with pytest.raises(StorageError):
            DatasetEntry.from_dict({"data_file": "x"})

    def test_repr(self, tmp_path):
        assert "datasets=0" in repr(Catalog(tmp_path))


class TestCatalogErrorPaths:
    """The failure modes a long-lived service meets on real disks."""

    def test_missing_manifest_is_an_empty_catalog(self, tmp_path):
        # A directory without catalog.json is a valid (fresh) catalog, not an
        # error — the service must be able to point at a new data directory.
        catalog = Catalog(tmp_path / "fresh")
        assert catalog.dataset_names() == []
        assert not (tmp_path / "fresh" / "catalog.json").exists()

    def test_dangling_data_reference(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        (tmp_path / "demo.data.npz").unlink()
        reopened = Catalog(tmp_path)
        assert reopened.dataset_names() == ["demo"]  # manifest still lists it
        with pytest.raises(StorageError, match="demo.data.npz"):
            reopened.load_dataset("demo")
        with pytest.raises(StorageError, match="demo.data.npz"):
            reopened.load_matrix("demo")

    def test_dangling_index_reference(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        catalog.add_index("demo", index)
        (tmp_path / "demo.index.b16.npz").unlink()
        with pytest.raises(StorageError, match="demo.index.b16.npz"):
            Catalog(tmp_path).load_index("demo", "b16")

    def test_corrupt_data_artefact(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        (tmp_path / "demo.data.npz").write_bytes(b"these are not the bytes of a zip")
        with pytest.raises(StorageError, match="not a readable .npz archive"):
            catalog.load_dataset("demo")

    def test_corrupt_index_artefact(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        catalog.add_index("demo", index)
        path = tmp_path / "demo.index.b16.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])  # truncate
        with pytest.raises(StorageError):
            catalog.load_index("demo", "b16")

    def test_wrong_archive_kind_rejected(self, store, tmp_path):
        # A stats-index archive where a chunk store is expected (and vice
        # versa) is a well-formed .npz with the wrong keys.
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        index = StatsIndex.build(store.read_all(), basic_window_size=16)
        index.save(tmp_path / "demo.data.npz")
        with pytest.raises(StorageError, match="not a chunk-store archive"):
            catalog.load_dataset("demo")

    def test_duplicate_registration_keeps_existing_entry(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store, description="original")
        with pytest.raises(StorageError, match="already exists"):
            catalog.add_dataset("demo", store, description="usurper")
        assert catalog.describe("demo").description == "original"

    def test_load_matrix_round_trips_store(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        matrix = catalog.load_matrix("demo")
        assert matrix.series_ids == list("wxyz")
        np.testing.assert_array_equal(matrix.values, store.read_all())

    def test_index_labels(self, store, tmp_path):
        catalog = Catalog(tmp_path)
        catalog.add_dataset("demo", store)
        assert catalog.index_labels("demo") == []
        catalog.add_index("demo", StatsIndex.build(store.read_all(), basic_window_size=16))
        catalog.add_index(
            "demo", StatsIndex.build(store.read_all(), basic_window_size=32),
            label="coarse",
        )
        assert catalog.index_labels("demo") == ["b16", "coarse"]
        with pytest.raises(StorageError):
            catalog.index_labels("ghost")
