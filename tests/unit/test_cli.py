"""Unit tests for the command-line interface (repro.cli)."""

import numpy as np
import pytest

from repro import __version__
from repro.cli import build_parser, main
from repro.datasets.loaders import load_wide_csv, write_wide_csv
from repro.datasets.random_walk import ar1_series


@pytest.fixture
def csv_dataset(tmp_path):
    """A small correlated dataset written in the CLI's wide CSV format."""
    matrix = ar1_series(8, 256, coefficient=0.8, shared_innovation_weight=0.7, seed=3)
    path = tmp_path / "data.csv"
    write_wide_csv(matrix, path)
    return path


class TestGenerate:
    @pytest.mark.parametrize("dataset", ["climate", "finance", "raingauge", "tomborg"])
    def test_generates_each_dataset_kind(self, tmp_path, dataset, capsys):
        output = tmp_path / f"{dataset}.csv"
        code = main([
            "generate", dataset, "--output", str(output),
            "--num-series", "6", "--length", "128", "--seed", "5",
        ])
        assert code == 0
        assert output.exists()
        matrix = load_wide_csv(output)
        assert matrix.num_series >= 2
        assert "wrote" in capsys.readouterr().out

    def test_fmri_generation(self, tmp_path):
        output = tmp_path / "fmri.csv"
        code = main([
            "generate", "fmri", "--output", str(output),
            "--num-series", "27", "--length", "200", "--seed", "5",
        ])
        assert code == 0
        assert load_wide_csv(output).length == 200


class TestQuery:
    def test_query_prints_tables(self, csv_dataset, capsys):
        code = main([
            "query", str(csv_dataset), "--engine", "dangoron",
            "--window", "64", "--step", "32", "--threshold", "0.6",
            "--basic-window", "32",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "dangoron" in output
        assert "edges" in output
        assert "engine statistics" in output

    def test_query_writes_edge_list(self, csv_dataset, tmp_path, capsys):
        edges_path = tmp_path / "edges.csv"
        code = main([
            "query", str(csv_dataset), "--engine", "brute_force",
            "--window", "64", "--step", "64", "--threshold", "0.5",
            "--edges-output", str(edges_path),
        ])
        assert code == 0
        assert edges_path.exists()
        header = edges_path.read_text().splitlines()[0]
        assert header == "window,source,target,weight"

    def test_query_absolute_mode_and_other_engine(self, csv_dataset):
        code = main([
            "query", str(csv_dataset), "--engine", "incremental",
            "--window", "64", "--step", "32", "--threshold", "0.6", "--absolute",
        ])
        assert code == 0

    def test_invalid_query_reports_error(self, csv_dataset, capsys):
        code = main([
            "query", str(csv_dataset), "--engine", "dangoron",
            "--window", "1024", "--step", "32", "--threshold", "0.6",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestExperimentAndInfo:
    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        output = capsys.readouterr().out
        assert "E1" in output and "E2" in output

    def test_experiment_requires_id(self, capsys):
        assert main(["experiment"]) == 2
        assert "specify an experiment" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys):
        code = main(["experiment", "E8", "--scale", "0.2"])
        assert code == 0
        assert "basic_window" in capsys.readouterr().out

    def test_info_lists_components(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert __version__ in output
        assert "dangoron" in output
        assert "E1" in output

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_parser_version_flag(self):
        parser = build_parser()
        with pytest.raises(SystemExit) as excinfo:
            parser.parse_args(["--version"])
        assert excinfo.value.code == 0
