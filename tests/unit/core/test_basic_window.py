"""Unit tests for basic-window layouts and the Eq. 1 recombination."""

import numpy as np
import pytest

from repro.core.basic_window import (
    BasicWindowLayout,
    basic_window_correlations,
    basic_window_statistics,
    choose_basic_window_size,
    combine_pair_eq1,
    combine_pair_from_series,
)
from repro.core.correlation import pearson
from repro.core.query import SlidingQuery
from repro.exceptions import SketchError


class TestLayout:
    def test_extent_and_bounds(self):
        layout = BasicWindowLayout(offset=10, size=8, count=5)
        assert layout.covered_start == 10
        assert layout.covered_end == 50
        assert layout.window_bounds(0) == (10, 18)
        assert layout.window_bounds(4) == (42, 50)

    def test_window_bounds_out_of_range(self):
        layout = BasicWindowLayout(offset=0, size=4, count=3)
        with pytest.raises(SketchError):
            layout.window_bounds(3)

    def test_invalid_parameters(self):
        with pytest.raises(SketchError):
            BasicWindowLayout(offset=0, size=1, count=3)
        with pytest.raises(SketchError):
            BasicWindowLayout(offset=0, size=4, count=0)
        with pytest.raises(SketchError):
            BasicWindowLayout(offset=-1, size=4, count=2)

    def test_is_aligned(self):
        layout = BasicWindowLayout(offset=0, size=10, count=10)
        assert layout.is_aligned(0, 30)
        assert layout.is_aligned(20, 100)
        assert not layout.is_aligned(5, 30)
        assert not layout.is_aligned(0, 33)
        assert not layout.is_aligned(0, 110)

    def test_covering(self):
        layout = BasicWindowLayout(offset=100, size=10, count=10)
        assert layout.covering(100, 130) == (0, 3)
        assert layout.covering(150, 200) == (5, 5)
        with pytest.raises(SketchError):
            layout.covering(105, 130)

    def test_enclosing_splits_head_core_tail(self):
        layout = BasicWindowLayout(offset=0, size=10, count=20)
        first, count, head, tail = layout.enclosing(15, 58)
        assert (first, count) == (2, 3)
        assert head == 5
        assert tail == 8

    def test_enclosing_range_inside_single_window(self):
        layout = BasicWindowLayout(offset=0, size=10, count=20)
        first, count, head, tail = layout.enclosing(12, 17)
        assert count == 0
        assert head == 5
        assert tail == 0

    def test_enclosing_outside_coverage(self):
        layout = BasicWindowLayout(offset=0, size=10, count=5)
        with pytest.raises(SketchError):
            layout.enclosing(0, 60)

    def test_for_range_drops_partial_tail(self):
        layout = BasicWindowLayout.for_range(0, 105, 10)
        assert layout.count == 10
        assert layout.covered_end == 100

    def test_for_range_too_short(self):
        with pytest.raises(SketchError):
            BasicWindowLayout.for_range(0, 5, 10)

    def test_for_query_alignment(self):
        query = SlidingQuery(start=0, end=1000, window=120, step=40, threshold=0.5)
        layout = BasicWindowLayout.for_query(query, requested_size=32)
        assert query.window % layout.size == 0
        assert query.step % layout.size == 0
        for _, begin, end in query.iter_windows():
            assert layout.is_aligned(begin, end)


class TestChooseBasicWindowSize:
    def test_picks_largest_divisor_below_request(self):
        assert choose_basic_window_size(120, 40, 32) == 20
        assert choose_basic_window_size(128, 32, 32) == 32
        assert choose_basic_window_size(100, 50, 100) == 50

    def test_rejects_coprime_window_and_step(self):
        with pytest.raises(SketchError):
            choose_basic_window_size(100, 33, 32)

    def test_rejects_bad_request(self):
        with pytest.raises(SketchError):
            choose_basic_window_size(100, 50, 1)


class TestPerWindowStatistics:
    def test_basic_window_statistics_values(self):
        series = np.arange(12, dtype=float)
        means, stds = basic_window_statistics(series, 4)
        assert np.allclose(means, [1.5, 5.5, 9.5])
        assert np.allclose(stds, np.std(np.arange(4.0)))

    def test_length_must_divide(self):
        with pytest.raises(SketchError):
            basic_window_statistics(np.arange(10.0), 4)

    def test_basic_window_correlations_match_pearson(self, rng):
        x = rng.normal(size=64)
        y = rng.normal(size=64)
        corrs = basic_window_correlations(x, y, 16)
        expected = [pearson(x[i : i + 16], y[i : i + 16]) for i in range(0, 64, 16)]
        assert np.allclose(corrs, expected, atol=1e-12)

    def test_constant_basic_window_gives_zero(self, rng):
        x = np.ones(32)
        y = rng.normal(size=32)
        assert np.all(basic_window_correlations(x, y, 8) == 0.0)


class TestEq1Recombination:
    @pytest.mark.parametrize("size", [4, 8, 16, 32])
    def test_equals_direct_pearson_for_equal_windows(self, rng, size):
        x = rng.normal(size=128)
        y = 0.3 * x + rng.normal(size=128)
        assert combine_pair_from_series(x, y, size) == pytest.approx(
            pearson(x, y), abs=1e-9
        )

    def test_equals_direct_pearson_with_trend(self, rng):
        # Between-window mean differences exercise the delta terms of Eq. 1.
        t = np.linspace(0, 5, 120)
        x = t + 0.2 * rng.normal(size=120)
        y = -t + 0.2 * rng.normal(size=120)
        assert combine_pair_from_series(x, y, 24) == pytest.approx(
            pearson(x, y), abs=1e-9
        )

    def test_unequal_window_sizes_with_weighted_mean(self, rng):
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        sizes = [20, 30, 50]
        bounds = np.cumsum([0] + sizes)
        means_x, means_y, stds_x, stds_y, corrs = [], [], [], [], []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            means_x.append(x[lo:hi].mean())
            means_y.append(y[lo:hi].mean())
            stds_x.append(x[lo:hi].std())
            stds_y.append(y[lo:hi].std())
            corrs.append(pearson(x[lo:hi], y[lo:hi]))
        value = combine_pair_eq1(
            sizes, means_x, means_y, stds_x, stds_y, corrs, weighted_grand_mean=True
        )
        assert value == pytest.approx(pearson(x, y), abs=1e-9)

    def test_paper_form_matches_weighted_for_equal_sizes(self, rng):
        x = rng.normal(size=96)
        y = rng.normal(size=96)
        size = 16
        means_x, stds_x = basic_window_statistics(x, size)
        means_y, stds_y = basic_window_statistics(y, size)
        corrs = basic_window_correlations(x, y, size)
        sizes = [size] * len(corrs)
        weighted = combine_pair_eq1(
            sizes, means_x, means_y, stds_x, stds_y, corrs, weighted_grand_mean=True
        )
        unweighted = combine_pair_eq1(
            sizes, means_x, means_y, stds_x, stds_y, corrs, weighted_grand_mean=False
        )
        assert weighted == pytest.approx(unweighted, abs=1e-12)

    def test_constant_pair_returns_zero(self):
        sizes = [10, 10]
        value = combine_pair_eq1(sizes, [1, 1], [2, 2], [0, 0], [0, 0], [0, 0])
        assert value == 0.0

    def test_input_length_mismatch(self):
        with pytest.raises(SketchError):
            combine_pair_eq1([10], [1, 2], [1], [1], [1], [1])

    def test_empty_inputs_rejected(self):
        with pytest.raises(SketchError):
            combine_pair_eq1([], [], [], [], [], [])
