"""Unit tests for the sliding-query description (repro.core.query)."""

import numpy as np
import pytest

from repro.core.query import (
    THRESHOLD_ABSOLUTE,
    THRESHOLD_SIGNED,
    SlidingQuery,
)
from repro.exceptions import QueryValidationError


def make_query(**overrides) -> SlidingQuery:
    params = dict(start=0, end=1000, window=100, step=50, threshold=0.7)
    params.update(overrides)
    return SlidingQuery(**params)


class TestValidation:
    def test_valid_query_constructs(self):
        query = make_query()
        assert query.window == 100
        assert query.threshold_mode == THRESHOLD_SIGNED

    def test_window_too_small(self):
        with pytest.raises(QueryValidationError):
            make_query(window=1)

    def test_negative_step(self):
        with pytest.raises(QueryValidationError):
            make_query(step=0)

    def test_inverted_range(self):
        with pytest.raises(QueryValidationError):
            make_query(start=10, end=10)

    def test_negative_start(self):
        with pytest.raises(QueryValidationError):
            make_query(start=-1)

    def test_range_shorter_than_window(self):
        with pytest.raises(QueryValidationError):
            make_query(end=50, window=100)

    @pytest.mark.parametrize("threshold", [-1.5, 1.5, 2.0])
    def test_threshold_out_of_range(self, threshold):
        with pytest.raises(QueryValidationError):
            make_query(threshold=threshold)

    def test_unknown_threshold_mode(self):
        with pytest.raises(QueryValidationError):
            make_query(threshold_mode="weird")

    def test_boundary_thresholds_allowed(self):
        assert make_query(threshold=-1.0).threshold == -1.0
        assert make_query(threshold=1.0).threshold == 1.0


class TestWindowEnumeration:
    def test_num_windows_exact_fit(self):
        query = make_query(start=0, end=1000, window=100, step=100)
        assert query.num_windows == 10

    def test_num_windows_partial_tail_dropped(self):
        query = make_query(start=0, end=1050, window=100, step=100)
        assert query.num_windows == 10

    def test_num_windows_overlapping(self):
        query = make_query(start=0, end=300, window=100, step=50)
        # Windows start at 0, 50, 100, 150, 200 -> last covers [200, 300).
        assert query.num_windows == 5

    def test_single_window(self):
        query = make_query(start=0, end=100, window=100, step=50)
        assert query.num_windows == 1

    def test_window_starts_spacing(self):
        query = make_query(step=30, window=90, end=400)
        starts = query.window_starts()
        assert starts[0] == query.start
        assert np.all(np.diff(starts) == 30)
        assert starts[-1] + query.window <= query.end

    def test_window_bounds_match_enumeration(self):
        query = make_query()
        for k, begin, end in query.iter_windows():
            assert (begin, end) == query.window_bounds(k)
            assert end - begin == query.window

    def test_window_bounds_out_of_range(self):
        query = make_query()
        with pytest.raises(QueryValidationError):
            query.window_bounds(query.num_windows)
        with pytest.raises(QueryValidationError):
            query.window_bounds(-1)

    def test_nonzero_start_offsets_all_windows(self):
        query = make_query(start=200, end=700)
        assert query.window_starts()[0] == 200
        last_start, last_end = query.window_bounds(query.num_windows - 1)
        assert last_end <= 700


class TestThresholding:
    def test_signed_keeps_only_high_positive(self):
        query = make_query(threshold=0.5)
        assert query.keeps(0.6)
        assert not query.keeps(0.4)
        assert not query.keeps(-0.9)

    def test_absolute_keeps_both_signs(self):
        query = make_query(threshold=0.5, threshold_mode=THRESHOLD_ABSOLUTE)
        assert query.keeps(0.6)
        assert query.keeps(-0.6)
        assert not query.keeps(0.4)

    def test_keep_mask_matches_scalar(self):
        query = make_query(threshold=0.3, threshold_mode=THRESHOLD_ABSOLUTE)
        values = np.array([-0.9, -0.2, 0.0, 0.29, 0.31, 1.0])
        mask = query.keep_mask(values)
        assert list(mask) == [query.keeps(v) for v in values]

    def test_with_threshold_returns_new_query(self):
        query = make_query(threshold=0.7)
        other = query.with_threshold(0.9)
        assert other.threshold == 0.9
        assert query.threshold == 0.7
        assert other.window == query.window


class TestHelpers:
    def test_validate_against_length(self):
        query = make_query(end=1000)
        query.validate_against_length(1000)
        with pytest.raises(QueryValidationError):
            query.validate_against_length(999)

    def test_describe_mentions_key_parameters(self):
        text = make_query().describe()
        assert "window=100" in text
        assert "beta=0.7" in text

    def test_query_is_hashable_and_frozen(self):
        query = make_query()
        with pytest.raises(AttributeError):
            query.window = 10  # type: ignore[misc]
        assert hash(query) == hash(make_query())
