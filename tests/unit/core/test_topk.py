"""Unit tests for top-k correlated pair queries (repro.core.topk)."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.core.query import SlidingQuery
from repro.core.topk import (
    TopKWindow,
    sliding_top_k,
    top_k_brute_force,
    top_k_overlap,
)
from repro.exceptions import QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture
def topk_query(small_matrix) -> SlidingQuery:
    return SlidingQuery(
        start=0, end=small_matrix.length, window=128, step=32, threshold=0.0
    )


class TestAgainstGroundTruth:
    def test_sketch_and_brute_force_report_same_pairs(self, small_matrix, topk_query):
        sketch = sliding_top_k(small_matrix, topk_query, k=5, basic_window_size=32)
        brute = top_k_brute_force(small_matrix, topk_query, k=5)
        overlaps = top_k_overlap(sketch, brute)
        assert np.all(overlaps == pytest.approx(1.0))

    def test_values_are_exact_correlations(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=3, basic_window_size=32)
        for window in result:
            begin = topk_query.start + window.window_index * topk_query.step
            corr = correlation_matrix(
                small_matrix.values[:, begin : begin + topk_query.window]
            )
            for i, j, value in window.pairs():
                assert value == pytest.approx(corr[i, j], abs=1e-8)

    def test_values_sorted_descending(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=6, basic_window_size=32)
        for window in result:
            assert np.all(np.diff(window.values) <= 1e-12)

    def test_top_1_is_global_maximum(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=1, basic_window_size=32)
        for window in result:
            begin = topk_query.start + window.window_index * topk_query.step
            corr = correlation_matrix(
                small_matrix.values[:, begin : begin + topk_query.window]
            )
            iu, ju = np.triu_indices(corr.shape[0], k=1)
            assert window.values[0] == pytest.approx(corr[iu, ju].max(), abs=1e-9)

    def test_absolute_mode_ranks_by_magnitude(self, rng):
        base = rng.normal(size=256)
        data = TimeSeriesMatrix(
            np.stack([
                base,
                -base + 0.01 * rng.normal(size=256),
                0.3 * base + rng.normal(size=256),
            ])
        )
        query = SlidingQuery(start=0, end=256, window=128, step=64, threshold=0.0)
        signed = sliding_top_k(data, query, k=1, basic_window_size=32, absolute=False)
        magnitude = sliding_top_k(data, query, k=1, basic_window_size=32, absolute=True)
        # The strongest relationship is the anti-correlated pair (0, 1); only the
        # absolute ranking finds it.
        assert magnitude[0].pairs()[0][:2] == (0, 1)
        assert signed[0].pairs()[0][:2] != (0, 1)


class TestResultApi:
    def test_k_larger_than_pair_count_is_clamped(self, small_matrix, topk_query):
        n = small_matrix.num_series
        pairs = n * (n - 1) // 2
        result = sliding_top_k(
            small_matrix, topk_query, k=pairs + 100, basic_window_size=32
        )
        assert all(window.k == pairs for window in result)

    def test_effective_thresholds_and_suggestion(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=4, basic_window_size=32)
        thresholds = result.effective_thresholds()
        assert len(thresholds) == topk_query.num_windows
        assert result.suggested_threshold() == pytest.approx(thresholds.min())
        # Using the suggested threshold in a sliding query captures at least the
        # per-window top-k pairs.
        assert result.suggested_threshold() <= thresholds.max()

    def test_persistent_pairs_subset_of_reported_pairs(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=4, basic_window_size=32)
        everything = set()
        for window in result:
            everything |= {(i, j) for i, j, _ in window.pairs()}
        persistent = result.persistent_pairs(min_fraction=0.6)
        assert set(persistent) <= everything
        # Every pair is trivially persistent at fraction 0.
        assert set(result.persistent_pairs(min_fraction=0.0)) == everything

    def test_indexing_and_iteration(self, small_matrix, topk_query):
        result = sliding_top_k(small_matrix, topk_query, k=2, basic_window_size=32)
        assert result.num_windows == topk_query.num_windows
        assert isinstance(result[0], TopKWindow)
        assert len(list(result)) == result.num_windows


class TestValidation:
    def test_k_must_be_positive(self, small_matrix, topk_query):
        with pytest.raises(QueryValidationError):
            sliding_top_k(small_matrix, topk_query, k=0)

    def test_needs_at_least_two_series(self, topk_query):
        single = TimeSeriesMatrix(np.random.default_rng(0).normal(size=(1, 512)))
        with pytest.raises(QueryValidationError):
            sliding_top_k(single, topk_query, k=1)

    def test_overlap_requires_matching_window_counts(self, small_matrix, topk_query):
        short_query = SlidingQuery(
            start=0, end=small_matrix.length // 2, window=128, step=32, threshold=0.0
        )
        a = top_k_brute_force(small_matrix, topk_query, k=2)
        b = top_k_brute_force(small_matrix, short_query, k=2)
        with pytest.raises(QueryValidationError):
            top_k_overlap(a, b)

    def test_persistent_pairs_fraction_validated(self, small_matrix, topk_query):
        result = top_k_brute_force(small_matrix, topk_query, k=2)
        with pytest.raises(QueryValidationError):
            result.persistent_pairs(min_fraction=1.5)
