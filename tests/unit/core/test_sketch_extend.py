"""Unit tests for O(Δ) sketch extension (BasicWindowSketch.extend).

Appending whole basic windows must produce a sketch bit-identical to
rebuilding from the concatenated values: the delta windows' statistics come
from the same dense element-wise operations as a scratch build, and prefix
sums over identical concatenated inputs give identical prefixes.
"""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import SketchError


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def base_values(rng):
    return rng.normal(size=(5, 192))


def test_extend_matches_scratch_build(rng, base_values):
    layout = BasicWindowLayout.for_range(0, 192, 32)
    base = BasicWindowSketch.build(base_values, layout)
    delta = rng.normal(size=(5, 96))  # 3 more basic windows
    extended = base.extend(delta)
    scratch = BasicWindowSketch.build(
        np.concatenate([base_values, delta], axis=1),
        BasicWindowLayout.for_range(0, 288, 32),
    )
    assert extended.layout == scratch.layout
    assert extended.series_sums.tobytes() == scratch.series_sums.tobytes()
    assert extended.series_sumsqs.tobytes() == scratch.series_sumsqs.tobytes()
    assert extended.pair_sumprods.tobytes() == scratch.pair_sumprods.tobytes()
    assert extended.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()


def test_extend_without_pairwise_stats(rng, base_values):
    layout = BasicWindowLayout.for_range(0, 192, 32)
    base = BasicWindowSketch.build(base_values, layout, pairwise=False)
    delta = rng.normal(size=(5, 64))
    extended = base.extend(delta)
    scratch = BasicWindowSketch.build(
        np.concatenate([base_values, delta], axis=1),
        BasicWindowLayout.for_range(0, 256, 32),
        pairwise=False,
    )
    assert not extended.has_pairwise
    assert extended.series_sums.tobytes() == scratch.series_sums.tobytes()
    assert extended.series_sumsqs.tobytes() == scratch.series_sumsqs.tobytes()


def test_extend_leaves_base_untouched(rng, base_values):
    layout = BasicWindowLayout.for_range(0, 192, 32)
    base = BasicWindowSketch.build(base_values, layout)
    before = base.pair_corrs.copy()
    base.extend(rng.normal(size=(5, 32)))
    np.testing.assert_array_equal(base.pair_corrs, before)
    assert base.layout == layout


def test_extend_repeatedly(rng, base_values):
    layout = BasicWindowLayout.for_range(0, 192, 32)
    sketch = BasicWindowSketch.build(base_values, layout)
    pieces = [base_values]
    for _ in range(3):
        delta = rng.normal(size=(5, 32))
        pieces.append(delta)
        sketch = sketch.extend(delta)
    scratch = BasicWindowSketch.build(
        np.concatenate(pieces, axis=1),
        BasicWindowLayout.for_range(0, 192 + 3 * 32, 32),
    )
    assert sketch.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()


def test_extend_works_with_offset_layout(rng):
    values = rng.normal(size=(4, 200))
    layout = BasicWindowLayout.for_range(8, 200, 32)  # offset 8, 6 windows
    base = BasicWindowSketch.build(values, layout)
    delta = rng.normal(size=(4, 32))
    extended = base.extend(delta)
    scratch = BasicWindowSketch.build(
        np.concatenate([values, delta], axis=1),
        BasicWindowLayout(offset=8, size=32, count=7),
    )
    assert extended.pair_corrs.tobytes() == scratch.pair_corrs.tobytes()


def test_extend_rejects_bad_shapes(rng, base_values):
    base = BasicWindowSketch.build(
        base_values, BasicWindowLayout.for_range(0, 192, 32)
    )
    with pytest.raises(SketchError):
        base.extend(rng.normal(size=(5, 33)))  # not a multiple of the size
    with pytest.raises(SketchError):
        base.extend(rng.normal(size=(5, 0)))  # nothing to extend with
    with pytest.raises(SketchError):
        base.extend(rng.normal(size=(4, 32)))  # wrong series count
    with pytest.raises(SketchError):
        base.extend(rng.normal(size=(5, 32, 1)))  # wrong rank
