"""Unit tests for the temporal (Eq. 2) and triangle bounds (repro.core.bounds)."""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.bounds import (
    first_possible_crossing,
    first_possible_crossing_absolute,
    max_skippable_steps_scalar,
    temporal_lower_bound,
    temporal_upper_bound,
    triangle_bounds,
    triangle_bounds_from_pivots,
)
from repro.core.correlation import correlation_matrix
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import QueryValidationError


class TestTemporalBoundArithmetic:
    def test_upper_bound_formula(self):
        # Corr + (k - sum c_i) / ns
        assert temporal_upper_bound(0.4, 2, 0.6, 8) == pytest.approx(0.4 + 1.4 / 8)

    def test_lower_bound_formula(self):
        assert temporal_lower_bound(0.4, 2, 0.6, 8) == pytest.approx(0.4 - 2.6 / 8)

    def test_vectorized_inputs(self):
        corr = np.array([0.1, 0.5])
        out = temporal_upper_bound(corr, np.array([1, 2]), np.array([0.5, 1.0]), 10)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(0.1 + 0.5 / 10)

    def test_upper_bound_monotone_in_outgoing_count(self):
        # Each additional outgoing window adds (1 - c)/ns >= 0.
        previous = temporal_upper_bound(0.2, 0, 0.0, 8)
        running = 0.0
        for k, c in enumerate([0.9, -0.5, 0.3, 1.0], start=1):
            running += c
            current = temporal_upper_bound(0.2, k, running, 8)
            assert current >= previous - 1e-12
            previous = current

    def test_invalid_ns_rejected(self):
        with pytest.raises(QueryValidationError):
            temporal_upper_bound(0.1, 1, 0.0, 0)
        with pytest.raises(QueryValidationError):
            temporal_lower_bound(0.1, 1, 0.0, -3)


class TestFirstPossibleCrossing:
    @pytest.fixture
    def sketch(self, small_matrix):
        layout = BasicWindowLayout(offset=0, size=32, count=16)
        return BasicWindowSketch.build(small_matrix.values, layout)

    def test_matches_scalar_reference(self, sketch):
        """The vectorized binary search must agree with the linear-scan reference."""
        window_bw = 4
        step_bw = 1
        max_steps = 10
        rows, cols = np.triu_indices(sketch.num_series, k=1)
        corr_now = sketch.exact_pairs_scan(rows, cols, 0, window_bw)
        beta = 0.75
        vectorized = first_possible_crossing(
            corr_now, beta, sketch.corr_prefix, rows, cols, 0, step_bw, window_bw,
            max_steps,
        )
        for index in range(len(rows)):
            outgoing = sketch.pair_corrs[0:max_steps, rows[index], cols[index]]
            expected = max_skippable_steps_scalar(
                float(corr_now[index]), beta, outgoing, window_bw
            )
            assert vectorized[index] == expected

    def test_high_current_correlation_crosses_immediately(self, sketch):
        rows = np.array([0])
        cols = np.array([1])
        jumps = first_possible_crossing(
            np.array([0.99]), 0.5, sketch.corr_prefix, rows, cols, 0, 1, 4, 10
        )
        assert jumps[0] == 1

    def test_unreachable_threshold_returns_max_plus_one(self, sketch):
        rows = np.array([0])
        cols = np.array([1])
        jumps = first_possible_crossing(
            np.array([-1.0]), 1.0, sketch.corr_prefix, rows, cols, 0, 1, 4, 3
        )
        # Bound increases by at most (1 - c)/ns <= 2/4 per step; from -1 it
        # cannot reach 1.0 within 3 steps unless all outgoing c_i = -1.
        assert jumps[0] >= 3

    def test_empty_input(self, sketch):
        out = first_possible_crossing(
            np.array([]), 0.5, sketch.corr_prefix, np.array([], dtype=int),
            np.array([], dtype=int), 0, 1, 4, 5,
        )
        assert out.shape == (0,)

    def test_zero_max_steps_returns_one(self, sketch):
        out = first_possible_crossing(
            np.array([0.0]), 0.5, sketch.corr_prefix, np.array([0]), np.array([1]),
            0, 1, 4, 0,
        )
        assert out[0] == 1

    def test_slack_never_lengthens_jumps(self, sketch):
        rows, cols = np.triu_indices(sketch.num_series, k=1)
        corr_now = sketch.exact_pairs_scan(rows, cols, 0, 4)
        loose = first_possible_crossing(
            corr_now, 0.8, sketch.corr_prefix, rows, cols, 0, 1, 4, 10, slack=0.0
        )
        tight = first_possible_crossing(
            corr_now, 0.8, sketch.corr_prefix, rows, cols, 0, 1, 4, 10, slack=0.1
        )
        assert np.all(tight <= loose)

    def test_absolute_variant_never_exceeds_signed(self, sketch):
        rows, cols = np.triu_indices(sketch.num_series, k=1)
        corr_now = sketch.exact_pairs_scan(rows, cols, 0, 4)
        signed = first_possible_crossing(
            corr_now, 0.8, sketch.corr_prefix, rows, cols, 0, 1, 4, 10
        )
        both_sides = first_possible_crossing_absolute(
            corr_now, 0.8, sketch.corr_prefix, rows, cols, 0, 1, 4, 10
        )
        assert np.all(both_sides <= signed)


class TestScalarReference:
    def test_counts_steps_until_threshold(self):
        # corr=0.0, ns=4, outgoing c_i = 0 -> bound after k steps = k/4.
        assert max_skippable_steps_scalar(0.0, 0.5, np.zeros(10), 4) == 2
        assert max_skippable_steps_scalar(0.0, 0.51, np.zeros(10), 4) == 3

    def test_never_crossing_returns_length_plus_one(self):
        assert max_skippable_steps_scalar(0.0, 0.99, np.full(3, 0.9), 4) == 4


class TestTriangleBounds:
    def test_scalar_bound_contains_truth(self, rng):
        x = rng.normal(size=400)
        z = rng.normal(size=400)
        y = 0.5 * x + 0.5 * z + 0.3 * rng.normal(size=400)
        corr = correlation_matrix(np.stack([x, y, z]))
        lower, upper = triangle_bounds(corr[0, 2], corr[1, 2])
        assert lower - 1e-9 <= corr[0, 1] <= upper + 1e-9

    def test_perfectly_correlated_pivot_pins_value(self):
        lower, upper = triangle_bounds(1.0, 0.4)
        assert lower == pytest.approx(0.4)
        assert upper == pytest.approx(0.4)

    def test_uncorrelated_pivot_gives_vacuous_bound(self):
        lower, upper = triangle_bounds(0.0, 0.0)
        assert lower == pytest.approx(-1.0)
        assert upper == pytest.approx(1.0)

    def test_array_broadcasting(self, rng):
        a = rng.uniform(-1, 1, size=5)
        b = rng.uniform(-1, 1, size=5)
        lower, upper = triangle_bounds(a, b)
        assert lower.shape == (5,)
        assert np.all(lower <= upper)
        assert np.all(lower >= -1.0) and np.all(upper <= 1.0)

    def test_pivot_matrix_bounds_contain_all_pairs(self, rng):
        data = rng.normal(size=(8, 500))
        data[4] = 0.8 * data[0] + 0.2 * data[4]
        corr = correlation_matrix(data)
        pivots = np.array([0, 5])
        lower, upper = triangle_bounds_from_pivots(corr[pivots, :])
        assert np.all(corr <= upper + 1e-9)
        assert np.all(corr >= lower - 1e-9)

    def test_pivot_matrix_requires_2d(self):
        with pytest.raises(QueryValidationError):
            triangle_bounds_from_pivots(np.array([0.1, 0.2]))

    def test_more_pivots_never_loosen_bounds(self, rng):
        data = rng.normal(size=(6, 300))
        corr = correlation_matrix(data)
        lower1, upper1 = triangle_bounds_from_pivots(corr[[0], :])
        lower2, upper2 = triangle_bounds_from_pivots(corr[[0, 3], :])
        assert np.all(upper2 <= upper1 + 1e-12)
        assert np.all(lower2 >= lower1 - 1e-12)
