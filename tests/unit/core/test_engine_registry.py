"""Unit tests for the engine registry (repro.core.engine)."""

import pytest

from repro.core.engine import (
    SlidingCorrelationEngine,
    available_engines,
    create_engine,
    register_engine,
)
from repro.exceptions import ExperimentError


class TestRegistry:
    def test_builtin_engines_registered(self):
        names = set(available_engines())
        assert {"dangoron", "tsubasa", "brute_force", "parcorr", "statstream"} <= names

    def test_create_engine_by_name(self):
        engine = create_engine("dangoron", basic_window_size=16)
        assert engine.name == "dangoron"
        assert engine.basic_window_size == 16

    def test_create_engine_unknown_name(self):
        with pytest.raises(ExperimentError):
            create_engine("does_not_exist")

    def test_available_engines_returns_copy(self):
        first = available_engines()
        first["bogus"] = None
        assert "bogus" not in available_engines()

    def test_register_requires_name(self):
        class Nameless(SlidingCorrelationEngine):
            def run(self, matrix, query):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ExperimentError):
            register_engine(Nameless)

    def test_custom_engine_registration_roundtrip(self):
        @register_engine
        class EchoEngine(SlidingCorrelationEngine):
            name = "echo_test_engine"

            def run(self, matrix, query):  # pragma: no cover - never called
                raise NotImplementedError

        assert "echo_test_engine" in available_engines()
        assert isinstance(create_engine("echo_test_engine"), EchoEngine)

    def test_repr_and_describe(self):
        engine = create_engine("brute_force")
        assert "BruteForceEngine" in repr(engine)
        assert engine.describe() == "brute_force"
