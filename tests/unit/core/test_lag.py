"""Unit tests for lagged correlation (repro.core.lag)."""

import numpy as np
import pytest

from repro.core.correlation import pearson
from repro.core.lag import (
    best_lag,
    lagged_correlation,
    lagged_correlation_matrix,
    lead_lag_graph_edges,
    sliding_lagged_correlation,
)
from repro.core.query import SlidingQuery
from repro.exceptions import DataValidationError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture
def shifted_pair(rng):
    """Series 1 is series 0 delayed by 5 steps (plus small noise)."""
    length = 400
    base = np.cumsum(rng.normal(size=length + 5))
    x = base[5:]
    y = base[:-5] + 0.01 * rng.normal(size=length)
    return x, y


class TestPairwiseLag:
    def test_zero_lag_matches_pearson(self, rng):
        x = rng.normal(size=128)
        y = 0.5 * x + rng.normal(size=128)
        values = lagged_correlation(x, y, max_lag=0)
        assert len(values) == 1
        assert values[0] == pytest.approx(pearson(x, y), abs=1e-12)

    def test_each_lag_is_pearson_of_shifted_slices(self, rng):
        x = rng.normal(size=96)
        y = rng.normal(size=96)
        values = lagged_correlation(x, y, max_lag=3)
        assert values[3 + 2] == pytest.approx(pearson(x[:-2], y[2:]), abs=1e-12)
        assert values[3 - 2] == pytest.approx(pearson(x[2:], y[:-2]), abs=1e-12)

    def test_detects_known_shift(self, shifted_pair):
        x, y = shifted_pair
        # x[t] = base[t+5] and y[t] = base[t], so x's value at time t shows up
        # in y five steps later: x leads y, and the convention (x[t] vs y[t+d])
        # puts the best alignment at d = +5.
        lag, value = best_lag(x, y, max_lag=10)
        assert lag == 5
        assert value > 0.95

    def test_best_lag_signed_mode(self, rng):
        x = rng.normal(size=200)
        y = -np.roll(x, 2)
        y[:2] = rng.normal(size=2)
        lag_abs, value_abs = best_lag(x, y, max_lag=4, absolute=True)
        assert value_abs < 0
        lag_signed, value_signed = best_lag(x, y, max_lag=4, absolute=False)
        assert value_signed >= value_abs

    def test_length_and_lag_validation(self, rng):
        x = rng.normal(size=10)
        with pytest.raises(QueryValidationError):
            lagged_correlation(x, x, max_lag=9)
        with pytest.raises(QueryValidationError):
            lagged_correlation(x, x, max_lag=-1)
        with pytest.raises(DataValidationError):
            lagged_correlation(x, rng.normal(size=11), max_lag=1)


class TestLagMatrix:
    def test_zero_max_lag_reduces_to_correlation_matrix(self, small_matrix):
        window = small_matrix.values[:, :128]
        result = lagged_correlation_matrix(window, max_lag=0)
        from repro.core.correlation import correlation_matrix

        assert np.allclose(result.best_corr, correlation_matrix(window), atol=1e-9)
        assert np.all(result.best_lag == 0)

    def test_lag_matrix_antisymmetric(self, small_matrix):
        window = small_matrix.values[:, :160]
        result = lagged_correlation_matrix(window, max_lag=4)
        assert np.array_equal(result.best_lag, -result.best_lag.T)
        assert np.allclose(result.best_corr, result.best_corr.T, atol=1e-12)

    def test_best_corr_at_least_zero_lag_value(self, small_matrix):
        """Allowing lags can only improve the best absolute correlation."""
        window = small_matrix.values[:, :160]
        zero = lagged_correlation_matrix(window, max_lag=0)
        lagged = lagged_correlation_matrix(window, max_lag=3)
        assert np.all(np.abs(lagged.best_corr) >= np.abs(zero.best_corr) - 1e-9)

    def test_detects_shifted_rows(self, shifted_pair, rng):
        x, y = shifted_pair
        data = np.stack([x, y, rng.normal(size=len(x))])
        result = lagged_correlation_matrix(data, max_lag=8)
        assert result.best_lag[0, 1] == 5
        assert result.best_lag[1, 0] == -5
        assert result.best_corr[0, 1] > 0.95

    def test_edges_filters_by_threshold(self, shifted_pair, rng):
        x, y = shifted_pair
        data = np.stack([x, y, rng.normal(size=len(x))])
        result = lagged_correlation_matrix(data, max_lag=8)
        edges = result.edges(threshold=0.9)
        assert [(i, j) for i, j, _, _ in edges] == [(0, 1)]
        i, j, value, lag = edges[0]
        assert lag == 5 and value > 0.9

    def test_window_too_short_for_lag_rejected(self, rng):
        window = rng.normal(size=(3, 6))
        with pytest.raises(QueryValidationError):
            lagged_correlation_matrix(window, max_lag=5)


class TestSlidingAndAggregation:
    def test_sliding_produces_one_result_per_window(self, small_matrix, standard_query):
        results = sliding_lagged_correlation(small_matrix, standard_query, max_lag=2)
        assert len(results) == standard_query.num_windows
        assert [r.window_index for r in results] == list(range(standard_query.num_windows))

    def test_lead_lag_graph_aggregates_persistent_edges(self, shifted_pair, rng):
        x, y = shifted_pair
        data = TimeSeriesMatrix(np.stack([x, y, rng.normal(size=len(x))]))
        query = SlidingQuery(
            start=0, end=data.length, window=100, step=50, threshold=0.9
        )
        windows = sliding_lagged_correlation(data, query, max_lag=8)
        edges = lead_lag_graph_edges(windows, threshold=0.9, min_persistence=0.8)
        assert len(edges) == 1
        i, j, mean_corr, mean_lag = edges[0]
        assert (i, j) == (0, 1)
        assert mean_corr > 0.9
        assert mean_lag == pytest.approx(5, abs=0.5)

    def test_lead_lag_graph_validates_inputs(self, small_matrix, standard_query):
        windows = sliding_lagged_correlation(small_matrix, standard_query, max_lag=1)
        with pytest.raises(QueryValidationError):
            lead_lag_graph_edges(windows, threshold=0.5, min_persistence=2.0)
        with pytest.raises(DataValidationError):
            lead_lag_graph_edges([], threshold=0.5)
