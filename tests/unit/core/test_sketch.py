"""Unit tests for the basic-window sketch (repro.core.sketch)."""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.correlation import correlation_matrix
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import SketchError


@pytest.fixture
def data(rng):
    base = rng.normal(size=(10, 320))
    base[3] = 0.7 * base[0] + 0.3 * base[3]  # one strongly-correlated pair
    return base


@pytest.fixture
def sketch(data):
    layout = BasicWindowLayout(offset=0, size=16, count=20)
    return BasicWindowSketch.build(data, layout)


class TestBuild:
    def test_shapes(self, sketch):
        assert sketch.num_series == 10
        assert sketch.num_basic_windows == 20
        assert sketch.series_sums.shape == (10, 20)
        assert sketch.pair_sumprods.shape == (20, 10, 10)
        assert sketch.pair_corrs.shape == (20, 10, 10)

    def test_per_window_statistics_match_direct(self, data, sketch):
        block = data[:, 32:48]
        assert np.allclose(sketch.series_sums[:, 2], block.sum(axis=1))
        assert np.allclose(
            sketch.series_sumsqs[:, 2], np.einsum("ij,ij->i", block, block)
        )
        assert np.allclose(sketch.pair_sumprods[2], block @ block.T)
        expected_corr = correlation_matrix(block)
        np.fill_diagonal(expected_corr, 1.0)
        got = sketch.pair_corrs[2].copy()
        np.fill_diagonal(got, 1.0)
        assert np.allclose(got, expected_corr, atol=1e-10)

    def test_build_without_pairwise(self, data):
        layout = BasicWindowLayout(offset=0, size=16, count=20)
        sketch = BasicWindowSketch.build(data, layout, pairwise=False)
        assert not sketch.has_pairwise
        with pytest.raises(SketchError):
            sketch.exact_matrix_scan(0, 5)
        with pytest.raises(SketchError):
            _ = sketch.corr_prefix

    def test_layout_exceeding_data_rejected(self, data):
        layout = BasicWindowLayout(offset=0, size=16, count=21)
        with pytest.raises(SketchError):
            BasicWindowSketch.build(data, layout)

    def test_non_2d_input_rejected(self, rng):
        layout = BasicWindowLayout(offset=0, size=4, count=2)
        with pytest.raises(SketchError):
            BasicWindowSketch.build(rng.normal(size=16), layout)

    def test_memory_accounting_positive(self, sketch):
        assert sketch.memory_bytes() > 0
        before = sketch.memory_bytes()
        _ = sketch.corr_prefix  # materializes the prefix tensor
        assert sketch.memory_bytes() > before


class TestExactCombination:
    def test_scan_matches_direct_correlation(self, data, sketch):
        for first, count in [(0, 20), (0, 4), (5, 8), (16, 4)]:
            window = data[:, first * 16 : (first + count) * 16]
            expected = correlation_matrix(window)
            assert np.allclose(
                sketch.exact_matrix_scan(first, count), expected, atol=1e-9
            )

    def test_fast_matches_scan(self, sketch):
        for first, count in [(0, 20), (3, 7), (10, 10)]:
            assert np.allclose(
                sketch.exact_matrix_fast(first, count),
                sketch.exact_matrix_scan(first, count),
                atol=1e-9,
            )

    def test_pairs_scan_matches_matrix_scan(self, sketch, rng):
        rows = np.array([0, 0, 3, 7])
        cols = np.array([3, 9, 5, 8])
        full = sketch.exact_matrix_scan(2, 9)
        pairs = sketch.exact_pairs_scan(rows, cols, 2, 9)
        assert np.allclose(pairs, full[rows, cols], atol=1e-12)

    def test_range_validation(self, sketch):
        with pytest.raises(SketchError):
            sketch.exact_matrix_scan(0, 21)
        with pytest.raises(SketchError):
            sketch.exact_matrix_scan(-1, 2)
        with pytest.raises(SketchError):
            sketch.exact_matrix_scan(5, 0)

    def test_series_range_sums(self, data, sketch):
        sums, sumsqs = sketch.series_range_sums(4, 6)
        window = data[:, 64:160]
        assert np.allclose(sums, window.sum(axis=1))
        assert np.allclose(sumsqs, np.einsum("ij,ij->i", window, window))


class TestPrefixes:
    def test_corr_prefix_is_cumulative(self, sketch):
        prefix = sketch.corr_prefix
        assert prefix.shape == (21, 10, 10)
        assert np.allclose(prefix[0], 0.0)
        assert np.allclose(prefix[5] - prefix[2], sketch.pair_corrs[2:5].sum(axis=0))

    def test_pair_corr_range_sum(self, sketch):
        rows = np.array([0, 1])
        cols = np.array([3, 2])
        direct = sketch.pair_corrs[4:12, rows, cols].sum(axis=0)
        assert np.allclose(sketch.pair_corr_range_sum(rows, cols, 4, 8), direct)

    def test_sumprod_prefix_consistency(self, sketch):
        prefix = sketch.sumprod_prefix
        assert np.allclose(
            prefix[10] - prefix[7], sketch.pair_sumprods[7:10].sum(axis=0)
        )


class TestUnalignedRanges:
    def test_aligned_range_answers_from_sketch(self, data, sketch):
        expected = correlation_matrix(data[:, 32:96])
        assert np.allclose(sketch.exact_matrix_range(32, 96), expected, atol=1e-9)

    @pytest.mark.parametrize("start,end", [(5, 100), (16, 100), (5, 96), (3, 17)])
    def test_unaligned_range_matches_direct(self, data, sketch, start, end):
        expected = correlation_matrix(data[:, start:end])
        got = sketch.exact_matrix_range(start, end, values=data)
        assert np.allclose(got, expected, atol=1e-8)

    def test_unaligned_without_values_rejected(self, sketch):
        with pytest.raises(SketchError):
            sketch.exact_matrix_range(5, 100)


class TestExactPairsFast:
    def test_matches_dense_prefix_path_bitwise(self, sketch):
        rows, cols = np.triu_indices(sketch.num_series, k=1)
        for first, count in ((0, 20), (3, 5), (10, 2)):
            dense = sketch.exact_matrix_fast(first, count)
            pairs = sketch.exact_pairs_fast(rows, cols, first, count)
            assert np.array_equal(dense[rows, cols], pairs)

    def test_subset_selection(self, sketch):
        rows = np.array([0, 0, 3])
        cols = np.array([3, 5, 7])
        dense = sketch.exact_matrix_fast(2, 6)
        assert np.array_equal(
            sketch.exact_pairs_fast(rows, cols, 2, 6), dense[rows, cols]
        )

    def test_range_validation(self, sketch):
        with pytest.raises(SketchError):
            sketch.exact_pairs_fast(np.array([0]), np.array([1]), 0, 21)


class TestScanMemoEvictionSafety:
    def test_memo_hit_survives_concurrent_eviction(self, data):
        """A hit whose key is evicted between get() and move_to_end() stays a hit.

        Thread-mode shards share one memo-enabled sketch; this pins the
        interleaving where another shard evicts the key right after this
        shard's successful get() — move_to_end() must not blow up the query.
        """
        from collections import OrderedDict

        layout = BasicWindowLayout(offset=0, size=16, count=20)
        sketch = BasicWindowSketch.build(data, layout)
        sketch.enable_scan_memo(max_entries=4)
        baseline = sketch.exact_matrix_scan(0, 4)  # populates the memo

        class RacingMemo(OrderedDict):
            def get(self, key, default=None):
                value = super().get(key, default)
                if value is not None:
                    super().pop(key, None)  # the "other shard" evicts here
                return value

        sketch._scan_memo = RacingMemo(sketch._scan_memo)
        again = sketch.exact_matrix_scan(0, 4)  # must not raise KeyError
        assert np.array_equal(baseline, again)
