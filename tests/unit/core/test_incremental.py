"""Unit tests for the rolling-sums incremental engine (repro.core.incremental)."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.engine import available_engines, create_engine
from repro.core.incremental import IncrementalEngine
from repro.core.query import SlidingQuery
from repro.exceptions import QueryValidationError


class TestExactness:
    def test_matches_brute_force_edge_sets_and_values(self, small_matrix, standard_query):
        exact = BruteForceEngine().run(small_matrix, standard_query)
        rolled = IncrementalEngine().run(small_matrix, standard_query)
        for ours, theirs in zip(rolled, exact):
            assert ours.edge_set() == theirs.edge_set()
            for edge, value in ours.edge_dict().items():
                assert value == pytest.approx(theirs.edge_dict()[edge], abs=1e-8)

    def test_dense_threshold_matches_brute_force(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=-1.0
        )
        exact = BruteForceEngine().run(small_matrix, query)
        rolled = IncrementalEngine().run(small_matrix, query)
        for ours, theirs in zip(rolled, exact):
            assert np.allclose(ours.to_dense(), theirs.to_dense(), atol=1e-8)

    def test_no_refresh_still_accurate_over_many_slides(self, small_matrix):
        """Drift without periodic refresh stays far below the comparison tolerance."""
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=8, threshold=0.6
        )
        exact = BruteForceEngine().run(small_matrix, query)
        rolled = IncrementalEngine(refresh_every=0).run(small_matrix, query)
        for ours, theirs in zip(rolled, exact):
            assert np.allclose(ours.to_dense(), theirs.to_dense(), atol=1e-7)

    def test_non_overlapping_windows_recompute_from_scratch(self, small_matrix):
        """step >= window has no overlap to reuse; results must still be exact."""
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=128, threshold=0.5
        )
        exact = BruteForceEngine().run(small_matrix, query)
        rolled = IncrementalEngine().run(small_matrix, query)
        for ours, theirs in zip(rolled, exact):
            assert ours.edge_set() == theirs.edge_set()
        assert rolled.stats.extra["columns_removed"] == 0

    def test_absolute_threshold_mode(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=0.7,
            threshold_mode="absolute",
        )
        exact = BruteForceEngine().run(small_matrix, query)
        rolled = IncrementalEngine().run(small_matrix, query)
        for ours, theirs in zip(rolled, exact):
            assert ours.edge_set() == theirs.edge_set()


class TestBookkeeping:
    def test_registered_in_engine_registry(self):
        assert "incremental" in available_engines()
        engine = create_engine("incremental", refresh_every=16)
        assert isinstance(engine, IncrementalEngine)
        assert engine.refresh_every == 16

    def test_stats_report_column_updates(self, small_matrix, standard_query):
        result = IncrementalEngine().run(small_matrix, standard_query)
        stats = result.stats
        assert stats.num_windows == standard_query.num_windows
        # First window loads the full window; each later overlapping slide adds
        # exactly one step's worth of columns.
        expected_added = standard_query.window + standard_query.step * (
            standard_query.num_windows - 1
        )
        assert stats.extra["columns_added"] == expected_added
        assert stats.extra["columns_removed"] == standard_query.step * (
            standard_query.num_windows - 1
        )

    def test_describe_mentions_refresh_policy(self):
        assert "refresh=64" in IncrementalEngine(refresh_every=64).describe()
        assert "no-refresh" in IncrementalEngine(refresh_every=0).describe()

    def test_negative_refresh_rejected(self):
        with pytest.raises(QueryValidationError):
            IncrementalEngine(refresh_every=-1)

    def test_query_longer_than_data_rejected(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length + 4, window=64, step=32, threshold=0.5
        )
        with pytest.raises(QueryValidationError):
            IncrementalEngine().run(small_matrix, query)

    def test_unaligned_step_supported(self, small_matrix):
        """Unlike the pruned engine, rolling sums need no basic-window alignment."""
        query = SlidingQuery(
            start=3, end=small_matrix.length, window=100, step=7, threshold=0.6
        )
        exact = BruteForceEngine().run(small_matrix, query)
        rolled = IncrementalEngine().run(small_matrix, query)
        for ours, theirs in zip(rolled, exact):
            assert ours.edge_set() == theirs.edge_set()


class TestStreamedWindows:
    def test_memory_budget_is_bit_identical_to_resident(self, small_matrix, standard_query):
        """With a budget the engine streams windows out of the matrix's chunk
        source instead of slicing a resident array; the rolling statistics
        must not change by a single bit."""
        resident = IncrementalEngine(refresh_every=4).run(small_matrix, standard_query)
        window_bytes = small_matrix.num_series * standard_query.window * 8
        streamed = IncrementalEngine(
            refresh_every=4, memory_budget=2 * window_bytes
        ).run(small_matrix, standard_query)
        for ours, theirs in zip(resident, streamed):
            assert ours.edge_dict() == theirs.edge_dict()

    def test_streamed_overlapping_windows_copy_outgoing_columns(self, small_matrix):
        """Overlapping slides reuse the stream buffer; the outgoing-column
        copy keeps the subtracted statistics correct."""
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=16, threshold=0.5
        )
        exact = BruteForceEngine().run(small_matrix, query)
        window_bytes = small_matrix.num_series * query.window * 8
        streamed = IncrementalEngine(memory_budget=window_bytes).run(
            small_matrix, query
        )
        for ours, theirs in zip(streamed, exact):
            assert ours.edge_set() == theirs.edge_set()

    def test_invalid_budget_rejected(self):
        with pytest.raises(QueryValidationError):
            IncrementalEngine(memory_budget=0)
