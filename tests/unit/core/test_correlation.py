"""Unit tests for exact correlation primitives (repro.core.correlation)."""

import numpy as np
import pytest

from repro.core.correlation import (
    RunningPairCorrelation,
    correlation_against,
    correlation_from_sums,
    correlation_matrix,
    pearson,
)
from repro.exceptions import DataValidationError


@pytest.fixture
def pair(rng):
    x = rng.normal(size=300)
    y = 0.6 * x + 0.8 * rng.normal(size=300)
    return x, y


class TestPearson:
    def test_matches_numpy(self, pair):
        x, y = pair
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1], abs=1e-12)

    def test_perfect_correlation(self, rng):
        x = rng.normal(size=100)
        assert pearson(x, 2.0 * x + 3.0) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self, rng):
        x = rng.normal(size=50)
        assert pearson(x, np.full(50, 3.0)) == 0.0
        assert pearson(np.zeros(50), x) == 0.0

    def test_shape_validation(self, rng):
        with pytest.raises(DataValidationError):
            pearson(rng.normal(size=10), rng.normal(size=11))
        with pytest.raises(DataValidationError):
            pearson(rng.normal(size=(2, 5)), rng.normal(size=(2, 5)))
        with pytest.raises(DataValidationError):
            pearson(np.array([1.0]), np.array([2.0]))

    def test_result_clamped_to_valid_range(self, rng):
        x = rng.normal(size=64)
        value = pearson(x, x)
        assert -1.0 <= value <= 1.0


class TestCorrelationMatrix:
    def test_matches_numpy_corrcoef(self, rng):
        data = rng.normal(size=(8, 200))
        expected = np.corrcoef(data)
        assert np.allclose(correlation_matrix(data), expected, atol=1e-10)

    def test_diagonal_is_one(self, rng):
        data = rng.normal(size=(5, 50))
        assert np.allclose(np.diag(correlation_matrix(data)), 1.0)

    def test_constant_row_produces_zero_correlations(self, rng):
        data = rng.normal(size=(4, 60))
        data[2] = 7.0
        corr = correlation_matrix(data)
        assert np.all(corr[2, [0, 1, 3]] == 0.0)
        assert np.all(corr[[0, 1, 3], 2] == 0.0)
        assert corr[2, 2] == 1.0

    def test_symmetry(self, rng):
        corr = correlation_matrix(rng.normal(size=(10, 80)))
        assert np.allclose(corr, corr.T)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(DataValidationError):
            correlation_matrix(rng.normal(size=12))
        with pytest.raises(DataValidationError):
            correlation_matrix(rng.normal(size=(3, 1)))


class TestCorrelationAgainst:
    def test_matches_full_matrix_rows(self, rng):
        data = rng.normal(size=(6, 120))
        pivots = data[[1, 4]]
        expected = np.corrcoef(data)[[1, 4], :]
        assert np.allclose(correlation_against(data, pivots), expected, atol=1e-10)

    def test_single_pivot_1d_input(self, rng):
        data = rng.normal(size=(4, 90))
        result = correlation_against(data, data[0])
        assert result.shape == (1, 4)
        assert result[0, 0] == pytest.approx(1.0)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(DataValidationError):
            correlation_against(rng.normal(size=(3, 50)), rng.normal(size=(1, 40)))


class TestRunningPairCorrelation:
    def test_matches_batch_pearson(self, pair):
        x, y = pair
        running = RunningPairCorrelation()
        for xv, yv in zip(x, y):
            running.update(float(xv), float(yv))
        assert running.correlation() == pytest.approx(pearson(x, y), abs=1e-10)

    def test_update_many_equivalent_to_scalar_updates(self, pair):
        x, y = pair
        a = RunningPairCorrelation()
        a.update_many(x, y)
        b = RunningPairCorrelation()
        for xv, yv in zip(x, y):
            b.update(float(xv), float(yv))
        assert a.correlation() == pytest.approx(b.correlation(), abs=1e-12)

    def test_remove_many_slides_the_window(self, pair):
        x, y = pair
        running = RunningPairCorrelation()
        running.update_many(x, y)
        running.remove_many(x[:100], y[:100])
        assert running.correlation() == pytest.approx(
            pearson(x[100:], y[100:]), abs=1e-8
        )

    def test_too_few_points_returns_none(self):
        running = RunningPairCorrelation()
        assert running.correlation() is None
        running.update(1.0, 2.0)
        assert running.correlation() is None

    def test_cannot_remove_more_than_added(self, rng):
        running = RunningPairCorrelation()
        running.update_many(rng.normal(size=5), rng.normal(size=5))
        with pytest.raises(DataValidationError):
            running.remove_many(rng.normal(size=6), rng.normal(size=6))

    def test_constant_window_returns_zero(self):
        running = RunningPairCorrelation()
        running.update_many(np.ones(10), np.arange(10.0))
        assert running.correlation() == 0.0


class TestCorrelationFromSums:
    def test_matches_direct_computation(self, rng):
        x = rng.normal(size=150)
        y = rng.normal(size=150)
        value = correlation_from_sums(
            len(x),
            x.sum(), y.sum(),
            (x * x).sum(), (y * y).sum(),
            (x * y).sum(),
        )
        assert value == pytest.approx(pearson(x, y), abs=1e-10)

    def test_broadcasts_over_arrays(self, rng):
        data = rng.normal(size=(4, 100))
        sums = data.sum(axis=1)
        sumsqs = (data * data).sum(axis=1)
        sumprods = data @ data.T
        corr = correlation_from_sums(
            100.0, sums[:, None], sums[None, :], sumsqs[:, None], sumsqs[None, :],
            sumprods,
        )
        assert np.allclose(corr, np.corrcoef(data), atol=1e-10)

    def test_degenerate_entries_zeroed(self):
        value = correlation_from_sums(10.0, 0.0, 5.0, 0.0, 30.0, 0.0)
        assert value == 0.0
