"""Unit tests for the tiled (out-of-core) sketch builder and the lazy matrix."""

import numpy as np
import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.core.tiled import (
    ChunkBackedMatrix,
    build_sketch_tiled,
    plan_tiles,
    reblock_columns,
    tile_source_for,
)
from repro.exceptions import DataValidationError, SketchError
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

VALUE_BYTES = 8


@pytest.fixture
def values():
    return np.random.default_rng(42).standard_normal((5, 400))


@pytest.fixture
def store(values):
    store = ChunkStore(num_series=5, chunk_columns=64)
    store.append(values)
    return store


def _assert_sketches_bit_identical(a: BasicWindowSketch, b: BasicWindowSketch):
    assert np.array_equal(a.series_sums, b.series_sums)
    assert np.array_equal(a.series_sumsqs, b.series_sumsqs)
    assert np.array_equal(a.pair_sumprods, b.pair_sumprods)
    assert np.array_equal(a.pair_corrs, b.pair_corrs)


class TestPlanTiles:
    def test_windows_per_tile_fills_budget(self):
        layout = BasicWindowLayout(offset=0, size=16, count=20)
        plan = plan_tiles(layout, num_series=4, memory_budget=4 * 16 * VALUE_BYTES * 3)
        assert plan.windows_per_tile == 3
        assert plan.num_tiles == 7  # ceil(20 / 3)
        assert plan.tile_bytes <= plan.memory_budget

    def test_budget_larger_than_layout_is_one_tile(self):
        layout = BasicWindowLayout(offset=0, size=16, count=4)
        plan = plan_tiles(layout, num_series=4, memory_budget=10**9)
        assert plan.windows_per_tile == 4
        assert plan.num_tiles == 1

    def test_budget_below_one_window_raises(self):
        layout = BasicWindowLayout(offset=0, size=16, count=4)
        with pytest.raises(SketchError, match="below one basic-window tile"):
            plan_tiles(layout, num_series=4, memory_budget=4 * 16 * VALUE_BYTES - 1)

    def test_non_positive_budget_raises(self):
        layout = BasicWindowLayout(offset=0, size=16, count=4)
        with pytest.raises(SketchError, match="positive"):
            plan_tiles(layout, num_series=4, memory_budget=0)


class TestBuildSketchTiled:
    @pytest.mark.parametrize("budget_windows", [1, 3, 1000])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_bit_identical_to_dense(self, values, store, budget_windows, workers):
        layout = BasicWindowLayout(offset=0, size=16, count=25)
        dense = BasicWindowSketch.build(values, layout)
        tiled = build_sketch_tiled(
            store,
            layout,
            memory_budget=5 * 16 * VALUE_BYTES * budget_windows,
            workers=workers,
        )
        _assert_sketches_bit_identical(dense, tiled)

    def test_offset_layout_bit_identical(self, values, store):
        layout = BasicWindowLayout(offset=7, size=16, count=24)
        dense = BasicWindowSketch.build(values, layout)
        tiled = build_sketch_tiled(store, layout, memory_budget=5 * 16 * VALUE_BYTES)
        _assert_sketches_bit_identical(dense, tiled)

    def test_pairwise_false(self, values, store):
        layout = BasicWindowLayout(offset=0, size=16, count=25)
        dense = BasicWindowSketch.build(values, layout, pairwise=False)
        tiled = build_sketch_tiled(
            store, layout, memory_budget=10**6, pairwise=False
        )
        assert np.array_equal(dense.series_sums, tiled.series_sums)
        assert not tiled.has_pairwise

    def test_query_answers_match_dense(self, values, store):
        layout = BasicWindowLayout(offset=0, size=16, count=25)
        dense = BasicWindowSketch.build(values, layout)
        tiled = build_sketch_tiled(store, layout, memory_budget=5 * 16 * VALUE_BYTES * 2)
        assert np.array_equal(
            dense.exact_matrix_scan(3, 8), tiled.exact_matrix_scan(3, 8)
        )

    def test_layout_exceeding_source_raises(self, store):
        layout = BasicWindowLayout(offset=0, size=16, count=26)  # needs 416 cols
        with pytest.raises(SketchError, match="only 400 columns"):
            build_sketch_tiled(store, layout, memory_budget=10**6)

    def test_in_ram_matrix_adapts_as_source(self, values):
        matrix = TimeSeriesMatrix(values)
        layout = BasicWindowLayout(offset=0, size=16, count=25)
        dense = BasicWindowSketch.build(values, layout)
        tiled = build_sketch_tiled(
            tile_source_for(matrix), layout, memory_budget=5 * 16 * VALUE_BYTES
        )
        _assert_sketches_bit_identical(dense, tiled)


class TestChunkBackedMatrix:
    def test_metadata_without_materializing(self, store):
        lazy = ChunkBackedMatrix(store)
        assert lazy.shape == (5, 400)
        assert lazy.num_series == 5
        assert lazy.length == 400
        assert lazy.series_ids == store.series_ids
        assert not lazy.materialized
        assert "lazy" in repr(lazy)

    def test_values_materialize_once(self, values, store):
        lazy = ChunkBackedMatrix(store)
        assert np.array_equal(lazy.values, values)
        assert lazy.materialized
        assert lazy.values is lazy.values  # cached, not re-assembled
        assert not lazy.values.flags.writeable

    def test_window_reads_materialize(self, values, store):
        lazy = ChunkBackedMatrix(store)
        assert np.array_equal(lazy.window(10, 20), values[:, 10:20])
        assert lazy.materialized

    def test_column_blocks_stream_without_materializing(self, values, store):
        lazy = ChunkBackedMatrix(store)
        blocks = list(lazy.iter_column_blocks(96))
        assert not lazy.materialized
        assert np.array_equal(np.concatenate(blocks, axis=1), values)
        dense_blocks = list(TimeSeriesMatrix(values).iter_column_blocks(96))
        for a, b in zip(blocks, dense_blocks):
            assert np.array_equal(a, b)

    def test_materialized_view_refreshes_after_source_growth(self, values, store):
        lazy = ChunkBackedMatrix(store)
        assert lazy.values.shape == (5, 400)
        grown = np.random.default_rng(7).standard_normal((5, 40))
        store.append(grown)
        # A stale dense view would silently truncate windows the (live)
        # length validation admits; the facade re-materializes instead.
        assert lazy.length == 440
        assert np.array_equal(lazy.values, np.concatenate([values, grown], axis=1))
        assert np.array_equal(lazy.window(400, 440), grown)

    def test_too_short_source_rejected(self):
        store = ChunkStore(num_series=2, chunk_columns=8)
        store.append(np.zeros((2, 1)))
        with pytest.raises(DataValidationError, match="at least two observations"):
            ChunkBackedMatrix(store)


class TestReblockColumns:
    def test_reblocks_to_fixed_boundaries(self):
        rng = np.random.default_rng(1)
        pieces = [rng.standard_normal((3, w)) for w in (5, 1, 12, 7, 2)]
        blocks = list(reblock_columns(iter(pieces), 8))
        dense = np.concatenate(pieces, axis=1)
        assert [b.shape[1] for b in blocks] == [8, 8, 8, 3]
        assert np.array_equal(np.concatenate(blocks, axis=1), dense)

    def test_invalid_width_raises(self):
        with pytest.raises(SketchError, match="positive"):
            list(reblock_columns(iter([]), 0))
