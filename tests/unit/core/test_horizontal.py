"""Unit tests for horizontal (pivot/triangle) pruning (repro.core.horizontal)."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.core.horizontal import (
    HorizontalPruner,
    prunable_pairs,
    select_pivots,
)
from repro.exceptions import QueryValidationError


@pytest.fixture
def clustered_data(rng):
    """Two clusters of strongly intra-correlated series plus background noise."""
    base_a = rng.normal(size=600)
    base_b = rng.normal(size=600)
    rows = []
    for _ in range(5):
        rows.append(base_a + 0.4 * rng.normal(size=600))
    for _ in range(5):
        rows.append(base_b + 0.4 * rng.normal(size=600))
    for _ in range(4):
        rows.append(rng.normal(size=600))
    return np.asarray(rows)


class TestSelectPivots:
    def test_first_strategy_is_deterministic(self, clustered_data):
        assert list(select_pivots(clustered_data, 3, "first")) == [0, 1, 2]

    def test_random_strategy_respects_count_and_uniqueness(self, clustered_data, rng):
        pivots = select_pivots(clustered_data, 5, "random", rng)
        assert len(pivots) == 5
        assert len(set(int(p) for p in pivots)) == 5

    def test_variance_strategy_picks_high_variance_rows(self, rng):
        data = rng.normal(size=(6, 200))
        data[3] *= 10.0
        pivots = select_pivots(data, 1, "variance")
        assert pivots[0] == 3

    def test_kcenter_spreads_across_clusters(self, clustered_data):
        pivots = select_pivots(clustered_data, 2, "kcenter")
        # The two pivots should not come from the same correlated cluster.
        cluster = lambda i: 0 if i < 5 else (1 if i < 10 else 2)
        assert cluster(int(pivots[0])) != cluster(int(pivots[1]))

    def test_count_clipped_to_num_series(self, rng):
        data = rng.normal(size=(3, 50))
        assert len(select_pivots(data, 10, "first")) == 3

    def test_unknown_strategy_rejected(self, rng):
        with pytest.raises(QueryValidationError):
            select_pivots(rng.normal(size=(3, 50)), 2, "nope")

    def test_non_2d_input_rejected(self, rng):
        with pytest.raises(QueryValidationError):
            select_pivots(rng.normal(size=50), 2)


class TestHorizontalPruner:
    def test_bounds_contain_true_correlations(self, clustered_data):
        pruner = HorizontalPruner(num_pivots=3, strategy="kcenter")
        analysis = pruner.analyze(clustered_data)
        truth = correlation_matrix(clustered_data)
        assert np.all(truth <= analysis.upper + 1e-9)
        assert np.all(truth >= analysis.lower - 1e-9)

    def test_prunable_mask_excludes_true_edges(self, clustered_data):
        beta = 0.6
        pruner = HorizontalPruner(num_pivots=4)
        analysis = pruner.analyze(clustered_data)
        mask = analysis.prunable_mask(beta, "signed")
        truth = correlation_matrix(clustered_data)
        # No pair whose true correlation reaches beta may be marked prunable.
        above = truth >= beta
        np.fill_diagonal(above, False)
        assert not np.any(mask & above)

    def test_pruning_finds_some_pairs_on_clustered_data(self, clustered_data):
        pruner = HorizontalPruner(num_pivots=4, strategy="kcenter")
        analysis = pruner.analyze(clustered_data)
        mask = analysis.prunable_mask(0.9, "signed")
        assert mask.sum() > 0

    def test_absolute_mode_also_checks_negative_side(self, rng):
        x = rng.normal(size=500)
        data = np.stack([x, -x + 0.1 * rng.normal(size=500), rng.normal(size=500)])
        pruner = HorizontalPruner(num_pivots=1, strategy="first")
        analysis = pruner.analyze(data)
        signed_mask = analysis.prunable_mask(0.8, "signed")
        absolute_mask = analysis.prunable_mask(0.8, "absolute")
        # Pair (0,1) is strongly negative: prunable under the signed rule but
        # not under the absolute rule.
        assert signed_mask[0, 1]
        assert not absolute_mask[0, 1]

    def test_explicit_pivots_override_selection(self, clustered_data):
        pruner = HorizontalPruner(num_pivots=2)
        analysis = pruner.analyze(clustered_data, pivots=np.array([1, 12]))
        assert list(analysis.pivots) == [1, 12]
        assert analysis.pivot_correlations.shape == (2, clustered_data.shape[0])

    def test_exact_pair_cost(self):
        assert HorizontalPruner(num_pivots=3).exact_pair_cost(20) == 60

    def test_invalid_num_pivots(self):
        with pytest.raises(QueryValidationError):
            HorizontalPruner(num_pivots=0)


class TestPrunablePairs:
    def test_partition_is_exhaustive_and_disjoint(self, clustered_data):
        pruner = HorizontalPruner(num_pivots=3)
        analysis = pruner.analyze(clustered_data)
        n = clustered_data.shape[0]
        rows, cols = np.triu_indices(n, k=1)
        pruned, keep = prunable_pairs(analysis, rows, cols, 0.8, "signed")
        assert len(set(pruned) & set(keep)) == 0
        assert len(pruned) + len(keep) == len(rows)
