"""Registry safety: duplicate-name guard and typed create_engine errors."""

import pytest

from repro.core.engine import (
    SlidingCorrelationEngine,
    available_engines,
    create_engine,
    engine_options,
    register_engine,
)
from repro.exceptions import ExperimentError


def _engine_class(engine_name):
    class Probe(SlidingCorrelationEngine):
        name = engine_name

        def run(self, matrix, query):  # pragma: no cover - never called
            raise NotImplementedError

    return Probe


class TestDuplicateRegistration:
    def test_duplicate_name_raises(self):
        @register_engine
        class GuardFirst(SlidingCorrelationEngine):
            name = "guard_test_engine"

            def run(self, matrix, query):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ExperimentError, match="already registered"):
            @register_engine
            class GuardSecond(SlidingCorrelationEngine):
                name = "guard_test_engine"

                def run(self, matrix, query):  # pragma: no cover - never called
                    raise NotImplementedError

    def test_replace_true_overwrites(self):
        register_engine(_engine_class("guard_replace_engine"))
        replacement = register_engine(replace=True)(
            _engine_class("guard_replace_engine")
        )
        assert available_engines()["guard_replace_engine"] is replacement

    def test_same_class_reregistration_is_noop(self):
        cls = register_engine(_engine_class("guard_idempotent_engine"))
        assert register_engine(cls) is cls

    def test_reload_style_redefinition_is_noop(self):
        """importlib.reload re-creates the class at the same definition site;
        same module + qualname must re-register without raising."""
        first = register_engine(_engine_class("guard_reload_engine"))
        second = register_engine(_engine_class("guard_reload_engine"))
        assert second is not first
        assert available_engines()["guard_reload_engine"] is second

    def test_builtin_name_is_protected(self):
        with pytest.raises(ExperimentError, match="dangoron"):
            register_engine(_engine_class("dangoron"))
        assert available_engines()["dangoron"].__name__ == "DangoronEngine"


class TestCreateEngineErrors:
    def test_unknown_option_raises_experiment_error(self):
        with pytest.raises(ExperimentError) as excinfo:
            create_engine("dangoron", num_pivot=4)
        message = str(excinfo.value)
        assert "dangoron" in message
        assert "num_pivots" in message  # the accepted options are listed

    def test_valid_options_still_work(self):
        engine = create_engine("dangoron", num_pivots=4, slack=0.1)
        assert engine.num_pivots == 4
        assert engine.slack == 0.1

    def test_engine_options_lists_constructor_parameters(self):
        options = engine_options("dangoron")
        assert "basic_window_size" in options
        assert "slack" in options

    def test_engine_options_unknown_engine(self):
        with pytest.raises(ExperimentError, match="unknown engine"):
            engine_options("does_not_exist")
