"""Unit tests for the Dangoron engine (repro.core.dangoron)."""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.exceptions import QueryValidationError, SketchError


@pytest.fixture
def reference(small_matrix, standard_query):
    return BruteForceEngine().run(small_matrix, standard_query)


class TestExactness:
    def test_no_pruning_matches_brute_force_exactly(
        self, small_matrix, standard_query, reference
    ):
        engine = DangoronEngine(
            basic_window_size=32,
            use_temporal_pruning=False,
            use_horizontal_pruning=False,
        )
        result = engine.run(small_matrix, standard_query)
        for ours, theirs in zip(result, reference):
            assert ours.edge_set() == theirs.edge_set()
            for edge, value in ours.edge_dict().items():
                assert value == pytest.approx(theirs.edge_dict()[edge], abs=1e-8)

    def test_dense_query_threshold_zero_matches_brute_force(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=-1.0
        )
        pruned = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        exact = BruteForceEngine().run(small_matrix, query)
        for ours, theirs in zip(pruned, exact):
            assert ours.num_edges == theirs.num_edges
            assert np.allclose(ours.to_dense(), theirs.to_dense(), atol=1e-8)

    def test_reported_edges_always_exact_values(
        self, small_matrix, standard_query, reference
    ):
        """Precision must be 1: every reported edge is a true edge with its exact value."""
        result = DangoronEngine(basic_window_size=32).run(small_matrix, standard_query)
        report = compare_results(result, reference)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-8

    def test_accuracy_above_90_percent(self, small_matrix, standard_query, reference):
        """The paper's accuracy claim on a correlated workload."""
        result = DangoronEngine(basic_window_size=32).run(small_matrix, standard_query)
        report = compare_results(result, reference)
        assert report.recall >= 0.9

    def test_prefix_combination_matches_scan(self, small_matrix, standard_query):
        scan = DangoronEngine(basic_window_size=32).run(small_matrix, standard_query)
        fast = DangoronEngine(basic_window_size=32, prefix_combination=True).run(
            small_matrix, standard_query
        )
        for a, b in zip(scan, fast):
            assert a.edge_set() == b.edge_set()


class TestPruningBehaviour:
    def test_temporal_pruning_skips_work_on_sparse_networks(self, noise_matrix):
        query = SlidingQuery(
            start=0, end=noise_matrix.length, window=128, step=32, threshold=0.8
        )
        result = DangoronEngine(basic_window_size=32).run(noise_matrix, query)
        assert result.stats.skipped_by_jumping > 0
        assert result.stats.evaluation_fraction < 0.8

    def test_disabled_pruning_evaluates_every_pair_window(
        self, small_matrix, standard_query
    ):
        engine = DangoronEngine(basic_window_size=32, use_temporal_pruning=False)
        result = engine.run(small_matrix, standard_query)
        assert result.stats.evaluation_fraction == pytest.approx(1.0)
        assert result.stats.skipped_by_jumping == 0

    def test_slack_recovers_recall(self, tomborg_matrix):
        """A positive slack must never lower recall (it skips less aggressively)."""
        query = SlidingQuery(
            start=0, end=tomborg_matrix.length, window=256, step=64, threshold=0.7
        )
        reference = BruteForceEngine().run(tomborg_matrix, query)
        plain = DangoronEngine(basic_window_size=64).run(tomborg_matrix, query)
        slacked = DangoronEngine(basic_window_size=64, slack=0.1).run(
            tomborg_matrix, query
        )
        recall_plain = compare_results(plain, reference).recall
        recall_slacked = compare_results(slacked, reference).recall
        assert recall_slacked >= recall_plain - 1e-12
        assert slacked.stats.skipped_by_jumping <= plain.stats.skipped_by_jumping

    def test_horizontal_pruning_preserves_precision(self, small_matrix, standard_query):
        reference = BruteForceEngine().run(small_matrix, standard_query)
        engine = DangoronEngine(
            basic_window_size=32,
            use_temporal_pruning=False,
            use_horizontal_pruning=True,
            num_pivots=2,
        )
        result = engine.run(small_matrix, standard_query)
        report = compare_results(result, reference)
        assert report.precision == pytest.approx(1.0)
        # Horizontal pruning alone is lossless: the triangle bound is exact.
        assert report.recall == pytest.approx(1.0)

    def test_combined_pruning_reports_counters(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=0.9
        )
        engine = DangoronEngine(
            basic_window_size=32,
            use_temporal_pruning=True,
            use_horizontal_pruning=True,
            num_pivots=2,
        )
        result = engine.run(small_matrix, query)
        stats = result.stats.as_dict()
        assert stats["pivot_evaluations"] >= 0
        assert stats["exact_evaluations"] + stats["skipped_by_jumping"] > 0


class TestThresholdModes:
    def test_absolute_mode_reports_negative_edges(self, rng):
        from repro.timeseries.matrix import TimeSeriesMatrix

        x = rng.normal(size=256)
        data = TimeSeriesMatrix(
            np.stack([x, -x + 0.05 * rng.normal(size=256), rng.normal(size=256)])
        )
        query = SlidingQuery(
            start=0, end=256, window=128, step=64, threshold=0.8,
            threshold_mode="absolute",
        )
        result = DangoronEngine(basic_window_size=32).run(data, query)
        assert (0, 1) in result[0].edge_set()
        assert result[0].edge_dict()[(0, 1)] < 0

    def test_absolute_mode_matches_brute_force_edges(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=32, threshold=0.7,
            threshold_mode="absolute",
        )
        reference = BruteForceEngine().run(small_matrix, query)
        result = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        report = compare_results(result, reference)
        assert report.precision == pytest.approx(1.0)
        assert report.recall >= 0.9


class TestValidationAndOptions:
    def test_query_longer_than_data_rejected(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length + 1, window=128, step=32, threshold=0.5
        )
        with pytest.raises(QueryValidationError):
            DangoronEngine(basic_window_size=32).run(small_matrix, query)

    def test_unalignable_query_rejected(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=33, threshold=0.5
        )
        with pytest.raises(SketchError):
            DangoronEngine(basic_window_size=32).run(small_matrix, query)

    def test_negative_slack_rejected(self):
        with pytest.raises(QueryValidationError):
            DangoronEngine(slack=-0.1)

    def test_describe_reflects_configuration(self):
        engine = DangoronEngine(use_horizontal_pruning=True, num_pivots=7)
        assert "horizontal(7)" in engine.describe()
        assert "temporal" in engine.describe()
        plain = DangoronEngine(
            use_temporal_pruning=False, use_horizontal_pruning=False
        )
        assert "no-pruning" in plain.describe()

    def test_stats_identify_engine_and_workload(self, small_matrix, standard_query):
        result = DangoronEngine(basic_window_size=32).run(small_matrix, standard_query)
        assert result.stats.num_series == small_matrix.num_series
        assert result.stats.num_windows == standard_query.num_windows
        assert result.stats.query_seconds >= 0.0
        assert result.stats.sketch_build_seconds > 0.0

    def test_runs_are_deterministic(self, small_matrix, standard_query):
        first = DangoronEngine(basic_window_size=32, seed=1).run(
            small_matrix, standard_query
        )
        second = DangoronEngine(basic_window_size=32, seed=1).run(
            small_matrix, standard_query
        )
        assert [m.edge_set() for m in first] == [m.edge_set() for m in second]
