"""Unit tests for the jump scheduler (repro.core.jumping)."""

import numpy as np
import pytest

from repro.core.jumping import JumpScheduler, simulate_pair_schedule
from repro.exceptions import QueryValidationError


class TestScheduler:
    def test_all_pairs_due_initially(self):
        scheduler = JumpScheduler(num_pairs=5, num_windows=10)
        assert list(scheduler.due_indices(0)) == [0, 1, 2, 3, 4]

    def test_record_evaluations_defers_to_next_window(self):
        scheduler = JumpScheduler(4, 10)
        scheduler.record_evaluations(0, np.array([0, 2]))
        assert list(scheduler.due_indices(0)) == [1, 3]
        assert list(scheduler.due_indices(1)) == [0, 1, 2, 3]
        assert scheduler.stats.exact_evaluations == 2

    def test_schedule_jumps_skips_windows(self):
        scheduler = JumpScheduler(3, 10)
        scheduler.record_evaluations(0, np.array([0, 1, 2]))
        scheduler.schedule_jumps(0, np.array([0]), np.array([4]))
        assert 0 not in scheduler.due_indices(1)
        assert 0 not in scheduler.due_indices(3)
        assert 0 in scheduler.due_indices(4)
        assert scheduler.stats.skipped_evaluations == 3
        assert scheduler.stats.jumps_scheduled == 1
        assert scheduler.stats.mean_jump_length() == pytest.approx(4.0)

    def test_jump_length_one_is_not_a_skip(self):
        scheduler = JumpScheduler(2, 5)
        scheduler.schedule_jumps(0, np.array([0, 1]), np.array([1, 1]))
        assert scheduler.stats.skipped_evaluations == 0
        assert scheduler.stats.jumps_scheduled == 0
        assert list(scheduler.due_indices(1)) == [0, 1]

    def test_jump_past_end_counts_only_remaining_windows(self):
        scheduler = JumpScheduler(1, 5)
        scheduler.schedule_jumps(2, np.array([0]), np.array([100]))
        # Windows 3 and 4 are the only ones actually skipped.
        assert scheduler.stats.skipped_evaluations == 2

    def test_park_removes_pair_for_remaining_windows(self):
        scheduler = JumpScheduler(2, 8)
        scheduler.park(np.array([1]), window_index=3)
        for k in range(4, 8):
            assert 1 not in scheduler.due_indices(k)
        assert scheduler.stats.skipped_evaluations == 4

    def test_invalid_jump_lengths(self):
        scheduler = JumpScheduler(2, 5)
        with pytest.raises(QueryValidationError):
            scheduler.schedule_jumps(0, np.array([0]), np.array([0]))
        with pytest.raises(QueryValidationError):
            scheduler.schedule_jumps(0, np.array([0, 1]), np.array([2]))

    def test_window_index_validation(self):
        scheduler = JumpScheduler(2, 5)
        with pytest.raises(QueryValidationError):
            scheduler.due_indices(5)
        with pytest.raises(QueryValidationError):
            scheduler.record_evaluations(-1, np.array([0]))

    def test_constructor_validation(self):
        with pytest.raises(QueryValidationError):
            JumpScheduler(-1, 5)
        with pytest.raises(QueryValidationError):
            JumpScheduler(3, 0)

    def test_next_due_view_is_read_only(self):
        scheduler = JumpScheduler(3, 5)
        view = scheduler.next_due
        with pytest.raises(ValueError):
            view[0] = 3


class TestSimulatedSchedule:
    def test_always_above_threshold_evaluates_everything(self):
        correlations = np.full(6, 0.9)
        evaluated, skipped = simulate_pair_schedule(correlations, 0.5, np.ones(6, dtype=int))
        assert evaluated.all()
        assert skipped == 0

    def test_below_threshold_with_jumps_skips_windows(self):
        correlations = np.array([0.1, 0.1, 0.1, 0.1, 0.9, 0.9])
        jumps = np.array([3, 1, 1, 1, 1, 1])
        evaluated, skipped = simulate_pair_schedule(correlations, 0.5, jumps)
        assert list(evaluated) == [True, False, False, True, True, True]
        assert skipped == 2

    def test_jump_past_end(self):
        correlations = np.array([0.1, 0.1, 0.1])
        jumps = np.array([10, 1, 1])
        evaluated, skipped = simulate_pair_schedule(correlations, 0.5, jumps)
        assert list(evaluated) == [True, False, False]
        assert skipped == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(QueryValidationError):
            simulate_pair_schedule(np.zeros(3), 0.5, np.zeros(4, dtype=int))

    def test_scheduler_matches_simulation_for_one_pair(self):
        """Drive a JumpScheduler with the same decisions the simulation makes."""
        correlations = np.array([0.2, 0.2, 0.8, 0.2, 0.2, 0.2, 0.9, 0.9])
        jumps_when_below = np.array([2, 2, 1, 3, 1, 1, 1, 1])
        beta = 0.5
        evaluated_expected, skipped_expected = simulate_pair_schedule(
            correlations, beta, jumps_when_below
        )

        scheduler = JumpScheduler(1, len(correlations))
        evaluated = np.zeros(len(correlations), dtype=bool)
        for k in range(len(correlations)):
            due = scheduler.due_indices(k)
            if len(due) == 0:
                continue
            evaluated[k] = True
            scheduler.record_evaluations(k, due)
            if correlations[k] < beta:
                scheduler.schedule_jumps(
                    k, due, np.array([jumps_when_below[k]])
                )
        assert list(evaluated) == list(evaluated_expected)
        assert scheduler.stats.skipped_evaluations == skipped_expected
