"""Unit tests for result containers (repro.core.result)."""

import numpy as np
import pytest

from repro.core.query import SlidingQuery
from repro.core.result import (
    CorrelationSeriesResult,
    EngineStats,
    ThresholdedMatrix,
)
from repro.exceptions import DataValidationError


def make_matrix(n=5, edges=((0, 1, 0.9), (2, 4, 0.8))) -> ThresholdedMatrix:
    rows = [e[0] for e in edges]
    cols = [e[1] for e in edges]
    vals = [e[2] for e in edges]
    return ThresholdedMatrix(n, np.array(rows), np.array(cols), np.array(vals))


class TestThresholdedMatrix:
    def test_basic_properties(self):
        matrix = make_matrix()
        assert matrix.num_edges == 2
        assert matrix.edge_set() == {(0, 1), (2, 4)}
        assert matrix.edge_dict()[(0, 1)] == pytest.approx(0.9)

    def test_to_dense_is_symmetric_with_unit_diagonal(self):
        dense = make_matrix().to_dense()
        assert np.allclose(dense, dense.T)
        assert np.allclose(np.diag(dense), 1.0)
        assert dense[0, 1] == pytest.approx(0.9)
        assert dense[1, 0] == pytest.approx(0.9)
        assert dense[0, 2] == 0.0

    def test_to_dense_without_diagonal(self):
        dense = make_matrix().to_dense(include_diagonal=False)
        assert np.allclose(np.diag(dense), 0.0)

    def test_density(self):
        matrix = make_matrix(n=5)
        assert matrix.density() == pytest.approx(2 / 10)

    def test_rejects_lower_triangle_entries(self):
        with pytest.raises(DataValidationError):
            ThresholdedMatrix(4, np.array([2]), np.array([1]), np.array([0.5]))

    def test_rejects_diagonal_entries(self):
        with pytest.raises(DataValidationError):
            ThresholdedMatrix(4, np.array([1]), np.array([1]), np.array([0.5]))

    def test_rejects_out_of_range_indices(self):
        with pytest.raises(DataValidationError):
            ThresholdedMatrix(4, np.array([0]), np.array([4]), np.array([0.5]))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DataValidationError):
            ThresholdedMatrix(4, np.array([0]), np.array([1, 2]), np.array([0.5]))

    def test_empty_matrix_is_valid(self):
        matrix = ThresholdedMatrix(3, np.array([]), np.array([]), np.array([]))
        assert matrix.num_edges == 0
        assert matrix.density() == 0.0
        assert matrix.edge_set() == set()

    def test_from_dense_signed_threshold(self):
        dense = np.eye(3)
        dense[0, 1] = dense[1, 0] = 0.8
        dense[0, 2] = dense[2, 0] = -0.9
        matrix = ThresholdedMatrix.from_dense(dense, threshold=0.5)
        assert matrix.edge_set() == {(0, 1)}

    def test_from_dense_absolute_threshold(self):
        dense = np.eye(3)
        dense[0, 1] = dense[1, 0] = 0.8
        dense[0, 2] = dense[2, 0] = -0.9
        matrix = ThresholdedMatrix.from_dense(
            dense, threshold=0.5, threshold_mode="absolute"
        )
        assert matrix.edge_set() == {(0, 1), (0, 2)}

    def test_from_dense_with_query(self):
        query = SlidingQuery(start=0, end=100, window=50, step=25, threshold=0.85)
        dense = np.eye(3)
        dense[0, 1] = dense[1, 0] = 0.8
        matrix = ThresholdedMatrix.from_dense(dense, query=query)
        assert matrix.num_edges == 0

    def test_from_dense_rejects_non_square(self):
        with pytest.raises(DataValidationError):
            ThresholdedMatrix.from_dense(np.zeros((2, 3)))


class TestEngineStats:
    def test_evaluation_fraction(self):
        stats = EngineStats(num_series=10, num_windows=4, exact_evaluations=90)
        assert stats.total_pair_windows == 45 * 4
        assert stats.evaluation_fraction == pytest.approx(90 / 180)

    def test_evaluation_fraction_empty(self):
        assert EngineStats().evaluation_fraction == 0.0

    def test_as_dict_includes_extra(self):
        stats = EngineStats(engine="x", extra={"custom": 1.0})
        record = stats.as_dict()
        assert record["engine"] == "x"
        assert record["custom"] == 1.0


class TestCorrelationSeriesResult:
    def make_result(self, num_windows=3, n=4):
        query = SlidingQuery(
            start=0, end=num_windows * 10 + 40, window=50, step=10, threshold=0.5
        )
        matrices = [
            ThresholdedMatrix(
                n, np.array([0]), np.array([1]), np.array([0.5 + 0.1 * k])
            )
            for k in range(query.num_windows)
        ]
        return CorrelationSeriesResult(query, matrices, EngineStats(engine="test"))

    def test_len_and_indexing(self):
        result = self.make_result()
        assert len(result) == result.query.num_windows
        assert result[0].num_edges == 1
        assert all(isinstance(m, ThresholdedMatrix) for m in result)

    def test_dense_series_shape(self):
        result = self.make_result()
        stacked = result.dense_series()
        assert stacked.shape == (result.num_windows, 4, 4)

    def test_edge_counting(self):
        result = self.make_result()
        assert result.total_edges() == result.num_windows
        assert list(result.edge_count_series()) == [1] * result.num_windows

    def test_window_starts_delegates_to_query(self):
        result = self.make_result()
        assert np.array_equal(result.window_starts(), result.query.window_starts())

    def test_mismatched_window_count_rejected(self):
        query = SlidingQuery(start=0, end=100, window=50, step=10, threshold=0.5)
        matrices = [ThresholdedMatrix(3, np.array([]), np.array([]), np.array([]))]
        with pytest.raises(DataValidationError):
            CorrelationSeriesResult(query, matrices)

    def test_mismatched_series_counts_rejected(self):
        query = SlidingQuery(start=0, end=60, window=50, step=10, threshold=0.5)
        matrices = [
            ThresholdedMatrix(3, np.array([]), np.array([]), np.array([])),
            ThresholdedMatrix(4, np.array([]), np.array([]), np.array([])),
        ]
        with pytest.raises(DataValidationError):
            CorrelationSeriesResult(query, matrices)

    def test_describe_mentions_engine(self):
        assert "test" in self.make_result().describe()
