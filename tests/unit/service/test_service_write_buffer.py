"""Unit tests for the service's bounded write buffer and chained appends.

Appends batch in memory until the buffered column count or the buffer's age
crosses its threshold, then flush into the chunk store, the standing-query
monitors and the sketch fingerprint chain.  Reads (query, watch, watch
results) flush first, so every accepted append is observable — the buffer
changes *when* storage writes happen, never *what* a reader sees.
"""

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service import CorrelationService
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore

NUM_SERIES = 5
LENGTH = 256
BASIC = 16

THRESHOLD_REQUEST = {
    "mode": "threshold", "start": 0, "end": LENGTH, "window": 64, "step": 32,
    "threshold": 0.5,
}


@pytest.fixture
def values():
    rng = np.random.default_rng(23)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.3 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture
def catalog(tmp_path, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=64)
    store.append(values)
    catalog = Catalog(tmp_path)
    catalog.add_dataset("demo", store, description="write-buffer test data")
    return catalog


def steps(count, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, NUM_SERIES)).tolist()


class TestWriteThroughDefault:
    def test_no_buffer_flushes_every_append(self, catalog):
        service = CorrelationService(catalog, basic_window_size=BASIC)
        result = service.append("demo", {"columns": steps(8)})
        assert result["flushed"] is True
        assert result["buffered_columns"] == 0
        assert result["length"] == LENGTH + 8
        runtime = service._runtime("demo")
        assert runtime.store.length == LENGTH + 8


class TestBufferedAppends:
    def test_appends_buffer_until_the_column_threshold(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=32
        )
        first = service.append("demo", {"columns": steps(16)})
        assert first["flushed"] is False
        assert first["buffered_columns"] == 16
        assert first["length"] == LENGTH + 16  # logical length counts buffered
        assert first["watches"] == []
        runtime = service._runtime("demo")
        assert runtime.store.length == LENGTH  # storage untouched
        second = service.append("demo", {"columns": steps(16, seed=2)})
        assert second["flushed"] is True
        assert second["length"] == LENGTH + 32
        assert runtime.store.length == LENGTH + 32
        assert runtime.counters["flushes"] == 1

    def test_buffered_columns_gauge_tracks_the_buffer(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=64
        )
        service.append("demo", {"columns": steps(10)})
        info = service.dataset_info("demo")
        assert info["stats"]["sketch_cache"]["buffered_columns"] == 10
        service.query("demo", dict(THRESHOLD_REQUEST))  # read flushes
        info = service.dataset_info("demo")
        assert info["stats"]["sketch_cache"]["buffered_columns"] == 0

    def test_age_threshold_flushes_lazily(self, catalog, monkeypatch):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_seconds=10.0
        )
        clock = iter([100.0, 100.5, 111.0]).__next__
        import repro.service.service as service_module

        monkeypatch.setattr(service_module.time, "monotonic", clock)
        first = service.append("demo", {"columns": steps(4)})
        assert first["flushed"] is False  # age 0.5s < 10s
        second = service.append("demo", {"columns": steps(4, seed=2)})
        assert second["flushed"] is True  # age 11s >= 10s
        assert second["length"] == LENGTH + 8


class TestReadYourWrites:
    def test_query_sees_buffered_appends(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=1024
        )
        service.append("demo", {"columns": steps(64)})
        request = {**THRESHOLD_REQUEST, "end": LENGTH + 64}
        result = service.query("demo", request)  # must not raise out-of-range
        assert result["num_windows"] > 0
        runtime = service._runtime("demo")
        assert runtime.store.length == LENGTH + 64

    def test_watch_registration_sees_buffered_appends(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=1024
        )
        service.append("demo", {"columns": steps(64)})
        watch = service.watch(
            "demo",
            {"mode": "threshold", "start": 0, "end": LENGTH + 64, "window": 64,
             "step": 32, "threshold": 0.5},
        )
        # History catch-up covers the flushed appends too.
        assert len(watch["windows"]) == (LENGTH + 64 - 64) // 32 + 1

    def test_watch_results_see_buffered_appends(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=1024
        )
        watch = service.watch(
            "demo",
            {"mode": "threshold", "start": 0, "end": LENGTH, "window": 64,
             "step": 32, "threshold": 0.5},
        )
        before = len(watch["windows"])
        service.append("demo", {"columns": steps(64)})
        results = service.watch_results("demo", watch["id"])
        assert len(results["windows"]) == before + 64 // 32


class TestChainedAppends:
    def test_flushed_appends_enable_incremental_plans(self, catalog):
        service = CorrelationService(
            catalog, basic_window_size=BASIC, write_buffer_columns=32
        )
        service.query("demo", dict(THRESHOLD_REQUEST))  # warm the sketch cache
        service.append("demo", {"columns": steps(32)})
        request = {**THRESHOLD_REQUEST, "end": LENGTH + 32}
        result = service.query("demo", request)
        assert "build=incremental(" in result["plan"]
        stats = service.dataset_info("demo")["stats"]["sketch_cache"]
        assert stats["extensions"] == 1
        assert stats["extended_windows"] == 2

    def test_extension_stats_surface_in_dataset_info(self, catalog):
        service = CorrelationService(catalog, basic_window_size=BASIC)
        stats = service.dataset_info("demo")["stats"]["sketch_cache"]
        assert {"extensions", "extended_windows", "buffered_columns"} <= set(stats)


class TestValidation:
    def test_rejects_non_positive_thresholds(self, catalog):
        with pytest.raises(ServiceError, match="write_buffer_columns"):
            CorrelationService(catalog, write_buffer_columns=0)
        with pytest.raises(ServiceError, match="write_buffer_seconds"):
            CorrelationService(catalog, write_buffer_seconds=0.0)
