"""Client transport behaviour: timeouts, reset retries, Retry-After decode.

Runs :class:`ServiceClient` against raw-socket fake servers that misbehave in
controlled ways, pinning the transport contract the docstring promises:

* a connection **reset** (peer closes an accepted connection without a
  response) is retried exactly ``retry_resets`` times, then surfaces 503;
* a **timeout** is never retried — the query may still be running server-side
  and re-sending doubles the load the timeout signalled;
* a shed 429's ``Retry-After`` header lands on ``ServiceError.retry_after``;
* the per-request ``timeout=`` override takes precedence over the
  constructor default.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service import ServiceClient

OK_BODY = json.dumps({"status": "ok", "datasets": 0}).encode()
OK_RESPONSE = (
    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
    b"Content-Length: %d\r\nConnection: close\r\n\r\n%s" % (len(OK_BODY), OK_BODY)
)


class FakeServer:
    """One-thread TCP server scripted by a per-connection behaviour list.

    Each accepted connection consumes the next behaviour: ``"reset"`` closes
    immediately without responding (the client sees a reset / empty
    response), ``"hang"`` reads the request but never answers (the client
    times out), ``"ok"`` serves a canned 200, and a ``bytes`` value is sent
    verbatim (for scripted error responses).
    """

    def __init__(self, behaviours):
        self.behaviours = list(behaviours)
        self.connections = 0
        self._closing = False
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(10)
        self.url = "http://127.0.0.1:%d" % self._sock.getsockname()[1]
        self._hung = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for behaviour in self.behaviours:
            try:
                conn, _ = self._sock.accept()
            except (socket.timeout, OSError):
                return
            if self._closing:
                conn.close()
                return
            self.connections += 1
            if behaviour == "reset":
                # RST instead of FIN: no response ever started.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    b"\x01\x00\x00\x00\x00\x00\x00\x00",
                )
                conn.close()
                continue
            conn.recv(65536)
            if behaviour == "hang":
                self._hung.append(conn)  # keep it open; never respond
                continue
            conn.sendall(OK_RESPONSE if behaviour == "ok" else behaviour)
            conn.close()

    def close(self):
        self._closing = True
        for conn in self._hung:
            conn.close()
        # Wake a thread blocked in accept() (closing the listening socket
        # does not interrupt it); the flag makes it exit.
        try:
            socket.create_connection(
                self._sock.getsockname(), timeout=1
            ).close()
        except OSError:
            pass
        self._thread.join(timeout=5)
        self._sock.close()


@pytest.fixture
def serve():
    servers = []

    def start(*behaviours):
        server = FakeServer(behaviours)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


def test_reset_is_retried_once_then_succeeds(serve):
    server = serve("reset", "ok")
    client = ServiceClient(server.url, timeout=5, retry_resets=1)
    assert client.health()["status"] == "ok"
    assert server.connections == 2


def test_reset_without_retries_is_503(serve):
    server = serve("reset", "ok")
    client = ServiceClient(server.url, timeout=5, retry_resets=0)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert "cannot reach service" in str(excinfo.value)
    assert server.connections == 1  # the scripted "ok" was never requested


def test_retries_are_bounded_by_retry_resets(serve):
    server = serve("reset", "reset", "reset", "ok")
    client = ServiceClient(server.url, timeout=5, retry_resets=2)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert server.connections == 3  # 1 original + 2 retries, not 4


def test_timeout_is_never_retried(serve):
    server = serve("hang", "ok")
    client = ServiceClient(server.url, timeout=0.2, retry_resets=3)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503
    assert server.connections == 1  # no second attempt after the timeout


def test_per_request_timeout_overrides_constructor_default(serve):
    server = serve("hang")
    client = ServiceClient(server.url, timeout=600, retry_resets=0)
    with pytest.raises(ServiceError):
        client.query_raw(
            "demo",
            {"mode": "threshold", "start": 0, "end": 8, "window": 4,
             "step": 4, "threshold": 0.5},
            timeout=0.2,
        )


def test_refused_connection_is_not_retried_and_is_503():
    # Bind-then-close guarantees a port nothing listens on.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=2, retry_resets=5)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 503


def test_retry_after_header_lands_on_the_error(serve):
    body = json.dumps(
        {"error": {"type": "ServiceError", "message": "queue full", "status": 429}}
    ).encode()
    shed = (
        b"HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n"
        b"Retry-After: 1.5\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
        % (len(body), body)
    )
    server = serve(shed)
    client = ServiceClient(server.url, timeout=5)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.status == 429
    assert excinfo.value.retry_after == 1.5
    assert "queue full" in str(excinfo.value)


def test_negative_retry_resets_rejected():
    with pytest.raises(ServiceError, match="non-negative"):
        ServiceClient("http://127.0.0.1:1", retry_resets=-1)
