"""JSON wire round-trips for the query family and all three result kinds.

The wire layer's contract is exactness: serializing through real JSON text
(not just dicts) and parsing back must reproduce the original objects bit
for bit — same query, same arrays, same edges, same describe().
"""

import json

import numpy as np
import pytest

from repro.api import (
    CorrelationSession,
    LaggedQuery,
    LaggedSeriesResult,
    ThresholdQuery,
    TopKQuery,
)
from repro.core.query import SlidingQuery, THRESHOLD_ABSOLUTE
from repro.core.result import CorrelationSeriesResult, EngineStats, ThresholdedMatrix
from repro.exceptions import QueryValidationError, ServiceError
from repro.service.wire import (
    RESULT_SCHEMA,
    edges_from_wire,
    edges_to_wire,
    query_from_wire,
    query_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.timeseries.matrix import TimeSeriesMatrix


def json_round_trip(document):
    """Push the document through real JSON text, as HTTP would."""
    return json.loads(json.dumps(document))


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(77)
    base = rng.standard_normal(192)
    values = np.stack([base + 0.2 * rng.standard_normal(192) for _ in range(5)])
    return CorrelationSession(TimeSeriesMatrix(values), basic_window_size=16)


class TestQueryRoundTrip:
    @pytest.mark.parametrize(
        "query",
        [
            ThresholdQuery(start=0, end=192, window=64, step=32, threshold=0.7),
            ThresholdQuery(start=16, end=176, window=32, step=16, threshold=-0.2,
                           threshold_mode=THRESHOLD_ABSOLUTE),
            TopKQuery(start=0, end=192, window=64, step=32, k=4),
            TopKQuery(start=0, end=192, window=64, step=32, k=2, absolute=True),
            LaggedQuery(start=0, end=192, window=64, step=32, max_lag=3,
                        threshold=0.5),
        ],
    )
    def test_round_trip_is_identity(self, query):
        parsed = query_from_wire(json_round_trip(query_to_wire(query)))
        assert parsed == query
        assert type(parsed) is type(query)

    def test_plain_sliding_query_parses_as_threshold(self):
        query = SlidingQuery(start=0, end=128, window=32, step=16, threshold=0.5)
        parsed = query_from_wire(json_round_trip(query_to_wire(query)))
        assert isinstance(parsed, ThresholdQuery)
        assert (parsed.start, parsed.end, parsed.window, parsed.step,
                parsed.threshold) == (0, 128, 32, 16, 0.5)

    def test_unknown_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown query field"):
            query_from_wire({"mode": "threshold", "start": 0, "end": 64,
                             "window": 32, "step": 16, "threshold": 0.5,
                             "thresold": 0.5})

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServiceError, match="missing required field 'window'"):
            query_from_wire({"start": 0, "end": 64, "step": 16, "threshold": 0.5})

    def test_bad_types_rejected(self):
        with pytest.raises(ServiceError, match="must be an integer"):
            query_from_wire({"start": "zero", "end": 64, "window": 32,
                             "step": 16, "threshold": 0.5})
        with pytest.raises(ServiceError, match="must be a number"):
            query_from_wire({"start": 0, "end": 64, "window": 32, "step": 16,
                             "threshold": "high"})
        with pytest.raises(ServiceError, match="'absolute'"):
            query_from_wire({"mode": "topk", "start": 0, "end": 64, "window": 32,
                             "step": 16, "k": 3, "absolute": "yes"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError, match="query mode"):
            query_from_wire({"mode": "fourier", "start": 0, "end": 64,
                             "window": 32, "step": 16})

    def test_inconsistent_spec_raises_query_validation(self):
        # Protocol-valid but semantically broken specs keep the library's
        # error type (they map to the same HTTP 400 but name the real rule).
        with pytest.raises(QueryValidationError):
            query_from_wire({"start": 0, "end": 16, "window": 32, "step": 16,
                             "threshold": 0.5})


class TestResultRoundTrip:
    def assert_round_trip(self, result):
        parsed = result_from_wire(json_round_trip(result_to_wire(result)))
        assert type(parsed) is type(result)
        assert parsed.query == result.query
        assert parsed.num_windows == result.num_windows
        assert parsed.to_edges() == result.to_edges()
        assert parsed.describe() == result.describe()
        return parsed

    def test_threshold_round_trip(self, session):
        result = session.run(
            ThresholdQuery(start=0, end=192, window=64, step=32, threshold=0.6)
        )
        parsed = self.assert_round_trip(result)
        for (_, original), (_, reconstructed) in zip(
            result.iter_windows(), parsed.iter_windows()
        ):
            np.testing.assert_array_equal(original.rows, reconstructed.rows)
            np.testing.assert_array_equal(original.values, reconstructed.values)
        assert parsed.stats == result.stats

    def test_topk_round_trip(self, session):
        result = session.run(TopKQuery(start=0, end=192, window=64, step=32, k=3))
        self.assert_round_trip(result)

    def test_lagged_round_trip(self, session):
        result = session.run(
            LaggedQuery(start=0, end=192, window=64, step=32, max_lag=2,
                        threshold=0.4)
        )
        parsed = self.assert_round_trip(result)
        for original, reconstructed in zip(result.windows, parsed.windows):
            np.testing.assert_array_equal(original.best_corr, reconstructed.best_corr)
            np.testing.assert_array_equal(original.best_lag, reconstructed.best_lag)

    def test_empty_threshold_result_round_trips(self):
        # No window has any surviving edge; the document must still carry the
        # matrix size so the reconstruction validates.
        query = ThresholdQuery(start=0, end=64, window=32, step=16, threshold=0.9)
        empty = np.array([], dtype=int)
        matrices = [
            ThresholdedMatrix(4, empty, empty, np.array([]))
            for _ in range(query.num_windows)
        ]
        result = CorrelationSeriesResult(query, matrices, stats=EngineStats())
        parsed = self.assert_round_trip(result)
        assert parsed.num_series == 4
        assert parsed.total_edges() == 0

    def test_empty_lagged_edges_round_trip(self, session):
        # A lagged result whose threshold excludes every pair flattens to an
        # empty edge list on both sides of the wire.
        result = session.run(
            LaggedQuery(start=0, end=192, window=64, step=32, max_lag=1,
                        threshold=1.0)
        )
        assert result.to_edges() == []
        self.assert_round_trip(result)

    def test_include_edges_matches_protocol_flattening(self, session):
        result = session.run(
            ThresholdQuery(start=0, end=192, window=64, step=32, threshold=0.6)
        )
        document = json_round_trip(result_to_wire(result, include_edges=True))
        assert edges_from_wire(document["edges"]) == result.to_edges()
        assert document["edges"] == json_round_trip(edges_to_wire(result.to_edges()))

    def test_series_ids_survive(self):
        query = ThresholdQuery(start=0, end=64, window=32, step=16, threshold=0.5)
        matrices = [
            ThresholdedMatrix(2, [0], [1], [0.75]) for _ in range(query.num_windows)
        ]
        result = CorrelationSeriesResult(query, matrices, series_ids=["left", "right"])
        parsed = result_from_wire(json_round_trip(result_to_wire(result)))
        assert parsed.series_ids == ["left", "right"]


class TestWireErrors:
    def test_schema_is_versioned(self, session):
        result = session.run(
            ThresholdQuery(start=0, end=192, window=64, step=32, threshold=0.6)
        )
        document = result_to_wire(result)
        assert document["schema"] == RESULT_SCHEMA
        document["schema"] = "repro.result/v0"
        with pytest.raises(ServiceError, match="unsupported result schema"):
            result_from_wire(document)

    def test_unknown_kind_rejected(self, session):
        document = result_to_wire(
            session.run(ThresholdQuery(start=0, end=192, window=64, step=32,
                                       threshold=0.6))
        )
        document["kind"] = "spectral"
        with pytest.raises(ServiceError, match="unknown result kind"):
            result_from_wire(document)

    def test_malformed_document_rejected(self):
        with pytest.raises(ServiceError, match="malformed result document"):
            result_from_wire({"schema": RESULT_SCHEMA, "kind": "threshold",
                              "query": {"mode": "threshold", "start": 0, "end": 64,
                                        "window": 32, "step": 16, "threshold": 0.5},
                              "windows": [{"rows": [0]}]})

    def test_unserializable_result_rejected(self):
        with pytest.raises(ServiceError, match="no wire kind"):
            result_to_wire(object())
