"""Worker pool over shared segments: dispatch, re-attach, crash recovery.

Exercises the pool in both modes.  Inline mode (always available) pins the
attach-and-execute path and its bit-identity against an in-process session.
Process mode (self-skipping where ``fork`` is unavailable) additionally pins
the crash-replacement retry, the stale-generation re-attach protocol, and
the per-worker RSS observation used by the service memory assertion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.core.basic_window import BasicWindowLayout
from repro.core.sketch import BasicWindowSketch
from repro.exceptions import ServiceError
from repro.service.wire import query_to_wire, result_from_wire
from repro.service.workers import (
    MODE_INLINE,
    MODE_PROCESS,
    AttachmentCache,
    WorkerConfig,
    WorkerPool,
    rss_anon_bytes,
)
from repro.storage.chunk_store import ChunkStore
from repro.storage.shared import SegmentManager
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 5
LENGTH = 128
BASIC = 16

QUERY = ThresholdQuery(start=0, end=LENGTH, window=64, step=32, threshold=0.4)


def _values(seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.4 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture
def store():
    chunk_store = ChunkStore(NUM_SERIES, chunk_columns=64)
    chunk_store.append(_values())
    return chunk_store


@pytest.fixture
def segment(tmp_path, store):
    """(manager, path, generation) for the store's current snapshot."""
    layout = BasicWindowLayout(offset=0, size=BASIC, count=LENGTH // BASIC)
    sketch = BasicWindowSketch.build(store.read_all(), layout)
    manager = SegmentManager(tmp_path / "segments")
    path, generation = manager.ensure(store, sketch, "fp-base", store.series_ids)
    yield manager, path, generation
    manager.close()


def _expected_edges(values: np.ndarray):
    session = CorrelationSession(
        TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
        basic_window_size=BASIC,
    )
    return session.run(QUERY).to_edges()


def _pool_available() -> bool:
    probe = WorkerPool(1, WorkerConfig(basic_window_size=BASIC), mode="auto")
    mode = probe.mode
    probe.close()
    return mode == MODE_PROCESS


class TestInlineMode:
    def test_inline_query_is_bit_identical(self, store, segment):
        _, path, generation = segment
        pool = WorkerPool(2, WorkerConfig(basic_window_size=BASIC), mode=MODE_INLINE)
        try:
            reply = pool.run_query("demo", query_to_wire(QUERY), path, generation)
        finally:
            pool.close()
        assert reply["generation"] == generation
        assert reply["cost_key"]
        assert reply["wall_seconds"] >= 0
        remote = result_from_wire(reply["payload"])
        assert remote.to_edges() == _expected_edges(store.read_all())
        assert pool.describe() == {
            "size": 2, "mode": MODE_INLINE, "restarts": 0, "dispatched": 1,
        }
        assert pool.worker_rss() == []  # process-mode observation only

    def test_invalid_pool_size_and_mode_rejected(self):
        with pytest.raises(ServiceError, match="at least 1"):
            WorkerPool(0, WorkerConfig())
        with pytest.raises(ServiceError, match="unknown worker pool mode"):
            WorkerPool(1, WorkerConfig(), mode="threads")

    def test_query_errors_cross_the_boundary_with_status(self, segment):
        _, path, generation = segment
        pool = WorkerPool(1, WorkerConfig(basic_window_size=BASIC), mode=MODE_INLINE)
        try:
            bad = query_to_wire(QUERY) | {"end": LENGTH * 10}
            with pytest.raises(ServiceError) as excinfo:
                pool.run_query("demo", bad, path, generation)
        finally:
            pool.close()
        assert excinfo.value.status == 400  # a ReproError, not a worker crash


class TestGenerationProtocol:
    def test_stale_generation_job_is_rejected(self, segment):
        _, path, generation = segment
        attachments = AttachmentCache(WorkerConfig(basic_window_size=BASIC))
        attachments.attachment_for("demo", str(path), generation)
        # A job naming a generation the segment does not carry (the worker
        # re-attached a pruned or superseded path) must 503, never answer
        # from the wrong snapshot.
        with pytest.raises(ServiceError) as excinfo:
            attachments.attachment_for("demo", str(path), generation + 1)
        assert excinfo.value.status == 503
        assert "generation" in str(excinfo.value)

    def test_reattach_on_generation_bump(self, tmp_path, store, segment):
        manager, path, generation = segment
        config = WorkerConfig(basic_window_size=BASIC)
        attachments = AttachmentCache(config)
        first = attachments.attachment_for("demo", str(path), generation)
        # Same generation: the warm attachment is reused (no re-open).
        assert attachments.attachment_for("demo", str(path), generation) is first

        # Append in the parent: new fingerprint, new generation, new segment.
        extra = np.random.default_rng(8).standard_normal((NUM_SERIES, 32))
        store.append(extra)
        layout = BasicWindowLayout(offset=0, size=BASIC, count=store.length // BASIC)
        sketch = BasicWindowSketch.build(store.read_all(), layout)
        new_path, new_generation = manager.ensure(
            store, sketch, "fp-appended", store.series_ids
        )
        assert new_generation == generation + 1
        second = attachments.attachment_for("demo", str(new_path), new_generation)
        assert second is not first
        assert second.generation == new_generation
        assert second.matrix.length == store.length
        # The superseded generation stays warm until LRU pressure drops it:
        # alternating layouts must not re-attach on every switch.
        assert attachments.attachment_for("demo", str(path), generation) is first


@pytest.mark.skipif(not _pool_available(), reason="fork worker pool unavailable")
class TestProcessMode:
    def test_process_query_is_bit_identical(self, store, segment):
        _, path, generation = segment
        with WorkerPool(2, WorkerConfig(basic_window_size=BASIC)) as pool:
            assert pool.mode == MODE_PROCESS
            reply = pool.run_query("demo", query_to_wire(QUERY), path, generation)
            remote = result_from_wire(reply["payload"])
            assert remote.to_edges() == _expected_edges(store.read_all())

    def test_dead_worker_is_replaced_and_job_retried(self, store, segment):
        _, path, generation = segment
        with WorkerPool(1, WorkerConfig(basic_window_size=BASIC)) as pool:
            (handle,) = pool._handles
            handle.process.terminate()
            handle.process.join(timeout=5)
            # The next job finds the dead worker, replaces it, and still
            # answers correctly on the replacement.
            reply = pool.run_query("demo", query_to_wire(QUERY), path, generation)
            remote = result_from_wire(reply["payload"])
            assert remote.to_edges() == _expected_edges(store.read_all())
            assert pool.describe()["restarts"] == 1

    def test_worker_rss_reports_every_worker(self, store, segment):
        _, path, generation = segment
        with WorkerPool(2, WorkerConfig(basic_window_size=BASIC)) as pool:
            pool.run_query("demo", query_to_wire(QUERY), path, generation)
            samples = pool.worker_rss()
            assert len(samples) == 2
            for sample in samples:
                assert sample["spawn"] is None or sample["spawn"] > 0
                assert sample["now"] is None or sample["now"] > 0

    def test_close_is_idempotent_and_stops_workers(self, segment):
        pool = WorkerPool(2, WorkerConfig(basic_window_size=BASIC))
        processes = [handle.process for handle in pool._handles]
        pool.close()
        pool.close()
        for process in processes:
            process.join(timeout=5)
            assert not process.is_alive()


def test_rss_anon_bytes_reads_proc():
    rss = rss_anon_bytes()
    # On Linux /proc is present; elsewhere the helper degrades to None.
    assert rss is None or rss > 0
