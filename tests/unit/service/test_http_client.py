"""End-to-end tests of the HTTP transport and the typed client.

One ephemeral-port server per module; every test drives it through
:class:`ServiceClient` (or raw urllib for protocol-level cases), so the
route table, the error envelope and the client's decoding are all exercised
over a real socket.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery
from repro.exceptions import ServiceError
from repro.service import CorrelationServer, CorrelationService, ServiceClient
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 5
LENGTH = 192
BASIC = 16

QUERY = ThresholdQuery(start=0, end=LENGTH, window=64, step=32, threshold=0.4)


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(13)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.4 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture(scope="module")
def server(tmp_path_factory, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=64)
    store.append(values)
    catalog = Catalog(tmp_path_factory.mktemp("catalog"))
    catalog.add_dataset("demo", store, description="http test data")
    server = CorrelationServer(
        CorrelationService(catalog, basic_window_size=BASIC)
    )
    with server:
        yield server


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestRoutes:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["datasets"] == 1

    def test_datasets_and_detail(self, client):
        (dataset,) = client.datasets()
        assert dataset["name"] == "demo"
        detail = client.dataset("demo")
        assert detail["num_series"] == NUM_SERIES
        assert "sketch_cache" in detail["stats"]

    def test_query_result_is_bit_identical_to_local_session(self, client, values):
        remote = client.query("demo", QUERY)
        local = CorrelationSession(
            TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
            basic_window_size=BASIC,
        ).run(QUERY)
        assert remote.query == local.query
        assert remote.to_edges() == local.to_edges()
        assert remote.num_windows == local.num_windows

    def test_query_raw_carries_plan_and_dataset(self, client):
        document = client.query_raw("demo", QUERY, include_edges=True)
        assert document["dataset"] == "demo"
        assert document["plan"].startswith("plan[threshold]")
        assert isinstance(document["edges"], list)

    def test_append_and_watch_round_trip(self, client):
        watch = client.watch("demo", QUERY)
        assert watch["emitted_windows"] == QUERY.num_windows
        response = client.append("demo", np.zeros((NUM_SERIES, 32)))
        assert response["length"] == LENGTH + 32
        results = client.watch_results("demo", watch["id"])
        assert results["emitted_windows"] == QUERY.num_windows + 1


class TestErrorMapping:
    def test_unknown_dataset_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("ghost", QUERY)
        assert excinfo.value.status == 404
        assert "unknown dataset" in str(excinfo.value)

    def test_invalid_query_is_400_with_library_error_type(self, client):
        bad = {"mode": "threshold", "start": 0, "end": 10 * LENGTH, "window": 64,
               "step": 32, "threshold": 0.4}
        with pytest.raises(ServiceError) as excinfo:
            client.query("demo", bad)
        assert excinfo.value.status == 400
        assert "QueryValidationError" in str(excinfo.value)

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_wrong_method_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/datasets/demo/query", timeout=10)
        assert excinfo.value.code == 405

    def test_malformed_json_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/datasets/demo/query",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"]["type"] == "ServiceError"

    def test_empty_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/datasets/demo/query", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_error_responses_close_the_connection(self, server):
        # Errors can leave an unread request body on a keep-alive socket
        # (e.g. a 405 on a POST), so every error response must carry
        # Connection: close — otherwise the leftover bytes desynchronize the
        # next request on the same connection.
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request(
                "GET", "/datasets/demo/query", body=b'{"mode": "threshold"}'
            )
            response = connection.getresponse()
            assert response.status == 405
            response.read()
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

    def test_success_responses_keep_the_connection_alive(self, server):
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            for _ in range(2):  # two requests over one keep-alive connection
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
                assert response.getheader("Connection") != "close"
        finally:
            connection.close()

    def test_unreachable_server_is_503(self):
        unreachable = ServiceClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError) as excinfo:
            unreachable.health()
        assert excinfo.value.status == 503


class TestServerLifecycle:
    def test_start_twice_rejected(self, server):
        with pytest.raises(ServiceError, match="already running"):
            server.start()

    def test_stop_is_idempotent(self, tmp_path):
        spare = CorrelationServer(CorrelationService(Catalog(tmp_path)))
        spare.start()
        spare.stop()
        spare.stop()
