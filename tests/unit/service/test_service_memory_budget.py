"""Service-level tests: memory-budgeted execution is invisible on the wire."""

import numpy as np
import pytest

from repro.service.service import CorrelationService
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore

N, L = 6, 512


@pytest.fixture
def catalog(tmp_path):
    rng = np.random.default_rng(77)
    base = rng.standard_normal(L)
    values = np.stack([base + 0.4 * rng.standard_normal(L) for _ in range(N)])
    store = ChunkStore(num_series=N, chunk_columns=128)
    store.append(values)
    catalog = Catalog(tmp_path / "catalog")
    catalog.add_dataset("demo", store)
    return catalog


REQUEST = {
    "mode": "threshold",
    "start": 0,
    "end": L,
    "window": 128,
    "step": 64,
    "threshold": 0.5,
}


def test_budgeted_service_answers_identically(catalog):
    dense = CorrelationService(catalog, basic_window_size=16)
    budgeted = CorrelationService(
        catalog, basic_window_size=16, memory_budget=N * L * 8 // 4
    )
    dense_doc = dense.query("demo", dict(REQUEST))
    tiled_doc = budgeted.query("demo", dict(REQUEST))
    assert "build=tiled" in tiled_doc["plan"]
    assert "build=tiled" not in dense_doc["plan"]
    # Identical wire payload apart from the plan line: tiled execution is
    # invisible to repro.result/v1 clients.
    assert tiled_doc["windows"] == dense_doc["windows"]
    assert tiled_doc["num_windows"] == dense_doc["num_windows"]


def test_budget_covering_dataset_stays_dense(catalog):
    service = CorrelationService(catalog, basic_window_size=16, memory_budget=10**9)
    document = service.query("demo", dict(REQUEST))
    assert "build=tiled" not in document["plan"]


def test_budgeted_query_path_never_materializes(catalog):
    """RPR002 regression: the sketch-only service path must stay lazy.

    A budgeted runtime serves queries off a :class:`ChunkBackedMatrix`;
    if any planner / stale-guard / session step dereferenced ``.values``,
    the lazy matrix would silently densify and the memory budget would be
    fiction.  Covers the initial query, an append (which rebuilds the
    matrix view), and the re-query over the grown data.
    """
    from repro.core.tiled import ChunkBackedMatrix

    service = CorrelationService(
        catalog, basic_window_size=16, memory_budget=N * L * 8 // 4
    )
    service.query("demo", dict(REQUEST))
    runtime = service._runtime("demo")
    with runtime.lock:
        matrix = runtime.matrix
    assert isinstance(matrix, ChunkBackedMatrix)
    assert not matrix.materialized

    steps = [[0.1 * i] * N for i in range(16)]
    service.append("demo", {"columns": steps})
    service.query("demo", {**REQUEST, "end": L + 16})
    with runtime.lock:
        regrown = runtime.matrix
    assert isinstance(regrown, ChunkBackedMatrix)
    assert not regrown.materialized
    assert not matrix.materialized
