"""Unit tests for the service domain layer (no sockets involved).

Covers the warm-session/bit-identity contract, in-flight coalescing, lazy
materialization of persisted stats indexes, the append/standing-query path
and the error surface.
"""

import threading

import numpy as np
import pytest

from repro.api import CorrelationSession, ThresholdQuery, TopKQuery
from repro.exceptions import ServiceError
from repro.service import CorrelationService, result_from_wire
from repro.service.service import DatasetRuntime
from repro.storage.catalog import Catalog
from repro.storage.chunk_store import ChunkStore
from repro.storage.stats_index import StatsIndex
from repro.timeseries.matrix import TimeSeriesMatrix

NUM_SERIES = 6
LENGTH = 256
BASIC = 16


@pytest.fixture
def values():
    rng = np.random.default_rng(99)
    base = rng.standard_normal(LENGTH)
    return np.stack(
        [base + 0.3 * rng.standard_normal(LENGTH) for _ in range(NUM_SERIES)]
    )


@pytest.fixture
def catalog(tmp_path, values):
    store = ChunkStore(NUM_SERIES, chunk_columns=64)
    store.append(values)
    catalog = Catalog(tmp_path)
    catalog.add_dataset("demo", store, description="unit-test data")
    return catalog


@pytest.fixture
def service(catalog):
    return CorrelationService(catalog, basic_window_size=BASIC)


THRESHOLD_REQUEST = {
    "mode": "threshold", "start": 0, "end": LENGTH, "window": 64, "step": 32,
    "threshold": 0.5,
}


class TestInventory:
    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["datasets"] == 1

    def test_datasets_report_load_state(self, service):
        (before,) = service.datasets()
        assert before["name"] == "demo" and not before["loaded"]
        service.query("demo", dict(THRESHOLD_REQUEST))
        (after,) = service.datasets()
        assert after["loaded"]
        assert (after["num_series"], after["length"]) == (NUM_SERIES, LENGTH)

    def test_dataset_info_exposes_stats(self, service):
        service.query("demo", dict(THRESHOLD_REQUEST))
        info = service.dataset_info("demo")
        assert info["stats"]["queries"] == 1
        assert info["stats"]["sketch_cache"]["builds"] == 1
        assert info["series_ids"] == [f"s{i}" for i in range(NUM_SERIES)]

    def test_unknown_dataset_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.query("ghost", dict(THRESHOLD_REQUEST))
        assert excinfo.value.status == 404


class TestQueryExecution:
    def test_bit_identical_to_in_process_session(self, service, values):
        document = service.query("demo", dict(THRESHOLD_REQUEST))
        remote = result_from_wire(document)
        session = CorrelationSession(
            TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
            basic_window_size=BASIC,
        )
        local = session.run(
            ThresholdQuery(start=0, end=LENGTH, window=64, step=32, threshold=0.5)
        )
        assert remote.to_edges() == local.to_edges()
        assert remote.query == local.query

    def test_second_identical_query_is_served_warm(self, service):
        service.query("demo", dict(THRESHOLD_REQUEST))
        service.query("demo", dict(THRESHOLD_REQUEST))
        stats = service.dataset_info("demo")["stats"]["sketch_cache"]
        assert stats["builds"] == 1
        assert stats["hits"] >= 1

    def test_topk_query_over_wire(self, service):
        document = service.query(
            "demo",
            {"mode": "topk", "start": 0, "end": LENGTH, "window": 64, "step": 32,
             "k": 3},
        )
        result = result_from_wire(document)
        assert result.num_windows == 7
        assert all(window.k == 3 for window in result.windows)

    def test_request_only_fields_do_not_leak_into_spec(self, service):
        document = service.query(
            "demo", {**THRESHOLD_REQUEST, "workers": 1, "include_edges": True}
        )
        assert "edges" in document
        assert document["query"] == {k: v for k, v in THRESHOLD_REQUEST.items()} | {
            "threshold_mode": "signed"
        }

    def test_bad_workers_type_rejected(self, service):
        with pytest.raises(ServiceError, match="'workers'"):
            service.query("demo", {**THRESHOLD_REQUEST, "workers": "many"})

    def test_non_object_request_rejected(self, service):
        with pytest.raises(ServiceError, match="JSON object"):
            service.query("demo", [1, 2, 3])


class TestCoalescing:
    def test_identical_concurrent_queries_share_one_execution(self, service, monkeypatch):
        runtime = service._runtime("demo")
        release = threading.Event()
        started = threading.Event()
        original = DatasetRuntime.session_for

        def slow_session_for(self, workers, exact_scan=False):
            started.set()
            release.wait(timeout=10)
            return original(self, workers, exact_scan)

        monkeypatch.setattr(DatasetRuntime, "session_for", slow_session_for)
        payloads = []

        def follower():
            payloads.append(service.query("demo", dict(THRESHOLD_REQUEST)))

        leader = threading.Thread(target=follower)
        leader.start()
        assert started.wait(timeout=10)  # leader is inside the execution
        chaser = threading.Thread(target=follower)
        chaser.start()
        # The chaser joined the leader's flight; only after the leader is
        # released does either finish.
        chaser.join(timeout=0.3)
        assert chaser.is_alive()
        release.set()
        leader.join(timeout=10)
        chaser.join(timeout=10)
        assert len(payloads) == 2
        assert payloads[0] is payloads[1]  # literally the same response object
        assert runtime.counters["coalesced"] == 1
        assert runtime.counters["queries"] == 2  # both requests were answered
        assert runtime.counters["executed"] == 1  # ... by one planner scan

    def test_leader_error_propagates_to_followers(self, service, monkeypatch):
        release = threading.Event()

        def exploding_session_for(self, workers, exact_scan=False):
            release.wait(timeout=10)
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(DatasetRuntime, "session_for", exploding_session_for)
        errors = []

        def run():
            try:
                service.query("demo", dict(THRESHOLD_REQUEST))
            except RuntimeError as error:
                errors.append(error)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(errors) == 2


class TestIndexSeeding:
    def test_matching_index_is_materialized_lazily(self, catalog, values):
        catalog.add_index("demo", StatsIndex.build(values, basic_window_size=BASIC))
        service = CorrelationService(catalog, basic_window_size=BASIC)
        document = service.query("demo", dict(THRESHOLD_REQUEST))
        stats = service.dataset_info("demo")["stats"]
        assert stats["indexes_seeded"] == 1
        assert stats["sketch_cache"]["builds"] == 0
        assert stats["sketch_cache"]["seeds"] == 1
        # Seeded statistics answer with the exact same result.
        fresh = CorrelationService(catalog.root, basic_window_size=BASIC)
        rebuilt = fresh.query("demo", dict(THRESHOLD_REQUEST))
        assert result_from_wire(document).to_edges() == result_from_wire(rebuilt).to_edges()

    def test_mismatched_index_size_is_ignored(self, catalog, values):
        catalog.add_index("demo", StatsIndex.build(values, basic_window_size=64))
        service = CorrelationService(catalog, basic_window_size=BASIC)
        service.query("demo", dict(THRESHOLD_REQUEST))
        stats = service.dataset_info("demo")["stats"]
        assert stats["indexes_seeded"] == 0
        assert stats["sketch_cache"]["builds"] == 1

    def test_stale_index_is_rejected_not_served(self, catalog, values):
        # An index whose statistics do not match the live data (here: built
        # from different data, registered under the same label) must degrade
        # to a normal build — never silently answer with foreign statistics.
        other = np.random.default_rng(1234).standard_normal(values.shape)
        catalog.add_index("demo", StatsIndex.build(other, basic_window_size=BASIC))
        service = CorrelationService(catalog, basic_window_size=BASIC)
        document = service.query("demo", dict(THRESHOLD_REQUEST))
        stats = service.dataset_info("demo")["stats"]
        assert stats["indexes_seeded"] == 0
        assert stats["sketch_cache"]["builds"] == 1
        # ... and the answer matches a fresh in-process run over the real data.
        session = CorrelationSession(
            TimeSeriesMatrix(values, series_ids=[f"s{i}" for i in range(NUM_SERIES)]),
            basic_window_size=BASIC,
        )
        local = session.run(
            ThresholdQuery(start=0, end=LENGTH, window=64, step=32, threshold=0.5)
        )
        assert result_from_wire(document).to_edges() == local.to_edges()


class TestAppendAndWatch:
    WATCH_REQUEST = {
        "mode": "threshold", "start": 0, "end": LENGTH, "window": 64, "step": 32,
        "threshold": 0.5,
    }

    def test_watch_catches_up_on_stored_history(self, service):
        response = service.watch("demo", dict(self.WATCH_REQUEST))
        assert response["emitted_windows"] == 7  # (256 - 64) / 32 + 1

    def test_append_feeds_standing_queries(self, service, values):
        watch = service.watch("demo", dict(self.WATCH_REQUEST))
        rng = np.random.default_rng(5)
        block = rng.standard_normal((32, NUM_SERIES))  # 32 time steps on the wire
        response = service.append("demo", {"columns": block.tolist()})
        assert response["length"] == LENGTH + 32
        (state,) = response["watches"]
        assert state["id"] == watch["id"]
        assert len(state["windows"]) == 1  # one more full step completed

        # The emitted window matches the offline engine over the full stream.
        full = np.concatenate([values, block.T], axis=1)
        session = CorrelationSession(TimeSeriesMatrix(full), basic_window_size=BASIC)
        offline = session.run(
            ThresholdQuery(start=0, end=LENGTH + 32, window=64, step=32,
                           threshold=0.5)
        )
        emitted = state["windows"][0]
        matrix = offline.matrices[emitted["index"]]
        assert emitted["rows"] == matrix.rows.tolist()
        assert emitted["values"] == pytest.approx(matrix.values.tolist())

    def test_appended_columns_are_queryable(self, service):
        service.append(
            "demo",
            {"columns": np.zeros((32, NUM_SERIES)).tolist()},
        )
        document = service.query(
            "demo",
            {"mode": "threshold", "start": 0, "end": LENGTH + 32, "window": 64,
             "step": 32, "threshold": 0.5},
        )
        assert document["num_windows"] == 8

    def test_append_shape_mismatch_rejected(self, service):
        with pytest.raises(ServiceError, match="one per series"):
            service.append("demo", {"columns": [[1.0, 2.0]]})

    def test_append_requires_columns_key(self, service):
        with pytest.raises(ServiceError, match="columns"):
            service.append("demo", {"rows": []})

    def test_watch_rejects_topk(self, service):
        from repro.exceptions import StreamingError

        with pytest.raises(StreamingError, match="threshold specs only"):
            service.watch(
                "demo",
                {"mode": "topk", "start": 0, "end": LENGTH, "window": 64,
                 "step": 32, "k": 3},
            )

    def test_unknown_watch_id_is_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.watch_results("demo", "w999")
        assert excinfo.value.status == 404

    def test_watch_history_is_bounded(self, service, monkeypatch):
        import repro.service.service as service_module

        monkeypatch.setattr(service_module, "WATCH_HISTORY_LIMIT", 3)
        watch = service.watch("demo", dict(self.WATCH_REQUEST))  # emits 7
        results = service.watch_results("demo", watch["id"])
        assert results["emitted_windows"] == 7      # full count survives
        assert results["retained_windows"] == 3     # history is capped
        assert [w["index"] for w in results["windows"]] == [4, 5, 6]
