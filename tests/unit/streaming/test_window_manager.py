"""Unit tests for sliding-window bookkeeping over a growing stream."""

import pytest

from repro.exceptions import StreamingError
from repro.streaming.window_manager import SlidingWindowManager


class TestSlidingWindowManager:
    def test_no_windows_before_first_is_full(self):
        manager = SlidingWindowManager(window=100, step=20)
        assert manager.complete_windows(99) == 0
        assert manager.newly_complete(99) == []

    def test_windows_appear_as_data_arrives(self):
        manager = SlidingWindowManager(window=100, step=20)
        first = manager.newly_complete(100)
        assert first == [(0, 0, 100)]
        assert manager.newly_complete(139) == [(1, 20, 120)]
        assert manager.newly_complete(180) == [(2, 40, 140), (3, 60, 160), (4, 80, 180)]
        assert manager.emitted_windows == 5

    def test_windows_never_reemitted(self):
        manager = SlidingWindowManager(window=50, step=25)
        assert len(manager.newly_complete(200)) == 7
        assert manager.newly_complete(200) == []
        assert manager.newly_complete(150) == []

    def test_nonzero_start(self):
        manager = SlidingWindowManager(window=50, step=25, start=100)
        assert manager.complete_windows(149) == 0
        assert manager.newly_complete(150) == [(0, 100, 150)]

    def test_window_bounds(self):
        manager = SlidingWindowManager(window=30, step=10, start=5)
        assert manager.window_bounds(3) == (35, 65)
        with pytest.raises(StreamingError):
            manager.window_bounds(-1)

    def test_validation(self):
        with pytest.raises(StreamingError):
            SlidingWindowManager(window=1, step=5)
        with pytest.raises(StreamingError):
            SlidingWindowManager(window=10, step=0)
        with pytest.raises(StreamingError):
            SlidingWindowManager(window=10, step=5, start=-1)
