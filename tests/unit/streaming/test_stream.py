"""Unit tests for the streaming ingestor."""

import numpy as np
import pytest

from repro.exceptions import StreamingError
from repro.storage.stats_index import StatsIndex
from repro.streaming.stream import StreamIngestor


class TestStreamIngestor:
    def test_index_grows_with_complete_basic_windows(self, rng):
        ingestor = StreamIngestor(num_series=4, basic_window_size=16)
        assert ingestor.append(rng.normal(size=(4, 10))) == 0
        assert ingestor.pending_columns == 10
        assert ingestor.indexed_basic_windows == 0
        assert ingestor.append(rng.normal(size=(4, 10))) == 1
        assert ingestor.pending_columns == 4
        assert ingestor.indexed_basic_windows == 1
        assert ingestor.ingested_columns == 20

    def test_index_matches_batch_build(self, rng):
        data = rng.normal(size=(5, 128))
        ingestor = StreamIngestor(num_series=5, basic_window_size=32)
        for start in range(0, 128, 20):
            ingestor.append(data[:, start : start + 20])
        batch = StatsIndex.build(data, basic_window_size=32)
        assert ingestor.indexed_basic_windows == batch.layout.count
        assert np.allclose(
            ingestor.index.sketch.exact_matrix_scan(0, 4),
            batch.sketch.exact_matrix_scan(0, 4),
        )

    def test_raw_store_retains_everything(self, rng):
        data = rng.normal(size=(3, 70))
        ingestor = StreamIngestor(num_series=3, basic_window_size=16, keep_raw=True)
        ingestor.append(data)
        assert np.allclose(ingestor.store.read_all(), data)

    def test_keep_raw_false_drops_store(self, rng):
        ingestor = StreamIngestor(num_series=3, basic_window_size=16, keep_raw=False)
        ingestor.append(rng.normal(size=(3, 32)))
        assert ingestor.store is None
        assert ingestor.indexed_basic_windows == 2

    def test_index_before_first_window_raises(self, rng):
        ingestor = StreamIngestor(num_series=2, basic_window_size=16)
        ingestor.append(rng.normal(size=(2, 5)))
        with pytest.raises(StreamingError):
            _ = ingestor.index

    def test_appended_history_boundaries(self, rng):
        ingestor = StreamIngestor(num_series=2, basic_window_size=8)
        assert ingestor.appended_history() == []
        ingestor.append(rng.normal(size=(2, 20)))
        assert ingestor.appended_history() == [0, 8, 16]

    def test_shape_and_value_validation(self, rng):
        ingestor = StreamIngestor(num_series=3, basic_window_size=8)
        with pytest.raises(StreamingError):
            ingestor.append(rng.normal(size=(2, 8)))
        with pytest.raises(StreamingError):
            ingestor.append(np.full((3, 4), np.nan))

    def test_constructor_validation(self):
        with pytest.raises(StreamingError):
            StreamIngestor(num_series=0)
        with pytest.raises(StreamingError):
            StreamIngestor(num_series=2, basic_window_size=1)

    def test_single_column_appends(self, rng):
        ingestor = StreamIngestor(num_series=2, basic_window_size=4)
        for _ in range(9):
            ingestor.append(rng.normal(size=2))
        assert ingestor.indexed_basic_windows == 2
        assert ingestor.pending_columns == 1
