"""Unit tests for the network-change alerting layer (repro.streaming.monitor)."""

import numpy as np
import pytest

from repro.exceptions import StreamingError
from repro.streaming.monitor import (
    ALERT_DENSITY_JUMP,
    ALERT_EDGE_APPEARED,
    ALERT_EDGE_DROPPED,
    ALERT_NETWORK_SHIFT,
    NetworkChangeMonitor,
)
from repro.streaming.online import OnlineCorrelationMonitor


def _make_monitor(num_series=4, window=64, step=32, threshold=0.8, **kwargs):
    online = OnlineCorrelationMonitor(
        num_series=num_series,
        window=window,
        step=step,
        threshold=threshold,
        basic_window_size=32,
        use_temporal_pruning=False,
    )
    return NetworkChangeMonitor(monitor=online, **kwargs)


def _correlated_block(rng, columns, flip=False):
    """4 series: (0, 1) strongly correlated unless ``flip``; (2, 3) independent."""
    base = rng.standard_normal(columns)
    partner = base if not flip else rng.standard_normal(columns)
    return np.stack([
        base,
        partner + 0.05 * rng.standard_normal(columns),
        rng.standard_normal(columns),
        rng.standard_normal(columns),
    ])


class TestAlerting:
    def test_edge_drop_and_appear_alerts(self, rng):
        monitor = _make_monitor()
        # Two windows where (0, 1) is an edge, then the pair decouples.
        assert monitor.append(_correlated_block(rng, 64)) == []
        monitor.append(_correlated_block(rng, 64))
        alerts = monitor.append(_correlated_block(rng, 64, flip=True))
        dropped_edges = [a.edge for a in alerts if a.kind == ALERT_EDGE_DROPPED]
        assert (0, 1) in dropped_edges
        # Re-couple the pair: it must re-appear.
        alerts = monitor.append(_correlated_block(rng, 128))
        appeared = [a.edge for a in monitor.alerts_of_kind(ALERT_EDGE_APPEARED)]
        assert (0, 1) in appeared

    def test_watch_list_filters_edge_alerts(self, rng):
        monitor = _make_monitor(watch_pairs=[(2, 3)])
        monitor.append(_correlated_block(rng, 128))
        monitor.append(_correlated_block(rng, 128, flip=True))
        edge_alerts = monitor.alerts_of_kind(ALERT_EDGE_DROPPED)
        assert all(alert.edge == (2, 3) for alert in edge_alerts)

    def test_network_shift_alert_on_decorrelation(self, rng):
        monitor = _make_monitor(min_jaccard=0.99)
        monitor.append(_correlated_block(rng, 128))
        monitor.append(_correlated_block(rng, 64, flip=True))
        kinds = {a.kind for a in monitor.alerts}
        assert ALERT_NETWORK_SHIFT in kinds

    def test_density_jump_alert(self, rng):
        monitor = _make_monitor(max_density_change=0.1)
        monitor.append(_correlated_block(rng, 128))
        monitor.append(_correlated_block(rng, 64, flip=True))
        assert monitor.alerts_of_kind(ALERT_DENSITY_JUMP)

    def test_no_alerts_for_stable_network(self, rng):
        monitor = _make_monitor()
        base = rng.standard_normal(256)
        stable = np.stack([
            base,
            base + 0.05 * rng.standard_normal(256),
            rng.standard_normal(256),
            rng.standard_normal(256),
        ])
        alerts = monitor.append(stable)
        # Only the pair (0, 1) is an edge in every window; nothing changes.
        assert [a for a in alerts if a.kind != ALERT_EDGE_APPEARED] == []
        assert monitor.edge_count_history.count(monitor.edge_count_history[0]) == len(
            monitor.edge_count_history
        )

    def test_edge_count_history_tracks_windows(self, rng):
        monitor = _make_monitor()
        monitor.append(_correlated_block(rng, 256))
        assert len(monitor.edge_count_history) == monitor.monitor.emitted_windows


class TestValidation:
    def test_invalid_thresholds_rejected(self):
        with pytest.raises(StreamingError):
            _make_monitor(min_jaccard=1.5)
        with pytest.raises(StreamingError):
            _make_monitor(max_density_change=0.0)

    def test_invalid_watch_pairs_rejected(self):
        with pytest.raises(StreamingError):
            _make_monitor(watch_pairs=[(0, 9)])
        with pytest.raises(StreamingError):
            _make_monitor(watch_pairs=[(1, 1)])

    def test_alerts_property_returns_copy(self, rng):
        monitor = _make_monitor()
        monitor.append(_correlated_block(rng, 128))
        log = monitor.alerts
        log.append("sentinel")
        assert "sentinel" not in monitor.alerts
