"""Unit tests for the online correlation-network monitor."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.exceptions import StreamingError
from repro.streaming.online import OnlineCorrelationMonitor


class TestOnlineMonitor:
    def make_monitor(self, num_series, **overrides):
        params = dict(
            num_series=num_series,
            window=128,
            step=32,
            threshold=0.6,
            basic_window_size=32,
        )
        params.update(overrides)
        return OnlineCorrelationMonitor(**params)

    def test_emits_one_result_per_window_in_order(self, small_matrix):
        monitor = self.make_monitor(small_matrix.num_series)
        emitted = []
        for start in range(0, small_matrix.length, 48):
            emitted.extend(monitor.append(small_matrix.values[:, start : start + 48]))
        indices = [result.window_index for result in emitted]
        assert indices == list(range(len(indices)))
        assert monitor.emitted_windows == len(emitted)

    def test_matches_offline_dangoron(self, small_matrix):
        monitor = self.make_monitor(small_matrix.num_series)
        emitted = []
        for start in range(0, small_matrix.length, 64):
            emitted.extend(monitor.append(small_matrix.values[:, start : start + 64]))
        query = monitor.equivalent_query(small_matrix.length)
        offline = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        assert len(emitted) == query.num_windows
        for result, matrix in zip(emitted, offline.matrices):
            assert result.matrix.edge_set() == matrix.edge_set()

    def test_reported_edges_are_exact(self, small_matrix):
        monitor = self.make_monitor(small_matrix.num_series, use_temporal_pruning=False)
        emitted = []
        for start in range(0, small_matrix.length, 96):
            emitted.extend(monitor.append(small_matrix.values[:, start : start + 96]))
        query = monitor.equivalent_query(small_matrix.length)
        exact = BruteForceEngine().run(small_matrix, query)
        for result, reference in zip(emitted, exact.matrices):
            assert result.matrix.edge_set() == reference.edge_set()
            for edge, value in result.matrix.edge_dict().items():
                assert value == pytest.approx(reference.edge_dict()[edge], abs=1e-8)

    def test_pruning_reduces_work_on_noise(self, noise_matrix):
        monitor = self.make_monitor(noise_matrix.num_series, threshold=0.9)
        emitted = []
        for start in range(0, noise_matrix.length, 64):
            emitted.extend(monitor.append(noise_matrix.values[:, start : start + 64]))
        assert len(emitted) > 2
        later = emitted[2:]
        total_pairs = noise_matrix.num_series * (noise_matrix.num_series - 1) // 2
        assert any(result.exact_evaluations < total_pairs for result in later)
        assert all(result.skipped_pairs >= 0 for result in later)

    def test_alignment_validation(self):
        with pytest.raises(StreamingError):
            self.make_monitor(4, window=100)
        with pytest.raises(StreamingError):
            self.make_monitor(4, step=10)
        with pytest.raises(StreamingError):
            self.make_monitor(4, threshold=2.0)

    def test_indexed_columns_tracks_complete_basic_windows(self, rng):
        monitor = self.make_monitor(4)
        monitor.append(rng.normal(size=(4, 40)))
        assert monitor.indexed_columns() == 32


class TestMonitorForQuery:
    """Building a monitor from a threshold query spec (the service's path)."""

    def make_query(self, **overrides):
        from repro.api.queries import ThresholdQuery

        params = dict(start=0, end=512, window=128, step=32, threshold=0.6)
        params.update(overrides)
        return ThresholdQuery(**params)

    def test_spec_fields_carry_over(self):
        monitor = OnlineCorrelationMonitor.for_query(
            self.make_query(), num_series=6, basic_window_size=32,
            series_ids=[f"n{i}" for i in range(6)],
        )
        assert (monitor.window, monitor.step, monitor.threshold) == (128, 32, 0.6)
        assert monitor.basic_window_size == 32
        assert monitor.series_ids == [f"n{i}" for i in range(6)]

    def test_basic_window_aligned_like_the_planner(self):
        # window=96, step=48 -> gcd 48; largest divisor <= 32 is 24.
        monitor = OnlineCorrelationMonitor.for_query(
            self.make_query(window=96, step=48), num_series=4,
            basic_window_size=32,
        )
        assert monitor.basic_window_size == 24

    def test_emission_matches_offline_engine(self, small_matrix):
        query = self.make_query(end=small_matrix.length)
        monitor = OnlineCorrelationMonitor.for_query(
            query, num_series=small_matrix.num_series, basic_window_size=32
        )
        emitted = list(monitor.append(small_matrix.values))
        offline = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        assert len(emitted) == query.num_windows
        for result, reference in zip(emitted, offline.matrices):
            assert result.matrix.edge_set() == reference.edge_set()

    def test_rejects_non_threshold_specs(self):
        from repro.api.queries import LaggedQuery, TopKQuery

        with pytest.raises(StreamingError, match="threshold specs only"):
            OnlineCorrelationMonitor.for_query(
                TopKQuery(start=0, end=512, window=128, step=32, k=3), num_series=4
            )
        with pytest.raises(StreamingError, match="threshold specs only"):
            OnlineCorrelationMonitor.for_query(
                LaggedQuery(start=0, end=512, window=128, step=32, max_lag=2),
                num_series=4,
            )

    def test_rejects_absolute_mode_and_offsets(self):
        with pytest.raises(StreamingError, match="signed"):
            OnlineCorrelationMonitor.for_query(
                self.make_query(threshold_mode="absolute"), num_series=4
            )
        with pytest.raises(StreamingError, match="column 0"):
            OnlineCorrelationMonitor.for_query(
                self.make_query(start=32), num_series=4
            )
