"""Unit tests for the FilCorr baseline (repro.baselines.filcorr)."""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.filcorr import FilCorrEngine, moving_average_filter
from repro.core.engine import available_engines, create_engine
from repro.core.query import SlidingQuery
from repro.exceptions import QueryValidationError


class TestMovingAverageFilter:
    def test_width_one_is_identity(self, rng):
        window = rng.normal(size=(4, 32))
        assert np.array_equal(moving_average_filter(window, 1), window)

    def test_matches_direct_convolution(self, rng):
        window = rng.normal(size=(3, 40))
        width = 5
        filtered = moving_average_filter(window, width)
        assert filtered.shape == (3, 40 - width + 1)
        for row in range(3):
            expected = np.convolve(window[row], np.ones(width) / width, mode="valid")
            assert np.allclose(filtered[row], expected, atol=1e-12)

    def test_constant_rows_unchanged(self):
        window = np.full((2, 20), 3.5)
        filtered = moving_average_filter(window, 4)
        assert np.allclose(filtered, 3.5)

    def test_invalid_width_rejected(self, rng):
        window = rng.normal(size=(2, 16))
        with pytest.raises(QueryValidationError):
            moving_average_filter(window, 0)
        with pytest.raises(QueryValidationError):
            moving_average_filter(window, 17)
        with pytest.raises(QueryValidationError):
            moving_average_filter(window[0], 2)


class TestEngineBehaviour:
    def test_verified_mode_has_perfect_precision(self, small_matrix, standard_query):
        reference = BruteForceEngine().run(small_matrix, standard_query)
        result = FilCorrEngine(filter_width=4, downsample=2).run(
            small_matrix, standard_query
        )
        report = compare_results(result, reference)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-8

    def test_recall_reasonable_on_smooth_data(self, small_matrix, standard_query):
        """AR(1) series are low-frequency dominated: filtering should keep recall high."""
        reference = BruteForceEngine().run(small_matrix, standard_query)
        result = FilCorrEngine(filter_width=4, downsample=2).run(
            small_matrix, standard_query
        )
        assert compare_results(result, reference).recall >= 0.8

    def test_unverified_mode_reports_estimates(self, small_matrix, standard_query):
        result = FilCorrEngine(filter_width=4, downsample=2, verify=False).run(
            small_matrix, standard_query
        )
        assert result.stats.exact_evaluations == 0
        assert not result.stats.engine.endswith("verified]")

    def test_no_filtering_no_downsampling_matches_exact_edges(
        self, small_matrix, standard_query
    ):
        """width=1, downsample=1, margin=0 estimates the exact correlation."""
        reference = BruteForceEngine().run(small_matrix, standard_query)
        result = FilCorrEngine(
            filter_width=1, downsample=1, candidate_margin=0.0, verify=False
        ).run(small_matrix, standard_query)
        report = compare_results(result, reference)
        assert report.precision == pytest.approx(1.0)
        assert report.recall == pytest.approx(1.0)

    def test_degrades_on_high_frequency_signal(self, rng):
        """An anti-phase high-frequency pair is invisible after heavy smoothing."""
        from repro.timeseries.matrix import TimeSeriesMatrix

        t = np.arange(256)
        fast = np.sin(2 * np.pi * t / 4)
        pair = np.stack([
            fast + 0.01 * rng.normal(size=256),
            fast + 0.01 * rng.normal(size=256),
            rng.normal(size=256),
        ])
        data = TimeSeriesMatrix(pair)
        query = SlidingQuery(start=0, end=256, window=128, step=64, threshold=0.8)
        reference = BruteForceEngine().run(data, query)
        heavy = FilCorrEngine(
            filter_width=8, downsample=1, candidate_margin=0.0, verify=False
        ).run(data, query)
        report = compare_results(heavy, reference)
        # Smoothing with a width spanning two full periods wipes out the shared
        # oscillation, so the (0, 1) edge is missed.
        assert report.recall < 0.5

    def test_stats_and_describe(self, small_matrix, standard_query):
        engine = FilCorrEngine(filter_width=6, downsample=3)
        result = engine.run(small_matrix, standard_query)
        assert "w=6" in engine.describe() and "d=3" in engine.describe()
        assert result.stats.extra["filter_width"] == 6.0
        assert result.stats.extra["downsample"] == 3.0
        assert result.stats.num_windows == standard_query.num_windows


class TestValidation:
    def test_registered_engine(self):
        assert "filcorr" in available_engines()
        assert isinstance(create_engine("filcorr"), FilCorrEngine)

    def test_bad_parameters_rejected(self):
        with pytest.raises(QueryValidationError):
            FilCorrEngine(filter_width=0)
        with pytest.raises(QueryValidationError):
            FilCorrEngine(downsample=0)
        with pytest.raises(QueryValidationError):
            FilCorrEngine(candidate_margin=-0.1)

    def test_filter_wider_than_window_rejected(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=32, threshold=0.5
        )
        with pytest.raises(QueryValidationError):
            FilCorrEngine(filter_width=64).run(small_matrix, query)

    def test_overaggressive_downsampling_rejected(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=32, threshold=0.5
        )
        with pytest.raises(QueryValidationError):
            FilCorrEngine(filter_width=60, downsample=10).run(small_matrix, query)
