"""Unit tests for the brute-force reference engine."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.correlation import correlation_matrix
from repro.core.query import SlidingQuery
from repro.exceptions import QueryValidationError


class TestBruteForce:
    def test_each_window_matches_direct_correlation(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        for k, begin, end in standard_query.iter_windows():
            expected = correlation_matrix(small_matrix.values[:, begin:end])
            expected_edges = {
                (i, j)
                for i in range(small_matrix.num_series)
                for j in range(i + 1, small_matrix.num_series)
                if expected[i, j] >= standard_query.threshold
            }
            assert result[k].edge_set() == expected_edges

    def test_stats_report_full_work(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        pairs = small_matrix.num_series * (small_matrix.num_series - 1) // 2
        assert result.stats.exact_evaluations == pairs * standard_query.num_windows
        assert result.stats.evaluation_fraction == pytest.approx(1.0)
        assert result.stats.sketch_build_seconds == 0.0

    def test_series_ids_propagated(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        assert result.series_ids == small_matrix.series_ids

    def test_query_validation(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length + 10, window=64, step=32, threshold=0.5
        )
        with pytest.raises(QueryValidationError):
            BruteForceEngine().run(small_matrix, query)

    def test_no_edges_on_independent_noise_at_high_threshold(self, noise_matrix):
        query = SlidingQuery(
            start=0, end=noise_matrix.length, window=192, step=64, threshold=0.9
        )
        result = BruteForceEngine().run(noise_matrix, query)
        assert result.total_edges() == 0

    def test_unaligned_query_supported(self, small_matrix):
        """Brute force has no alignment constraints at all."""
        query = SlidingQuery(
            start=3, end=small_matrix.length - 5, window=101, step=37, threshold=0.5
        )
        result = BruteForceEngine().run(small_matrix, query)
        assert result.num_windows == query.num_windows
        expected = correlation_matrix(small_matrix.values[:, 3:104])
        dense = result.dense(0)
        mask = dense != 0
        np.fill_diagonal(mask, False)
        assert np.allclose(dense[mask], expected[mask], atol=1e-10)
