"""Unit tests for the TSUBASA baseline engine."""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.query import SlidingQuery
from repro.exceptions import SketchError


class TestTsubasa:
    def test_matches_brute_force_on_aligned_query(self, small_matrix, standard_query):
        exact = BruteForceEngine().run(small_matrix, standard_query)
        sketched = TsubasaEngine(basic_window_size=32).run(small_matrix, standard_query)
        report = compare_results(sketched, exact)
        assert report.precision == pytest.approx(1.0)
        assert report.recall == pytest.approx(1.0)
        assert report.value_max_error < 1e-7

    def test_matches_brute_force_on_unaligned_query(self, small_matrix):
        """TSUBASA's selling point: exact answers for arbitrary windows."""
        query = SlidingQuery(
            start=5, end=small_matrix.length - 3, window=130, step=37, threshold=0.6
        )
        exact = BruteForceEngine().run(small_matrix, query)
        sketched = TsubasaEngine(basic_window_size=32).run(small_matrix, query)
        report = compare_results(sketched, exact)
        assert report.recall == pytest.approx(1.0)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-7

    def test_basic_window_larger_than_window_is_clamped(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=32, threshold=0.6
        )
        result = TsubasaEngine(basic_window_size=512).run(small_matrix, query)
        exact = BruteForceEngine().run(small_matrix, query)
        assert compare_results(result, exact).recall == pytest.approx(1.0)

    def test_evaluates_every_pair_every_window(self, small_matrix, standard_query):
        result = TsubasaEngine(basic_window_size=32).run(small_matrix, standard_query)
        assert result.stats.evaluation_fraction == pytest.approx(1.0)
        assert result.stats.sketch_build_seconds > 0.0

    def test_describe_mentions_basic_window(self):
        assert "b=16" in TsubasaEngine(basic_window_size=16).describe()

    def test_invalid_basic_window_size(self):
        with pytest.raises(SketchError):
            TsubasaEngine(basic_window_size=1)
