"""Unit tests for the StatStream (truncated DFT) baseline."""

import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.statstream import StatStreamEngine
from repro.core.query import SlidingQuery
from repro.datasets.random_walk import sinusoid_mixture, white_noise
from repro.exceptions import QueryValidationError


class TestStatStream:
    def test_full_spectrum_equals_exact_correlation(self, small_matrix):
        """Keeping every coefficient makes the Parseval estimate exact."""
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=64, step=64, threshold=0.6
        )
        exact = BruteForceEngine().run(small_matrix, query)
        full = StatStreamEngine(
            num_coefficients=32, candidate_margin=2.0, verify=False
        ).run(small_matrix, query)
        report = compare_results(full, exact)
        assert report.recall == pytest.approx(1.0)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-6

    def test_verified_mode_has_perfect_precision(self, small_matrix, standard_query):
        exact = BruteForceEngine().run(small_matrix, standard_query)
        result = StatStreamEngine(num_coefficients=12).run(small_matrix, standard_query)
        assert compare_results(result, exact).precision == pytest.approx(1.0)

    def test_good_recall_on_energy_concentrated_signals(self):
        """Low-frequency sinusoid mixtures are the friendly case for DFT truncation."""
        data = sinusoid_mixture(14, 512, num_tones=2, noise_scale=0.2, seed=9)
        query = SlidingQuery(start=0, end=512, window=256, step=64, threshold=0.7)
        exact = BruteForceEngine().run(data, query)
        result = StatStreamEngine(num_coefficients=16, verify=False,
                                  candidate_margin=0.0).run(data, query)
        assert compare_results(result, exact).recall >= 0.9

    def test_poor_estimates_on_white_noise(self):
        """With a flat spectrum, few coefficients capture little of the correlation."""
        data = white_noise(10, 512, seed=4)
        query = SlidingQuery(start=0, end=512, window=256, step=128, threshold=-1.0)
        exact = BruteForceEngine().run(data, query)
        truncated = StatStreamEngine(
            num_coefficients=4, verify=False, candidate_margin=2.0
        ).run(data, query)
        report = compare_results(truncated, exact)
        # Values are badly estimated even though every pair is a candidate.
        assert report.value_rmse > 0.05

    def test_coefficient_count_clamped_to_window(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=32, step=32, threshold=0.6
        )
        result = StatStreamEngine(num_coefficients=1000).run(small_matrix, query)
        assert result.stats.extra["num_coefficients"] <= 16

    @pytest.mark.parametrize(
        "kwargs", [{"num_coefficients": 0}, {"candidate_margin": -1.0}]
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(QueryValidationError):
            StatStreamEngine(**kwargs)

    def test_describe_mentions_mode(self):
        assert "verified" in StatStreamEngine().describe()
        assert "approximate" in StatStreamEngine(verify=False).describe()
