"""Unit tests for the ParCorr (random projection) baseline."""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.parcorr import ParCorrEngine, _znormalize_rows
from repro.core.query import SlidingQuery
from repro.exceptions import QueryValidationError


class TestZNormalization:
    def test_rows_have_zero_mean_unit_norm(self, rng):
        data = rng.normal(size=(5, 100)) * 7 + 3
        normalized = _znormalize_rows(data)
        assert np.allclose(normalized.mean(axis=1), 0.0, atol=1e-12)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0, atol=1e-12)

    def test_constant_rows_map_to_zero(self, rng):
        data = rng.normal(size=(3, 50))
        data[1] = 4.2
        normalized = _znormalize_rows(data)
        assert np.all(normalized[1] == 0.0)


class TestParCorr:
    def test_verified_mode_has_perfect_precision(self, small_matrix, standard_query):
        exact = BruteForceEngine().run(small_matrix, standard_query)
        result = ParCorrEngine(sketch_size=48, verify=True, seed=3).run(
            small_matrix, standard_query
        )
        report = compare_results(result, exact)
        assert report.precision == pytest.approx(1.0)
        assert report.value_max_error < 1e-7

    def test_verified_mode_recall_above_90_percent(self, small_matrix, standard_query):
        """The paper's accuracy comparison point."""
        exact = BruteForceEngine().run(small_matrix, standard_query)
        result = ParCorrEngine(sketch_size=128, candidate_margin=0.15, seed=3).run(
            small_matrix, standard_query
        )
        assert compare_results(result, exact).recall >= 0.9

    def test_larger_sketch_estimates_better(self, small_matrix, standard_query):
        exact = BruteForceEngine().run(small_matrix, standard_query)
        small = ParCorrEngine(sketch_size=8, verify=False, seed=3).run(
            small_matrix, standard_query
        )
        large = ParCorrEngine(sketch_size=256, verify=False, seed=3).run(
            small_matrix, standard_query
        )
        f1_small = compare_results(small, exact).f1
        f1_large = compare_results(large, exact).f1
        assert f1_large >= f1_small

    def test_unverified_mode_reports_estimates(self, small_matrix, standard_query):
        result = ParCorrEngine(sketch_size=32, verify=False, seed=3).run(
            small_matrix, standard_query
        )
        assert result.stats.exact_evaluations == 0
        assert result.stats.candidate_pairs >= result.total_edges()

    def test_candidate_margin_increases_candidates(self, small_matrix, standard_query):
        narrow = ParCorrEngine(sketch_size=32, candidate_margin=0.0, seed=3).run(
            small_matrix, standard_query
        )
        wide = ParCorrEngine(sketch_size=32, candidate_margin=0.3, seed=3).run(
            small_matrix, standard_query
        )
        assert wide.stats.candidate_pairs >= narrow.stats.candidate_pairs

    def test_gaussian_projection_supported(self, small_matrix, standard_query):
        result = ParCorrEngine(projection="gaussian", seed=5).run(
            small_matrix, standard_query
        )
        assert result.num_windows == standard_query.num_windows

    def test_deterministic_given_seed(self, small_matrix, standard_query):
        a = ParCorrEngine(seed=11, verify=False).run(small_matrix, standard_query)
        b = ParCorrEngine(seed=11, verify=False).run(small_matrix, standard_query)
        assert [m.edge_set() for m in a] == [m.edge_set() for m in b]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sketch_size": 0},
            {"candidate_margin": -0.1},
            {"projection": "fourier"},
        ],
    )
    def test_parameter_validation(self, kwargs):
        with pytest.raises(QueryValidationError):
            ParCorrEngine(**kwargs)

    def test_absolute_threshold_mode(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=64, threshold=0.7,
            threshold_mode="absolute",
        )
        exact = BruteForceEngine().run(small_matrix, query)
        result = ParCorrEngine(sketch_size=64, candidate_margin=0.1, seed=3).run(
            small_matrix, query
        )
        assert compare_results(result, exact).precision == pytest.approx(1.0)
