"""CLI tests for sharded parallel execution (``repro query --workers``)."""

import pytest

from repro.cli import main
from repro.datasets.loaders import write_wide_csv
from repro.datasets.random_walk import ar1_series


@pytest.fixture
def csv_dataset(tmp_path):
    matrix = ar1_series(8, 256, coefficient=0.8, shared_innovation_weight=0.7, seed=3)
    path = tmp_path / "data.csv"
    write_wide_csv(matrix, path)
    return path


def _query(csv_dataset, *extra):
    return ["query", str(csv_dataset), "--window", "64", "--step", "32",
            "--basic-window", "32", *extra]


def test_workers_flag_accepted_and_output_matches_serial(csv_dataset, capsys):
    assert main(_query(csv_dataset, "--threshold", "0.5")) == 0
    serial_output = capsys.readouterr().out
    assert main(_query(csv_dataset, "--threshold", "0.5", "--workers", "2")) == 0
    workers_output = capsys.readouterr().out
    # 8 series stay below the parallel pair floor, so both runs are serial —
    # and by the bit-identity guarantee the tables must agree regardless.
    serial_rows = [line for line in serial_output.splitlines()
                   if "|" in line and "seconds" not in line]
    workers_rows = [line for line in workers_output.splitlines()
                    if "|" in line and "seconds" not in line]
    assert serial_rows == workers_rows


@pytest.mark.parametrize("mode_args", [
    ("--mode", "topk", "--k", "3"),
    ("--mode", "lagged", "--max-lag", "4"),
])
def test_workers_accepted_for_all_modes(csv_dataset, capsys, mode_args):
    """topk/lagged queries shard too; output must match the serial run."""
    assert main(_query(csv_dataset, *mode_args)) == 0
    serial_output = capsys.readouterr().out
    assert main(_query(csv_dataset, *mode_args, "--workers", "2")) == 0
    workers_output = capsys.readouterr().out
    # Drop the plan line (it names the execution decision) and compare the
    # result summaries: sharded execution is bit-identical to serial.
    def summary(text):
        return [line for line in text.splitlines() if not line.startswith("plan[")]
    assert summary(serial_output) == summary(workers_output)


def test_workers_must_be_positive(csv_dataset, capsys):
    code = main(_query(csv_dataset, "--workers", "0"))
    assert code == 1
    assert "--workers" in capsys.readouterr().err


def test_info_reports_available_cpus(capsys):
    assert main(["info"]) == 0
    assert "cpus available for --workers:" in capsys.readouterr().out
