"""Unit tests for the benchmark regression gate (scripts/compare_bench.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "compare_bench", ROOT / "scripts" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("compare_bench", compare_bench)
_spec.loader.exec_module(compare_bench)


def recording(path: Path, rows):
    path.write_text(json.dumps({"bench": "t", "rows": rows}))
    return path


ROW = {"family": "threshold", "execution": "serial"}


class TestRowMatching:
    def test_identical_recordings_pass(self, tmp_path):
        rows = [{**ROW, "wall_seconds": 1.0, "speedup": 2.0}]
        base = recording(tmp_path / "BENCH_1.json", rows)
        cand = recording(tmp_path / "BENCH_2.json", rows)
        report = compare_bench.build_report(base, cand, 0.10)
        assert report["ok"] and report["compared_metrics"] == 2

    def test_rows_match_on_non_numeric_identity(self, tmp_path):
        base = recording(
            tmp_path / "BENCH_1.json",
            [{**ROW, "wall_seconds": 1.0},
             {"family": "topk", "execution": "serial", "wall_seconds": 9.0}],
        )
        cand = recording(
            tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 1.05}]
        )
        report = compare_bench.build_report(base, cand, 0.10)
        # The top-k row vanished from the candidate: nothing to compare it
        # against, and the surviving row is within tolerance.
        assert report["ok"] and report["compared_metrics"] == 1

    def test_new_rows_pass_vacuously(self, tmp_path):
        base = recording(tmp_path / "BENCH_1.json", [])
        cand = recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 5.0}])
        report = compare_bench.build_report(base, cand, 0.10)
        assert report["ok"] and report["compared_metrics"] == 0


class TestDirections:
    def test_wall_time_regression_flagged(self, tmp_path):
        base = recording(tmp_path / "BENCH_1.json", [{**ROW, "wall_seconds": 1.0}])
        cand = recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 1.2}])
        report = compare_bench.build_report(base, cand, 0.10)
        assert not report["ok"]
        (flagged,) = report["regressions"]
        assert flagged["metric"] == "wall_seconds"
        assert flagged["change"] == pytest.approx(0.2)

    def test_wall_time_improvement_passes(self, tmp_path):
        base = recording(tmp_path / "BENCH_1.json", [{**ROW, "wall_seconds": 1.0}])
        cand = recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 0.5}])
        assert compare_bench.build_report(base, cand, 0.10)["ok"]

    def test_throughput_regression_flagged(self, tmp_path):
        base = recording(
            tmp_path / "BENCH_1.json", [{**ROW, "appends_per_sec": 100.0}]
        )
        cand = recording(
            tmp_path / "BENCH_2.json", [{**ROW, "appends_per_sec": 80.0}]
        )
        report = compare_bench.build_report(base, cand, 0.10)
        assert not report["ok"]
        assert report["regressions"][0]["direction"] == "higher"

    def test_within_tolerance_passes(self, tmp_path):
        base = recording(tmp_path / "BENCH_1.json", [{**ROW, "wall_seconds": 1.0}])
        cand = recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 1.09}])
        assert compare_bench.build_report(base, cand, 0.10)["ok"]

    def test_unclassified_numbers_are_informational(self, tmp_path):
        base = recording(tmp_path / "BENCH_1.json", [{**ROW, "workers": 1}])
        cand = recording(tmp_path / "BENCH_2.json", [{**ROW, "workers": 4}])
        report = compare_bench.build_report(base, cand, 0.10)
        assert report["ok"] and report["compared_metrics"] == 0


class TestCommandLine:
    def test_picks_the_two_newest_recordings(self, tmp_path, capsys):
        recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 1.0}])
        recording(tmp_path / "BENCH_10.json", [{**ROW, "wall_seconds": 0.9}])
        recording(tmp_path / "BENCH_9.json", [{**ROW, "wall_seconds": 5.0}])
        assert compare_bench.main(["--root", str(tmp_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        # Numeric sort: 9 then 10 — not the lexicographic 10-before-2.
        assert report["baseline"] == "BENCH_9.json"
        assert report["candidate"] == "BENCH_10.json"

    def test_single_recording_passes_with_a_note(self, tmp_path, capsys):
        recording(tmp_path / "BENCH_1.json", [{**ROW, "wall_seconds": 1.0}])
        assert compare_bench.main(["--root", str(tmp_path)]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        recording(tmp_path / "BENCH_1.json", [{**ROW, "wall_seconds": 1.0}])
        recording(tmp_path / "BENCH_2.json", [{**ROW, "wall_seconds": 2.0}])
        assert compare_bench.main(["--root", str(tmp_path)]) == 1

    def test_explicit_pair_overrides_discovery(self, tmp_path, capsys):
        a = recording(tmp_path / "a.json", [{**ROW, "wall_seconds": 1.0}])
        b = recording(tmp_path / "b.json", [{**ROW, "wall_seconds": 1.0}])
        assert (
            compare_bench.main(["--baseline", str(a), "--candidate", str(b)]) == 0
        )

    def test_bad_arguments_exit_2(self, tmp_path):
        assert compare_bench.main(["--tolerance", "-1"]) == 2
        assert compare_bench.main(["--baseline", "only-one.json"]) == 2
        assert (
            compare_bench.main(
                ["--baseline", str(tmp_path / "nope.json"),
                 "--candidate", str(tmp_path / "nope2.json")]
            )
            == 2
        )
