"""Unit tests for the extension experiments E11-E15 (repro.experiments.ablations).

As with the registry tests, experiments run at a tiny scale: the assertions
check table structure and the directional claims each experiment exists to
demonstrate, not paper-scale magnitudes.
"""

import pytest

from repro.experiments.ablations import (
    experiment_e11_incremental,
    experiment_e12_topk,
    experiment_e13_slack,
    experiment_e14_pivot_count,
    experiment_e15_robustness_suite,
)
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistration:
    def test_extension_experiments_registered(self):
        for experiment_id in ("E11", "E12", "E13", "E14", "E15"):
            assert experiment_id in EXPERIMENTS

    def test_runnable_through_shared_entry_point(self):
        result = run_experiment("E12", scale=0.15, ks=(1, 3))
        assert result.experiment_id == "E12"


class TestE11Incremental:
    def test_rows_cover_steps_and_engines(self):
        result = experiment_e11_incremental(scale=0.15, steps=(24, 168))
        steps = {row[0] for row in result.rows}
        assert steps == {24, 168}
        engines = {row[2].split("[")[0] for row in result.rows}
        assert engines == {"tsubasa", "dangoron", "incremental"}

    def test_all_engines_exact_or_near_exact(self):
        result = experiment_e11_incremental(scale=0.15, steps=(24,))
        recall_index = result.headers.index("recall")
        for row in result.rows:
            engine = row[2]
            if engine.startswith(("tsubasa", "incremental")):
                assert row[recall_index] == pytest.approx(1.0)
            else:
                assert row[recall_index] >= 0.85


class TestE12TopK:
    def test_sketch_and_brute_force_agree(self):
        result = experiment_e12_topk(scale=0.15, ks=(1, 5))
        mean_overlap_index = result.headers.index("mean_overlap")
        for row in result.rows:
            assert row[mean_overlap_index] >= 0.95

    def test_suggested_threshold_decreases_with_k(self):
        result = experiment_e12_topk(scale=0.15, ks=(1, 10))
        beta_index = result.headers.index("suggested_beta")
        assert result.rows[0][beta_index] >= result.rows[1][beta_index]


class TestE13Slack:
    def test_recall_monotone_in_slack(self):
        result = experiment_e13_slack(scale=0.2, slacks=(0.0, 0.2))
        recall_index = result.headers.index("recall")
        eval_index = result.headers.index("eval_fraction")
        assert result.rows[1][recall_index] >= result.rows[0][recall_index] - 1e-12
        assert result.rows[1][eval_index] >= result.rows[0][eval_index] - 1e-12

    def test_precision_always_one(self):
        result = experiment_e13_slack(scale=0.2, slacks=(0.0, 0.1))
        precision_index = result.headers.index("precision")
        assert all(row[precision_index] == pytest.approx(1.0) for row in result.rows)


class TestE14PivotCount:
    def test_recall_is_exact_and_pruning_reported(self):
        result = experiment_e14_pivot_count(scale=0.15, pivot_counts=(1, 4))
        recall_index = result.headers.index("recall")
        pruned_index = result.headers.index("pruned_fraction")
        for row in result.rows:
            assert row[recall_index] == pytest.approx(1.0)
            assert 0.0 <= row[pruned_index] <= 1.0

    def test_pivot_evaluations_grow_with_pivot_count(self):
        # Pivot counts small enough that the engine's cost gate (pivot analysis
        # must be cheaper than the pairs it could prune) keeps pruning active.
        result = experiment_e14_pivot_count(scale=0.15, pivot_counts=(1, 2))
        evals_index = result.headers.index("pivot_evaluations")
        assert result.rows[0][evals_index] > 0
        assert result.rows[1][evals_index] >= result.rows[0][evals_index]


class TestE15Suite:
    def test_one_row_per_suite_case_with_perfect_precision(self):
        from repro.tomborg.suite import DEFAULT_SUITE

        result = experiment_e15_robustness_suite(scale=0.2)
        assert len(result.rows) == len(DEFAULT_SUITE)
        precision_index = result.headers.index("precision")
        recall_index = result.headers.index("recall")
        for row in result.rows:
            assert row[precision_index] == pytest.approx(1.0)
            assert 0.0 <= row[recall_index] <= 1.0
