"""Unit tests for the experiment registry (E1–E10).

Each experiment runs at a tiny scale here — the goal is to verify that every
registered experiment produces a well-formed table with the columns its
benchmark prints, not to reproduce the paper-scale numbers (that is what the
benchmarks directory does).
"""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_e1_query_time,
    experiment_e4_threshold_sweep,
    experiment_e7_pruning_ablation,
    experiment_e9_bound_quality,
    run_experiment,
)


class TestRegistry:
    def test_all_experiments_registered(self):
        """E1-E10 reproduce the paper; E11-E15 are the repository's ablations."""
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 16)}

    def test_run_experiment_by_id_case_insensitive(self):
        result = run_experiment("e1", scale=0.15)
        assert result.experiment_id == "E1"

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("E99")


class TestIndividualExperiments:
    def test_e1_has_row_per_engine_and_speedup_column(self):
        result = experiment_e1_query_time(scale=0.15)
        assert len(result.rows) == 3
        assert "speedup_vs_tsubasa" in result.headers
        table = result.table()
        assert "E1" in table and "dangoron" in table

    def test_e4_rows_cover_requested_thresholds(self):
        result = experiment_e4_threshold_sweep(scale=0.15, thresholds=(0.6, 0.8))
        assert [row[0] for row in result.rows] == [0.6, 0.8]
        recall_index = result.headers.index("recall")
        assert all(row[recall_index] >= 0.0 for row in result.rows)

    def test_e7_covers_all_ablation_configurations(self):
        result = experiment_e7_pruning_ablation(scale=0.15)
        labels = [row[0] for row in result.rows]
        assert labels == [
            "none", "temporal", "horizontal", "temporal+horizontal",
            "prefix_combination",
        ]
        recall_index = result.headers.index("recall")
        none_recall = result.rows[0][recall_index]
        assert none_recall == pytest.approx(1.0)

    def test_e9_violation_rate_is_small(self):
        result = experiment_e9_bound_quality(scale=0.15, horizons=(1, 4))
        rate_index = result.headers.index("violation_rate")
        for row in result.rows:
            assert 0.0 <= row[rate_index] <= 0.5
