"""Unit tests for standard experiment workloads."""

import pytest

from repro.core.basic_window import BasicWindowLayout
from repro.experiments.workloads import (
    climate_workload,
    finance_workload,
    fmri_workload,
    tomborg_workload,
)

ALL_BUILDERS = [climate_workload, tomborg_workload, fmri_workload, finance_workload]


@pytest.mark.parametrize("builder", ALL_BUILDERS, ids=lambda b: b.__name__)
class TestWorkloadContract:
    def test_small_scale_workload_is_consistent(self, builder):
        workload = builder(scale=0.15)
        assert workload.num_series >= 10
        assert workload.matrix.length >= workload.query.window
        workload.query.validate_against_length(workload.matrix.length)
        assert workload.num_windows >= 1
        assert workload.describe().startswith(workload.name)

    def test_query_aligns_with_basic_windows(self, builder):
        workload = builder(scale=0.15)
        layout = BasicWindowLayout.for_query(
            workload.query, workload.basic_window_size
        )
        assert workload.query.window % layout.size == 0
        assert workload.query.step % layout.size == 0

    def test_scale_controls_size(self, builder):
        small = builder(scale=0.15)
        large = builder(scale=0.3)
        assert large.num_series >= small.num_series


class TestSpecificWorkloads:
    def test_climate_threshold_passthrough(self):
        workload = climate_workload(scale=0.15, threshold=0.42)
        assert workload.query.threshold == 0.42

    def test_tomborg_metadata_has_ground_truth(self):
        workload = tomborg_workload(scale=0.15, num_segments=2)
        dataset = workload.metadata["dataset"]
        assert len(dataset.segments) == 2
        assert dataset.length == workload.matrix.length

    def test_fmri_labels_cover_all_voxels(self):
        workload = fmri_workload(scale=0.15)
        assert workload.labels is not None
        assert len(workload.labels) == workload.num_series

    def test_finance_crisis_periods_inside_range(self):
        workload = finance_workload(scale=0.25)
        for start, end in workload.metadata["crisis_periods"]:
            assert 0 <= start < end <= workload.matrix.length

    def test_tomborg_rejects_zero_segments(self):
        with pytest.raises(Exception):
            tomborg_workload(scale=0.15, num_segments=0)
