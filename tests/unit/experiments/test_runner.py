"""Unit tests for the engine-comparison runner."""

import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.exceptions import ExperimentError
from repro.experiments.runner import default_engines, run_comparison
from repro.experiments.workloads import climate_workload


@pytest.fixture(scope="module")
def workload():
    return climate_workload(scale=0.15, threshold=0.6)


@pytest.fixture(scope="module")
def comparison(workload):
    engines = [
        BruteForceEngine(),
        TsubasaEngine(basic_window_size=workload.basic_window_size),
        DangoronEngine(basic_window_size=workload.basic_window_size),
    ]
    return run_comparison(workload, engines=engines)


class TestRunComparison:
    def test_one_row_per_engine(self, comparison):
        assert len(comparison.rows) == 3
        assert len(comparison.results) == 3

    def test_exact_engines_have_perfect_precision(self, comparison):
        for row in comparison.rows:
            assert row.precision == pytest.approx(1.0)

    def test_speedup_reference_is_tsubasa(self, comparison):
        tsubasa_row = comparison.row("tsubasa")
        assert tsubasa_row.speedup_vs_reference == pytest.approx(1.0)

    def test_dangoron_prunes_relative_to_tsubasa(self, comparison):
        dangoron_row = comparison.row("dangoron")
        tsubasa_row = comparison.row("tsubasa")
        assert dangoron_row.evaluation_fraction <= tsubasa_row.evaluation_fraction

    def test_row_lookup_unknown_prefix(self, comparison):
        with pytest.raises(ExperimentError):
            comparison.row("nonexistent")

    def test_table_contains_all_engines(self, comparison):
        table = comparison.table()
        for row in comparison.rows:
            assert row.engine.split("[")[0] in table

    def test_row_as_dict(self, comparison):
        record = comparison.rows[0].as_dict()
        assert {"engine", "query_seconds", "recall", "speedup"} <= set(record)

    def test_default_engines_lineup(self):
        engines = default_engines(basic_window_size=16)
        names = {engine.name for engine in engines}
        assert names == {"brute_force", "tsubasa", "dangoron", "parcorr", "statstream"}
