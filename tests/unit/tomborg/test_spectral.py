"""Unit tests for the real-valued DFT pair and spectrum shapes."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.tomborg.spectral import (
    band_limited_spectrum,
    flat_spectrum,
    named_spectrum,
    num_real_coefficients,
    peaked_spectrum,
    power_law_spectrum,
    real_forward_dft,
    real_inverse_dft,
    real_synthesis_matrix,
)


class TestRealDFTBasis:
    @pytest.mark.parametrize("length", [2, 3, 8, 17, 64, 101])
    def test_synthesis_matrix_is_orthonormal(self, length):
        basis = real_synthesis_matrix(length)
        assert basis.shape == (length, length)
        assert np.allclose(basis.T @ basis, np.eye(length), atol=1e-10)

    @pytest.mark.parametrize("length", [4, 9, 32, 50])
    def test_round_trip(self, rng, length):
        coefficients = rng.normal(size=(3, length))
        series = real_inverse_dft(coefficients)
        recovered = real_forward_dft(series)
        assert np.allclose(recovered, coefficients, atol=1e-10)

    def test_inner_products_preserved(self, rng):
        """The Parseval property the paper's step (2) relies on."""
        coefficients = rng.normal(size=(4, 60))
        series = real_inverse_dft(coefficients)
        assert np.allclose(series @ series.T, coefficients @ coefficients.T, atol=1e-9)

    def test_dc_coefficient_controls_mean(self):
        length = 16
        coefficients = np.zeros(length)
        coefficients[0] = 4.0
        series = real_inverse_dft(coefficients)
        assert np.allclose(series, 4.0 / np.sqrt(length))

    def test_single_pair_produces_sinusoid(self):
        length = 64
        coefficients = np.zeros(length)
        coefficients[1] = 1.0  # first cosine coefficient
        series = real_inverse_dft(coefficients)
        t = np.arange(length)
        expected = np.sqrt(2.0 / length) * np.cos(2 * np.pi * t / length)
        assert np.allclose(series, expected, atol=1e-10)

    def test_num_real_coefficients(self):
        assert num_real_coefficients(10) == 10
        assert num_real_coefficients(11) == 11
        with pytest.raises(GenerationError):
            num_real_coefficients(1)

    def test_too_short_length_rejected(self):
        with pytest.raises(GenerationError):
            real_synthesis_matrix(1)


class TestSpectrumShapes:
    @pytest.mark.parametrize(
        "shape",
        [flat_spectrum(), power_law_spectrum(1.0), band_limited_spectrum(0.0, 0.1),
         peaked_spectrum(0.05, 0.01)],
        ids=lambda s: s.describe(),
    )
    def test_envelope_contract(self, shape):
        for length in (16, 63, 128):
            envelope = shape.envelope(length)
            assert envelope.shape == (length,)
            assert np.all(envelope >= 0)
            assert np.any(envelope > 0)
            assert envelope[0] == 0.0  # DC suppressed -> zero-mean series

    def test_flat_spectrum_is_flat(self):
        envelope = flat_spectrum().envelope(32)
        assert np.all(envelope[1:] == 1.0)

    def test_power_law_decays(self):
        envelope = power_law_spectrum(1.5).envelope(64)
        assert envelope[1] > envelope[21] > envelope[61]

    def test_band_limited_zero_outside_band(self):
        envelope = band_limited_spectrum(0.1, 0.2).envelope(200)
        freqs = np.zeros(200)
        freqs[1:199:2] = np.repeat(np.arange(1, 100), 2)[: len(freqs[1:199:2])]
        # Just verify that some coefficients are zero and some are one.
        assert set(np.unique(envelope)) <= {0.0, 1.0}
        assert envelope.sum() > 0
        assert (envelope == 0).sum() > 0

    def test_band_limited_short_series_fallback(self):
        envelope = band_limited_spectrum(0.4, 0.45).envelope(8)
        assert envelope.sum() > 0

    def test_peaked_concentrates_energy(self):
        envelope = peaked_spectrum(center=0.1, width=0.005).envelope(256)
        total = (envelope**2).sum()
        top = np.sort(envelope**2)[::-1][:10].sum()
        assert top / total > 0.8

    def test_validation(self):
        with pytest.raises(GenerationError):
            power_law_spectrum(-1.0)
        with pytest.raises(GenerationError):
            band_limited_spectrum(0.3, 0.2)
        with pytest.raises(GenerationError):
            peaked_spectrum(center=0.0)
        with pytest.raises(GenerationError):
            peaked_spectrum(width=0.0)

    def test_named_factory(self):
        assert named_spectrum("flat").describe() == "flat"
        assert "alpha=2" in named_spectrum("power_law", alpha=2).describe()
        with pytest.raises(GenerationError):
            named_spectrum("wavelet")
