"""Unit tests for Tomborg correlation-value distributions."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.tomborg.distributions import (
    BetaCorrelations,
    BimodalCorrelations,
    ConstantCorrelations,
    SparseSpikeCorrelations,
    UniformCorrelations,
    named_distribution,
)

ALL_DISTRIBUTIONS = [
    UniformCorrelations(),
    BetaCorrelations(),
    BimodalCorrelations(),
    ConstantCorrelations(0.4),
    SparseSpikeCorrelations(),
]


@pytest.mark.parametrize("distribution", ALL_DISTRIBUTIONS, ids=lambda d: d.describe())
class TestCommonContract:
    def test_samples_in_valid_range(self, distribution, rng):
        values = distribution.sample(5000, rng)
        assert values.shape == (5000,)
        assert np.all(values >= -1.0) and np.all(values <= 1.0)

    def test_describe_is_nonempty(self, distribution):
        assert distribution.describe()
        assert isinstance(distribution.describe(), str)

    def test_deterministic_given_seed(self, distribution):
        a = distribution.sample(100, np.random.default_rng(5))
        b = distribution.sample(100, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestSpecificShapes:
    def test_uniform_respects_bounds(self, rng):
        values = UniformCorrelations(0.2, 0.4).sample(1000, rng)
        assert values.min() >= 0.2 and values.max() <= 0.4

    def test_constant_is_constant(self, rng):
        assert np.all(ConstantCorrelations(0.3).sample(10, rng) == 0.3)

    def test_bimodal_has_two_modes(self, rng):
        values = BimodalCorrelations(
            weak_center=0.0, strong_center=0.9, strong_fraction=0.5, jitter=0.01
        ).sample(4000, rng)
        strong_fraction = np.mean(values > 0.5)
        assert 0.4 < strong_fraction < 0.6

    def test_sparse_spike_fraction(self, rng):
        values = SparseSpikeCorrelations(spike_fraction=0.1).sample(5000, rng)
        assert 0.05 < np.mean(values > 0.5) < 0.15

    def test_beta_skew_direction(self, rng):
        right_skewed = BetaCorrelations(a=2, b=8, low=0.0, high=1.0).sample(5000, rng)
        left_skewed = BetaCorrelations(a=8, b=2, low=0.0, high=1.0).sample(5000, rng)
        assert right_skewed.mean() < left_skewed.mean()


class TestValidation:
    def test_uniform_range_validation(self):
        with pytest.raises(GenerationError):
            UniformCorrelations(0.5, 0.2)
        with pytest.raises(GenerationError):
            UniformCorrelations(-2.0, 0.5)

    def test_beta_parameter_validation(self):
        with pytest.raises(GenerationError):
            BetaCorrelations(a=0.0)

    def test_bimodal_fraction_validation(self):
        with pytest.raises(GenerationError):
            BimodalCorrelations(strong_fraction=1.5)

    def test_spike_fraction_validation(self):
        with pytest.raises(GenerationError):
            SparseSpikeCorrelations(spike_fraction=-0.1)


class TestFactory:
    def test_known_names(self):
        for name in ("uniform", "beta", "bimodal", "constant", "sparse"):
            assert named_distribution(name).describe()

    def test_kwargs_forwarded(self):
        dist = named_distribution("constant", value=0.25)
        assert dist.value == 0.25

    def test_unknown_name(self):
        with pytest.raises(GenerationError):
            named_distribution("zipf")
