"""Unit tests for the Tomborg generator and its ground-truth bookkeeping."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.exceptions import GenerationError
from repro.tomborg.correlation_targets import block_correlation_matrix
from repro.tomborg.distributions import ConstantCorrelations, UniformCorrelations
from repro.tomborg.generator import (
    SegmentSpec,
    TomborgGenerator,
    quick_dataset,
)
from repro.tomborg.spectral import (
    band_limited_spectrum,
    flat_spectrum,
    peaked_spectrum,
    power_law_spectrum,
)
from repro.tomborg.validation import max_target_error, validate_dataset


class TestExactGeneration:
    @pytest.mark.parametrize(
        "spectrum",
        [flat_spectrum(), power_law_spectrum(1.0), band_limited_spectrum(0.0, 0.2)],
        ids=lambda s: s.describe(),
    )
    def test_realized_correlation_matches_target(self, spectrum):
        target = block_correlation_matrix([5, 5, 5], within=0.75, between=0.1)
        generator = TomborgGenerator(num_series=15, spectrum=spectrum, seed=3)
        dataset = generator.generate(1024, target)
        empirical = correlation_matrix(dataset.matrix.values)
        assert np.allclose(empirical, target, atol=1e-8)

    def test_explicit_target_is_recorded(self):
        target = block_correlation_matrix([4, 4], within=0.6, between=0.0)
        dataset = TomborgGenerator(num_series=8, seed=1).generate(512, target)
        assert np.allclose(dataset.segments[0].target, target)

    def test_distribution_target_is_resolved_and_valid(self):
        generator = TomborgGenerator(num_series=10, seed=2)
        dataset = generator.generate(768, UniformCorrelations(0.0, 0.6))
        assert dataset.segments[0].target.shape == (10, 10)
        assert max_target_error(dataset) < 1e-6

    def test_generated_series_are_zero_mean(self):
        dataset = TomborgGenerator(num_series=6, seed=4).generate(
            256, ConstantCorrelations(0.5)
        )
        assert np.allclose(dataset.matrix.values.mean(axis=1), 0.0, atol=1e-9)

    def test_scale_and_offset_do_not_change_correlations(self):
        target = block_correlation_matrix([3, 3], within=0.8, between=0.2)
        plain = TomborgGenerator(num_series=6, seed=5).generate(512, target)
        shifted = TomborgGenerator(
            num_series=6, seed=5, scale=12.0, offset=-40.0
        ).generate(512, target)
        assert np.allclose(
            correlation_matrix(plain.matrix.values),
            correlation_matrix(shifted.matrix.values),
            atol=1e-9,
        )
        assert shifted.matrix.values.mean() < plain.matrix.values.mean()

    def test_observation_noise_attenuates_correlations(self):
        target = block_correlation_matrix([6, 6], within=0.9, between=0.0)
        clean = TomborgGenerator(num_series=12, seed=6).generate(1024, target)
        noisy = TomborgGenerator(
            num_series=12, seed=6, observation_noise=1.0
        ).generate(1024, target)
        strong_pairs = np.abs(
            correlation_matrix(noisy.matrix.values)[0, 1]
        )
        assert strong_pairs < np.abs(correlation_matrix(clean.matrix.values)[0, 1])

    def test_inexact_mode_fluctuates_but_tracks_target(self):
        target = block_correlation_matrix([8, 8], within=0.7, between=0.1)
        generator = TomborgGenerator(num_series=16, seed=7, exact=False)
        dataset = generator.generate(4096, target)
        error = max_target_error(dataset)
        assert 1e-6 < error < 0.35

    def test_peaked_spectrum_produces_oscillatory_series(self):
        generator = TomborgGenerator(
            num_series=4, spectrum=peaked_spectrum(0.05, 0.005), seed=8
        )
        dataset = generator.generate(512, ConstantCorrelations(0.0))
        series = dataset.matrix.values[0]
        spectrum = np.abs(np.fft.rfft(series))
        peak_freq = np.argmax(spectrum[1:]) + 1
        assert abs(peak_freq / 512 - 0.05) < 0.02


class TestPiecewiseGeneration:
    def test_segments_have_independent_targets(self):
        strong = block_correlation_matrix([5, 5], within=0.9, between=0.1)
        weak = np.eye(10)
        generator = TomborgGenerator(num_series=10, seed=9)
        dataset = generator.generate_piecewise(
            [SegmentSpec(512, strong), SegmentSpec(512, weak)]
        )
        assert dataset.length == 1024
        assert len(dataset.segments) == 2
        for validation in validate_dataset(dataset):
            assert validation.max_abs_error < 1e-6

    def test_segment_lookup(self):
        generator = TomborgGenerator(num_series=4, seed=10)
        dataset = generator.generate_piecewise(
            [SegmentSpec(256, np.eye(4)), SegmentSpec(256, np.eye(4))]
        )
        assert dataset.segment_containing(0, 128).start == 0
        assert dataset.segment_containing(300, 400).start == 256
        assert dataset.segment_containing(200, 300) is None

    def test_target_edges(self):
        target = block_correlation_matrix([3, 3], within=0.9, between=0.0)
        dataset = TomborgGenerator(num_series=6, seed=11).generate(256, target)
        edges = dataset.target_edges(0.7)
        assert (0, 1) in edges and (3, 4) in edges
        assert (0, 3) not in edges

    def test_per_segment_spectrum_override(self):
        generator = TomborgGenerator(num_series=4, seed=12, spectrum=flat_spectrum())
        dataset = generator.generate_piecewise(
            [
                SegmentSpec(256, np.eye(4)),
                SegmentSpec(256, np.eye(4), spectrum=peaked_spectrum(0.1, 0.01)),
            ]
        )
        assert dataset.segments[0].spectrum_name == "flat"
        assert "peaked" in dataset.segments[1].spectrum_name

    def test_reproducible_given_seed(self):
        target = UniformCorrelations(0.0, 0.5)
        a = TomborgGenerator(num_series=6, seed=13).generate(256, target)
        b = TomborgGenerator(num_series=6, seed=13).generate(256, target)
        assert np.array_equal(a.matrix.values, b.matrix.values)

    def test_custom_series_ids(self):
        dataset = TomborgGenerator(num_series=3, seed=14).generate(
            128, np.eye(3), series_ids=["x", "y", "z"]
        )
        assert dataset.matrix.series_ids == ["x", "y", "z"]


class TestValidationErrors:
    def test_too_few_series(self):
        with pytest.raises(GenerationError):
            TomborgGenerator(num_series=1)

    def test_wrong_target_shape(self):
        generator = TomborgGenerator(num_series=4, seed=1)
        with pytest.raises(GenerationError):
            generator.generate(128, np.eye(5))

    def test_empty_segment_list(self):
        with pytest.raises(GenerationError):
            TomborgGenerator(num_series=4).generate_piecewise([])

    def test_segment_too_short(self):
        with pytest.raises(GenerationError):
            SegmentSpec(1, np.eye(3))

    def test_negative_noise(self):
        with pytest.raises(GenerationError):
            TomborgGenerator(num_series=4, observation_noise=-1.0)

    def test_zero_scale(self):
        with pytest.raises(GenerationError):
            TomborgGenerator(num_series=4, scale=0.0)

    def test_quick_dataset_helper(self):
        dataset = quick_dataset(5, 256, target_value=0.5, seed=15)
        assert dataset.num_series == 5
        assert dataset.length == 256
        assert max_target_error(dataset) < 1e-6
