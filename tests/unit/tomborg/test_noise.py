"""Unit tests for the noise/corruption models (repro.tomborg.noise)."""

import numpy as np
import pytest

from repro.core.correlation import pearson
from repro.exceptions import GenerationError
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.tomborg.generator import quick_dataset
from repro.tomborg.noise import (
    AR1Noise,
    HeteroscedasticNoise,
    ImpulseNoise,
    MissingData,
    WhiteNoise,
    apply_noise,
    expected_attenuation,
    named_noise,
)


@pytest.fixture
def clean_values(rng):
    """Two strongly correlated unit-variance series plus an independent one."""
    base = rng.standard_normal(4096)
    return np.stack([
        base,
        0.95 * base + np.sqrt(1 - 0.95**2) * rng.standard_normal(4096),
        rng.standard_normal(4096),
    ])


class TestWhiteNoise:
    def test_attenuates_correlation_as_predicted(self, clean_values, rng):
        sigma = 0.5
        noisy = WhiteNoise(sigma).apply(clean_values, np.random.default_rng(5))
        clean_corr = pearson(clean_values[0], clean_values[1])
        noisy_corr = pearson(noisy[0], noisy[1])
        predicted = clean_corr * expected_attenuation(sigma)
        assert noisy_corr == pytest.approx(predicted, abs=0.05)

    def test_zero_sigma_is_identity(self, clean_values):
        noisy = WhiteNoise(0.0).apply(clean_values, np.random.default_rng(5))
        assert np.allclose(noisy, clean_values)

    def test_negative_sigma_rejected(self):
        with pytest.raises(GenerationError):
            WhiteNoise(-0.1)


class TestAR1Noise:
    def test_noise_is_autocorrelated(self, clean_values):
        noisy = AR1Noise(sigma=1.0, coefficient=0.95).apply(
            np.zeros_like(clean_values), np.random.default_rng(6)
        )
        lag1 = pearson(noisy[0][:-1], noisy[0][1:])
        assert lag1 > 0.8

    def test_marginal_variance_close_to_sigma(self, clean_values):
        noisy = AR1Noise(sigma=0.5, coefficient=0.7).apply(
            np.zeros_like(clean_values), np.random.default_rng(7)
        )
        assert np.std(noisy) == pytest.approx(0.5, abs=0.1)

    def test_coefficient_validated(self):
        with pytest.raises(GenerationError):
            AR1Noise(coefficient=1.0)
        with pytest.raises(GenerationError):
            AR1Noise(sigma=-1.0)


class TestHeteroscedasticNoise:
    def test_per_series_noise_levels_differ(self, rng):
        values = np.zeros((16, 2048))
        noisy = HeteroscedasticNoise(0.05, 1.0).apply(values, np.random.default_rng(8))
        stds = noisy.std(axis=1)
        assert stds.max() > 2 * stds.min()
        assert stds.min() < 0.6 < stds.max()

    def test_range_validated(self):
        with pytest.raises(GenerationError):
            HeteroscedasticNoise(0.5, 0.1)


class TestImpulseNoise:
    def test_corrupts_expected_fraction(self, clean_values):
        noisy = ImpulseNoise(probability=0.05, magnitude=10.0).apply(
            clean_values, np.random.default_rng(9)
        )
        changed = np.mean(noisy != clean_values)
        assert changed == pytest.approx(0.05, abs=0.01)

    def test_input_not_modified(self, clean_values):
        original = clean_values.copy()
        ImpulseNoise(probability=0.1).apply(clean_values, np.random.default_rng(10))
        assert np.array_equal(clean_values, original)

    def test_probability_validated(self):
        with pytest.raises(GenerationError):
            ImpulseNoise(probability=1.5)


class TestMissingData:
    def test_interpolation_leaves_no_nans(self, clean_values):
        noisy = MissingData(probability=0.1, fill="interpolate").apply(
            clean_values, np.random.default_rng(11)
        )
        assert np.all(np.isfinite(noisy))
        # Interpolated data stays close to the original.
        assert np.corrcoef(noisy[0], clean_values[0])[0, 1] > 0.9

    def test_nan_fill_leaves_gaps(self, clean_values):
        noisy = MissingData(probability=0.1, fill="nan").apply(
            clean_values, np.random.default_rng(12)
        )
        missing_fraction = np.mean(~np.isfinite(noisy))
        assert missing_fraction == pytest.approx(0.1, abs=0.02)

    def test_fill_mode_validated(self):
        with pytest.raises(GenerationError):
            MissingData(fill="zero")


class TestApplyNoiseAndFactory:
    def test_apply_to_matrix_preserves_metadata(self, clean_values):
        matrix = TimeSeriesMatrix(clean_values, series_ids=["a", "b", "c"])
        noisy = apply_noise(matrix, WhiteNoise(0.2), seed=1)
        assert isinstance(noisy, TimeSeriesMatrix)
        assert noisy.series_ids == ["a", "b", "c"]
        assert noisy.shape == matrix.shape
        assert not np.allclose(noisy.values, matrix.values)

    def test_apply_to_dataset_keeps_ground_truth(self):
        dataset = quick_dataset(num_series=6, length=512, target_value=0.7, seed=3)
        noisy = apply_noise(dataset, WhiteNoise(0.3), seed=2)
        assert len(noisy.segments) == len(dataset.segments)
        assert np.array_equal(noisy.segments[0].target, dataset.segments[0].target)
        assert not np.allclose(noisy.matrix.values, dataset.matrix.values)

    def test_apply_is_reproducible_with_seed(self, clean_values):
        matrix = TimeSeriesMatrix(clean_values)
        first = apply_noise(matrix, WhiteNoise(0.2), seed=42)
        second = apply_noise(matrix, WhiteNoise(0.2), seed=42)
        assert np.array_equal(first.values, second.values)

    def test_apply_rejects_other_types(self):
        with pytest.raises(GenerationError):
            apply_noise([[1, 2], [3, 4]], WhiteNoise(0.1))

    def test_named_noise_factory(self):
        assert isinstance(named_noise("white", sigma=0.2), WhiteNoise)
        assert isinstance(named_noise("ar1"), AR1Noise)
        assert isinstance(named_noise("missing"), MissingData)
        with pytest.raises(GenerationError):
            named_noise("salt-and-pepper")

    def test_expected_attenuation_validation(self):
        assert expected_attenuation(0.0) == pytest.approx(1.0)
        assert expected_attenuation(1.0) == pytest.approx(0.5)
        with pytest.raises(GenerationError):
            expected_attenuation(-1.0)
        with pytest.raises(GenerationError):
            expected_attenuation(0.5, signal_variance=0.0)
