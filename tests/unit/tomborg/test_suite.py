"""Unit tests for the named robustness suite (repro.tomborg.suite)."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.dangoron import DangoronEngine
from repro.exceptions import GenerationError
from repro.tomborg.noise import WhiteNoise
from repro.tomborg.suite import DEFAULT_SUITE, SuiteCase, case_by_name, default_suite


class TestSuiteDefinition:
    def test_default_suite_names_are_unique(self):
        names = [case.name for case in DEFAULT_SUITE]
        assert len(names) == len(set(names))
        assert len(names) >= 8

    def test_default_suite_copy_is_independent(self):
        suite = default_suite()
        suite.pop()
        assert len(suite) == len(DEFAULT_SUITE) - 1

    def test_case_lookup(self):
        case = case_by_name("bimodal_reference")
        assert case.distribution == "bimodal"
        with pytest.raises(GenerationError):
            case_by_name("does-not-exist")

    def test_describe_mentions_components(self):
        case = case_by_name("bimodal_white_noise")
        text = case.describe()
        assert "bimodal" in text and "white" in text

    def test_invalid_segments_rejected(self):
        with pytest.raises(GenerationError):
            SuiteCase(name="bad", distribution="bimodal", spectrum="flat", num_segments=0)

    def test_noise_model_construction(self):
        clean = case_by_name("bimodal_reference")
        assert clean.noise_model() is None
        noisy = case_by_name("bimodal_white_noise")
        assert isinstance(noisy.noise_model(), WhiteNoise)


class TestGeneration:
    def test_generate_produces_aligned_query(self):
        case = case_by_name("bimodal_reference")
        dataset, query = case.generate(
            num_series=12, segment_columns=256, basic_window_size=32, seed=5
        )
        assert dataset.num_series == 12
        assert dataset.length == 2 * 256
        assert query.end <= dataset.length
        assert query.window % 32 == 0
        assert query.step == 32

    def test_generation_is_reproducible(self):
        case = case_by_name("sparse_easy")
        first, _ = case.generate(num_series=10, segment_columns=128, seed=9)
        second, _ = case.generate(num_series=10, segment_columns=128, seed=9)
        assert np.array_equal(first.matrix.values, second.matrix.values)

    def test_noisy_case_differs_from_clean(self):
        clean_case = case_by_name("bimodal_reference")
        noisy_case = case_by_name("bimodal_white_noise")
        clean, _ = clean_case.generate(num_series=10, segment_columns=128, seed=9)
        noisy, _ = noisy_case.generate(num_series=10, segment_columns=128, seed=9)
        assert not np.allclose(clean.matrix.values, noisy.matrix.values)

    def test_parameters_validated(self):
        case = case_by_name("bimodal_reference")
        with pytest.raises(GenerationError):
            case.generate(num_series=1)
        with pytest.raises(GenerationError):
            case.generate(segment_columns=16, basic_window_size=32)

    def test_engines_run_on_generated_case(self):
        """Every engine can answer the suite's query; Dangoron stays exact on edges."""
        case = case_by_name("sparse_easy")
        dataset, query = case.generate(num_series=10, segment_columns=256, seed=11)
        exact = BruteForceEngine().run(dataset.matrix, query)
        pruned = DangoronEngine(basic_window_size=32).run(dataset.matrix, query)
        assert exact.num_windows == pruned.num_windows == query.num_windows
        from repro.analysis.accuracy import compare_results

        assert compare_results(pruned, exact).precision == pytest.approx(1.0)
