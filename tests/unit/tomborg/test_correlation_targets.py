"""Unit tests for target correlation-matrix construction and repair."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.tomborg.correlation_targets import (
    block_correlation_matrix,
    factor_correlation_matrix,
    is_valid_correlation_matrix,
    nearest_correlation_matrix,
    random_correlation_from_eigenvalues,
    random_correlation_matrix,
)
from repro.tomborg.distributions import UniformCorrelations


class TestValidityCheck:
    def test_identity_is_valid(self):
        assert is_valid_correlation_matrix(np.eye(5))

    def test_asymmetric_invalid(self):
        matrix = np.eye(3)
        matrix[0, 1] = 0.5
        assert not is_valid_correlation_matrix(matrix)

    def test_non_unit_diagonal_invalid(self):
        matrix = np.eye(3) * 2.0
        assert not is_valid_correlation_matrix(matrix)

    def test_indefinite_invalid(self):
        matrix = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        assert not is_valid_correlation_matrix(matrix)

    def test_non_square_invalid(self):
        assert not is_valid_correlation_matrix(np.zeros((2, 3)))


class TestNearestCorrelationMatrix:
    def test_repairs_indefinite_matrix(self):
        matrix = np.array(
            [[1.0, 0.9, -0.9], [0.9, 1.0, 0.9], [-0.9, 0.9, 1.0]]
        )
        repaired = nearest_correlation_matrix(matrix)
        assert is_valid_correlation_matrix(repaired, tolerance=1e-6)

    def test_valid_matrix_unchanged(self):
        matrix = np.array([[1.0, 0.3], [0.3, 1.0]])
        repaired = nearest_correlation_matrix(matrix)
        assert np.allclose(repaired, matrix, atol=1e-8)

    def test_stays_close_to_input(self, rng):
        raw = random_correlation_matrix(
            8, UniformCorrelations(-0.5, 0.9), rng, repair=False
        )
        repaired = nearest_correlation_matrix(raw)
        assert is_valid_correlation_matrix(repaired, tolerance=1e-6)
        assert np.max(np.abs(repaired - raw)) < 0.6

    def test_rejects_non_square(self):
        with pytest.raises(GenerationError):
            nearest_correlation_matrix(np.zeros((2, 3)))


class TestRandomCorrelationMatrix:
    def test_output_is_valid(self, rng):
        matrix = random_correlation_matrix(12, UniformCorrelations(-0.3, 0.8), rng)
        assert matrix.shape == (12, 12)
        assert is_valid_correlation_matrix(matrix, tolerance=1e-6)

    def test_unrepaired_draw_keeps_samples(self, rng):
        matrix = random_correlation_matrix(
            6, UniformCorrelations(0.2, 0.2), rng, repair=False
        )
        off_diagonal = matrix[np.triu_indices(6, k=1)]
        assert np.allclose(off_diagonal, 0.2)

    def test_too_few_series_rejected(self, rng):
        with pytest.raises(GenerationError):
            random_correlation_matrix(1, UniformCorrelations(), rng)


class TestStructuredTargets:
    def test_block_matrix_structure(self):
        matrix = block_correlation_matrix([3, 2], within=0.7, between=0.1)
        assert matrix.shape == (5, 5)
        assert matrix[0, 1] == pytest.approx(0.7, abs=1e-6) or is_valid_correlation_matrix(matrix)
        assert matrix[0, 4] <= 0.2
        assert is_valid_correlation_matrix(matrix, tolerance=1e-6)

    def test_block_matrix_validation(self):
        with pytest.raises(GenerationError):
            block_correlation_matrix([])
        with pytest.raises(GenerationError):
            block_correlation_matrix([2, 3], within=1.5)

    def test_factor_model_valid_and_low_rank_structure(self, rng):
        matrix = factor_correlation_matrix(15, num_factors=2, loading_scale=0.8, rng=rng)
        assert is_valid_correlation_matrix(matrix, tolerance=1e-8)
        eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        # Two factors should dominate the spectrum.
        assert eigenvalues[1] > eigenvalues[3]

    def test_factor_model_validation(self, rng):
        with pytest.raises(GenerationError):
            factor_correlation_matrix(2, num_factors=0)
        with pytest.raises(GenerationError):
            factor_correlation_matrix(2, loading_scale=1.5)

    def test_random_from_eigenvalues(self, rng):
        matrix = random_correlation_from_eigenvalues([3.0, 1.0, 0.5, 0.5], rng)
        assert is_valid_correlation_matrix(matrix, tolerance=1e-8)
        assert matrix.shape == (4, 4)

    def test_random_from_eigenvalues_validation(self, rng):
        with pytest.raises(GenerationError):
            random_correlation_from_eigenvalues([1.0], rng)
        with pytest.raises(GenerationError):
            random_correlation_from_eigenvalues([-1.0, 2.0], rng)
