"""Unit tests for Tomborg output validation helpers."""

import numpy as np
import pytest

from repro.exceptions import GenerationError
from repro.tomborg.correlation_targets import block_correlation_matrix
from repro.tomborg.generator import SegmentSpec, TomborgGenerator
from repro.tomborg.validation import (
    empirical_correlation,
    max_target_error,
    validate_dataset,
)


@pytest.fixture(scope="module")
def dataset():
    generator = TomborgGenerator(num_series=8, seed=21)
    strong = block_correlation_matrix([4, 4], within=0.85, between=0.05)
    return generator.generate_piecewise(
        [SegmentSpec(384, strong), SegmentSpec(384, np.eye(8))]
    )


class TestValidation:
    def test_per_segment_reports(self, dataset):
        reports = validate_dataset(dataset, edge_threshold=0.7)
        assert len(reports) == 2
        for report in reports:
            assert report.max_abs_error < 1e-6
            assert report.rmse <= report.max_abs_error + 1e-12
            assert report.edge_jaccard == pytest.approx(1.0)
            assert set(report.as_dict()) >= {"segment", "max_abs_error", "edge_jaccard"}

    def test_max_target_error(self, dataset):
        assert max_target_error(dataset) < 1e-6

    def test_empirical_correlation_range_validation(self, dataset):
        with pytest.raises(GenerationError):
            empirical_correlation(dataset, -1, 100)
        with pytest.raises(GenerationError):
            empirical_correlation(dataset, 0, dataset.length + 1)
        with pytest.raises(GenerationError):
            empirical_correlation(dataset, 100, 100)

    def test_empirical_correlation_shape(self, dataset):
        corr = empirical_correlation(dataset, 0, 384)
        assert corr.shape == (8, 8)
        assert np.allclose(np.diag(corr), 1.0)

    def test_detects_mismatched_ground_truth(self, dataset):
        # Corrupt the recorded target and check the error is detected.
        corrupted = dataset.segments[0]
        original = corrupted.target.copy()
        corrupted.target = np.eye(8)
        try:
            reports = validate_dataset(dataset)
            assert reports[0].max_abs_error > 0.5
        finally:
            corrupted.target = original
