"""CLI tests for out-of-core execution (``--memory-budget``)."""

import numpy as np
import pytest

from repro.cli import main, parse_byte_size
from repro.exceptions import ReproError
from repro.storage.chunk_store import ChunkStore


@pytest.fixture
def npz_dataset(tmp_path):
    rng = np.random.default_rng(31)
    base = rng.standard_normal(512)
    values = np.stack([base + 0.3 * rng.standard_normal(512) for _ in range(6)])
    store = ChunkStore(num_series=6, chunk_columns=100)
    store.append(values)
    return str(store.save(tmp_path / "demo.data.npz"))


def _query(path, *extra):
    return ["query", path, "--window", "128", "--step", "64",
            "--basic-window", "16", "--threshold", "0.5", *extra]


class TestParseByteSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1048576", 1048576),
            ("64k", 64 * 1024),
            ("64KB", 64 * 1024),
            ("2MiB", 2 * 1024**2),
            ("1g", 1024**3),
            ("1.5kb", 1536),
            (" 8 mb ", 8 * 1024**2),
        ],
    )
    def test_accepted(self, text, expected):
        assert parse_byte_size(text) == expected

    @pytest.mark.parametrize("text", ["", "huge", "12q", "-4k", "0"])
    def test_rejected(self, text):
        with pytest.raises(ReproError):
            parse_byte_size(text)


class TestQueryMemoryBudget:
    def test_budgeted_npz_query_matches_unbudgeted(self, npz_dataset, capsys):
        assert main(_query(npz_dataset)) == 0
        dense_out = capsys.readouterr().out
        assert main(_query(npz_dataset, "--memory-budget", "3k")) == 0
        tiled_out = capsys.readouterr().out
        assert "build=tiled(budget=3072B)" in tiled_out
        # The per-window tables (everything but the plan/timing lines) agree
        # exactly — out-of-core execution is bit-identical.
        def rows(text):
            return [line for line in text.splitlines()
                    if "|" in line and "seconds" not in line]
        assert rows(dense_out) == rows(tiled_out)

    def test_large_budget_stays_dense(self, npz_dataset, capsys):
        assert main(_query(npz_dataset, "--memory-budget", "1g")) == 0
        assert "build=tiled" not in capsys.readouterr().out

    def test_topk_accepts_budget(self, npz_dataset):
        assert main(["query", npz_dataset, "--mode", "topk", "--window", "128",
                     "--step", "64", "--basic-window", "16", "--k", "3",
                     "--memory-budget", "3k"]) == 0

    def test_lagged_accepts_budget_and_matches_dense(self, npz_dataset, capsys):
        lagged = ["query", npz_dataset, "--mode", "lagged", "--window", "128",
                  "--step", "64", "--max-lag", "4"]
        assert main(lagged) == 0
        dense_out = capsys.readouterr().out
        # 6 series x 128-column window = 6144 bytes per buffer; 8k streams
        # (the full 6 x 512 matrix would need 24576 bytes).
        assert main([*lagged, "--memory-budget", "8k"]) == 0
        streamed_out = capsys.readouterr().out
        assert "build=tiled(budget=8192B)" in streamed_out

        def rows(text):
            return [line for line in text.splitlines()
                    if "|" in line and "seconds" not in line]
        assert rows(dense_out) == rows(streamed_out)

    def test_lagged_budget_below_one_window_fails_cleanly(self, npz_dataset, capsys):
        code = main(["query", npz_dataset, "--mode", "lagged", "--window", "128",
                     "--step", "64", "--memory-budget", "3k"])
        assert code == 1
        err = capsys.readouterr().err
        assert "lagged" in err and "tiled" in err and "window buffer" in err

    def test_unparseable_budget_fails_cleanly(self, npz_dataset, capsys):
        assert main(_query(npz_dataset, "--memory-budget", "lots")) == 1
        assert "byte size" in capsys.readouterr().err


class TestServeMemoryBudget:
    def test_create_server_threads_budget(self, tmp_path):
        from repro.cli import build_parser, create_server
        from repro.storage.catalog import Catalog

        catalog = Catalog(tmp_path / "catalog")
        store = ChunkStore(num_series=3, chunk_columns=32)
        store.append(np.random.default_rng(0).standard_normal((3, 128)))
        catalog.add_dataset("demo", store)
        args = build_parser().parse_args(
            ["serve", "--catalog", str(tmp_path / "catalog"), "--port", "0",
             "--memory-budget", "2MB"]
        )
        server = create_server(args)
        try:
            assert server.service.memory_budget == 2 * 1024**2
        finally:
            server.stop()
