"""CLI input handling: .npz chunk stores, and errors that name the path.

Regression tests for the fix where a missing or corrupt query input escaped
as a raw ``FileNotFoundError``/zip traceback instead of the CLI's normal
``error: ...`` line; plus the ``repro serve`` argument wiring.
"""

import numpy as np
import pytest

from repro.cli import build_parser, create_server, main
from repro.storage.chunk_store import ChunkStore


@pytest.fixture
def npz_dataset(tmp_path, rng):
    store = ChunkStore(6, chunk_columns=64, series_ids=[f"q{i}" for i in range(6)])
    store.append(rng.normal(size=(6, 128)))
    path = tmp_path / "demo.data.npz"
    store.save(path)
    return path


class TestQueryInputs:
    QUERY_ARGS = ["--window", "32", "--step", "16", "--threshold", "0.3"]

    def test_npz_chunk_store_is_queryable(self, npz_dataset, capsys):
        assert main(["query", str(npz_dataset), *self.QUERY_ARGS]) == 0
        out = capsys.readouterr().out
        assert "dangoron" in out and "window" in out

    def test_missing_csv_reports_error_with_path(self, tmp_path, capsys):
        missing = tmp_path / "nope.csv"
        assert main(["query", str(missing), *self.QUERY_ARGS]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(missing) in err

    def test_missing_npz_reports_error_with_path(self, tmp_path, capsys):
        missing = tmp_path / "nope.npz"
        assert main(["query", str(missing), *self.QUERY_ARGS]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(missing) in err

    def test_corrupt_npz_reports_error_with_path(self, tmp_path, capsys):
        garbage = tmp_path / "broken.npz"
        garbage.write_bytes(b"certainly not a zip archive")
        assert main(["query", str(garbage), *self.QUERY_ARGS]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(garbage) in err

    def test_binary_garbage_csv_reports_error_with_path(self, tmp_path, capsys):
        garbage = tmp_path / "broken.csv"
        garbage.write_bytes(bytes(range(256)))
        assert main(["query", str(garbage), *self.QUERY_ARGS]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert str(garbage) in err

    def test_empty_npz_store_reports_error(self, tmp_path, capsys):
        path = tmp_path / "empty.data.npz"
        ChunkStore(3, chunk_columns=8).save(path)
        assert main(["query", str(path), *self.QUERY_ARGS]) == 1
        assert "no columns" in capsys.readouterr().err


class TestServeWiring:
    def test_create_server_binds_ephemeral_port(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--catalog", str(tmp_path), "--port", "0"]
        )
        server = create_server(args)
        try:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"
        finally:
            server.stop()

    def test_serve_rejects_bad_workers(self, tmp_path, capsys):
        assert main(["serve", "--catalog", str(tmp_path), "--workers", "0"]) == 1
        assert "--workers" in capsys.readouterr().err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--catalog", "/data/cat"])
        assert (args.host, args.port, args.engine) == ("127.0.0.1", 8350, "dangoron")
        assert args.basic_window == 32 and args.workers is None
