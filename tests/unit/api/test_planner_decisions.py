"""Golden table of planner decisions: every choice and its stated reason.

Each scenario configures a planner + workload, and the table pins the full
decision — execution, workers, build, budget, the ordered reason list and
the rendered ``describe()`` line including the cost ranking.  The cost
model is the committed fixture calibration (deterministic by construction;
``conftest.py`` pins ``REPRO_COST_CALIBRATION=off`` repo-wide), injected
explicitly here so the table holds even if the suite-level pin moves.

The comparison is one dict against one dict, so any drift shows the *whole*
diff at once: a changed worker count, a reworded reason and a shifted cost
line all surface in a single failure, not one assert at a time.  If a
change here is intentional, update the table — that review moment is the
point of the test.
"""

import numpy as np
import pytest

from repro.api import (
    CostModel,
    LaggedQuery,
    QueryPlanner,
    ThresholdQuery,
    TopKQuery,
)
from repro.api.planner import ExecutionPlan
from repro.core.basic_window import BasicWindowLayout
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix

LENGTH = 256
WINDOW = 64
STEP = 32
BASIC = 16
N = 8
DENSE_BYTES = N * LENGTH * 8


def _matrix(num_series=N, length=LENGTH, seed=7):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal(length)
    values = 0.6 * base + rng.standard_normal((num_series, length))
    return TimeSeriesMatrix(values)


def _threshold(**overrides):
    spec = dict(start=0, end=LENGTH, window=WINDOW, step=STEP, threshold=0.4)
    spec.update(overrides)
    return ThresholdQuery(**spec)


def _planner(**overrides):
    config = dict(basic_window_size=BASIC, cost_model=CostModel.fixture())
    config.update(overrides)
    return QueryPlanner(**config)


def _chained_setup():
    """The append-chain recipe (mirrors docs/scaling.md): 16 of 18 windows
    cached, two arriving via O(Δ) extension."""
    rng = np.random.default_rng(0)
    cache = SketchCache()
    history = TimeSeriesMatrix(rng.standard_normal((8, 512)))
    cache.get_or_build(history, BasicWindowLayout.for_range(0, 512, 32))
    delta = rng.standard_normal((8, 64))
    fingerprint = cache.extend_chain(history, delta)
    grown = TimeSeriesMatrix(np.concatenate([history.values, delta], axis=1))
    cache.adopt_fingerprint(grown, fingerprint)
    planner = _planner(basic_window_size=32, sketch_cache=cache)
    query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
    return planner, grown, query


def _scenarios():
    """name -> (planner, matrix, query): the workloads the table pins."""
    scenarios = {
        # The no-choice baseline: nothing configured, one candidate, and the
        # historic single-candidate plan string (no cost suffix).
        "threshold-cold-serial": (
            _planner(),
            _matrix(),
            _threshold(),
        ),
        # Workers configured and every sharding gate passes: the ranking
        # prices serial vs half vs full worker count.
        "threshold-sharded-4w": (
            _planner(workers=4, parallel_min_pairs=1, parallel_mode="thread"),
            _matrix(),
            _threshold(),
        ),
        # Workers configured but the pair count is under the default floor:
        # a policy decline, named on the plan.
        "threshold-declined-pair-floor": (
            _planner(workers=4),
            _matrix(),
            _threshold(),
        ),
        # Unseeded random pivots cannot shard (each shard would draw its own
        # pivots): the engine gate declines.
        "threshold-declined-engine-gate": (
            _planner(
                engine_options={
                    "use_horizontal_pruning": True,
                    "pivot_strategy": "random",
                },
                workers=2,
                parallel_min_pairs=1,
            ),
            _matrix(),
            _threshold(),
        ),
        # Unaligned windows under a worker request (TSUBASA plans a layout
        # even there, arming the alignment gate).
        "threshold-declined-unaligned": (
            _planner(
                engine="tsubasa", workers=2, parallel_min_pairs=1,
                parallel_mode="thread",
            ),
            _matrix(),
            _threshold(window=50, step=25),
        ),
        # Budget below the data: the ranking picks the tile size (full
        # budget beats half — fewer tiles, less overhead).
        "threshold-tiled-budget": (
            _planner(memory_budget=DENSE_BYTES // 2),
            _matrix(),
            _threshold(),
        ),
        # Budget the data fits in: dense, with the fit stated.
        "threshold-budget-fits": (
            _planner(memory_budget=DENSE_BYTES),
            _matrix(),
            _threshold(),
        ),
        # Pruning reads raw values: a configured budget falls back to dense
        # and the plan says why.
        "threshold-pruned-stays-dense": (
            _planner(
                engine_options={
                    "use_horizontal_pruning": True,
                    "pivot_strategy": "kcenter",
                    "num_pivots": 2,
                },
                memory_budget=DENSE_BYTES // 2,
            ),
            _matrix(),
            _threshold(),
        ),
        # Both axes constrained at once: the engine gate declines sharding
        # AND pruning pins the build dense — both reasons must render.
        "threshold-both-axes-declined": (
            _planner(
                engine_options={
                    "use_horizontal_pruning": True,
                    "pivot_strategy": "random",
                },
                workers=2,
                parallel_min_pairs=1,
                memory_budget=DENSE_BYTES // 2,
            ),
            _matrix(),
            _threshold(),
        ),
        # Top-k shards without an engine gate (its path accepts subsets).
        "topk-sharded-2w": (
            _planner(workers=2, parallel_min_pairs=1, parallel_mode="thread"),
            _matrix(),
            TopKQuery(start=0, end=LENGTH, window=WINDOW, step=STEP, k=5),
        ),
        # Lagged under a budget below the data: streamed window buffers
        # ("tiled"), the only feasible build.
        "lagged-streamed-buffers": (
            _planner(memory_budget=DENSE_BYTES // 2),
            _matrix(),
            LaggedQuery(
                start=0, end=LENGTH, window=WINDOW, step=STEP, max_lag=4,
                threshold=0.4,
            ),
        ),
        # A chained cache prefix: incremental beats dense on cost and the
        # reason names the covered prefix.
        "incremental-chained-prefix": _chained_setup(),
    }
    return scenarios


def _snapshot(plan):
    return {
        "execution": plan.execution,
        "workers": plan.workers,
        "sketch_build": plan.sketch_build,
        "memory_budget": plan.memory_budget,
        "reasons": plan.reasons(),
        "cost_source": plan.cost_source,
        "describe": plan.describe(),
    }


#: The pinned decisions.  Costs are exact: fixture-calibration arithmetic
#: over integer workload sizes is deterministic on any IEEE-754 machine.
GOLDEN = {
    "threshold-cold-serial": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=16] "
            "sketch=b=16 x 16 exec=serial"
        ),
    },
    "threshold-sharded-4w": {
        "execution": "sharded",
        "workers": 4,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=16] "
            "sketch=b=16 x 16 exec=sharded(workers=4) "
            "cost: sharded(4w)=7.37e-05s < sharded(2w)=0.000121s "
            "< serial=0.000206s, source=calibration"
        ),
    },
    "threshold-declined-pair-floor": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (
            ("execution", "pair count below parallel_min_pairs=4096"),
        ),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=16] "
            "sketch=b=16 x 16 exec=serial "
            "(pair count below parallel_min_pairs=4096)"
        ),
    },
    "threshold-declined-engine-gate": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (
            (
                "execution",
                "engine dangoron[temporal+horizontal(4), b<=16] does not "
                "support pair subsets",
            ),
        ),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal+horizontal(4), b<=16] "
            "sketch=b=16 x 16 exec=serial (engine "
            "dangoron[temporal+horizontal(4), b<=16] does not support pair "
            "subsets)"
        ),
    },
    "threshold-declined-unaligned": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (("execution", "windows not basic-window aligned"),),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=tsubasa[b=16] sketch=b=16 x 16 "
            "exec=serial (windows not basic-window aligned)"
        ),
    },
    "threshold-tiled-budget": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "tiled",
        "memory_budget": DENSE_BYTES // 2,
        "reasons": (),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=16] "
            "sketch=b=16 x 16 exec=serial build=tiled(budget=8192B) "
            "cost: tiled@8192B=0.000225s < tiled@4096B=0.000227s, "
            "source=calibration"
        ),
    },
    "threshold-budget-fits": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": DENSE_BYTES,
        "reasons": (("build", "raw data fits the budget"),),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=16] "
            "sketch=b=16 x 16 exec=serial build=dense "
            "(raw data fits the budget)"
        ),
    },
    "threshold-pruned-stays-dense": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": DENSE_BYTES // 2,
        "reasons": (("build", "engine needs raw values (pivot selection)"),),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal+horizontal(2), b<=16] "
            "sketch=b=16 x 16 exec=serial build=dense "
            "(engine needs raw values (pivot selection))"
        ),
    },
    "threshold-both-axes-declined": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "dense",
        "memory_budget": DENSE_BYTES // 2,
        "reasons": (
            (
                "execution",
                "engine dangoron[temporal+horizontal(4), b<=16] does not "
                "support pair subsets",
            ),
            ("build", "engine needs raw values (pivot selection)"),
        ),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal+horizontal(4), b<=16] "
            "sketch=b=16 x 16 exec=serial (engine "
            "dangoron[temporal+horizontal(4), b<=16] does not support pair "
            "subsets) build=dense (engine needs raw values "
            "(pivot selection))"
        ),
    },
    "topk-sharded-2w": {
        "execution": "sharded",
        "workers": 2,
        "sketch_build": "dense",
        "memory_budget": None,
        "reasons": (),
        "cost_source": "calibration",
        "describe": (
            "plan[topk] engine=- sketch=b=16 x 16 exec=sharded(workers=2) "
            "cost: sharded(2w)=0.000121s < serial=0.000206s, "
            "source=calibration"
        ),
    },
    "lagged-streamed-buffers": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "tiled",
        "memory_budget": DENSE_BYTES // 2,
        "reasons": (),
        "cost_source": "calibration",
        "describe": (
            "plan[lagged] engine=- sketch=raw exec=serial "
            "build=tiled(budget=8192B)"
        ),
    },
    "incremental-chained-prefix": {
        "execution": "serial",
        "workers": 1,
        "sketch_build": "incremental",
        "memory_budget": None,
        "reasons": (
            ("build", "chained sketch covers 16/18 basic windows"),
        ),
        "cost_source": "calibration",
        "describe": (
            "plan[threshold] engine=dangoron[temporal, b<=32] "
            "sketch=b=32 x 18 exec=serial "
            "build=incremental(chained sketch covers 16/18 basic windows) "
            "cost: incremental=0.000423s < dense=0.000443s, "
            "source=calibration"
        ),
    },
}


def test_golden_table_covers_every_scenario():
    assert set(_scenarios()) == set(GOLDEN)


def test_all_plan_decisions_match_the_golden_table():
    actual = {}
    for name, (planner, matrix, query) in _scenarios().items():
        actual[name] = _snapshot(planner.plan(matrix, query))
    assert actual == GOLDEN


# --------------------------------------------------------------- reason list
def test_reasons_renders_execution_then_build_in_order():
    """The unified reason list: one ordered source for describe().

    Historically ``execution_reason`` and ``build_reason`` were rendered by
    separate ad-hoc branches; :meth:`ExecutionPlan.reasons` is now the
    single ordered source, so neither can shadow or drop the other.
    """
    plan = ExecutionPlan(
        query=_threshold(),
        kind="threshold",
        execution_reason="why serial",
        build_reason="why dense",
    )
    assert plan.reasons() == (
        ("execution", "why serial"),
        ("build", "why dense"),
    )
    description = plan.describe()
    assert description.index("why serial") < description.index("why dense")

    assert ExecutionPlan(query=_threshold(), kind="threshold").reasons() == ()
    only_build = ExecutionPlan(
        query=_threshold(), kind="threshold", build_reason="why dense"
    )
    assert only_build.reasons() == (("build", "why dense"),)


# ------------------------------------------------------------- feedback flips
def test_feedback_overrides_calibration_once_every_candidate_is_observed():
    """Observed runtimes flip the decision — and the source says so.

    The fixture calibration prefers sharded(4w) for this workload; after
    every candidate has MIN_FEEDBACK_SAMPLES observations showing serial is
    actually fastest on "this machine", the planner must choose serial and
    attribute the choice to feedback.
    """
    planner = _planner(
        workers=4, parallel_min_pairs=1, parallel_mode="thread"
    )
    matrix = _matrix()
    query = _threshold()

    first = planner.plan(matrix, query)
    assert first.execution == "sharded" and first.cost_source == "calibration"

    walls = {"serial": 0.001, "sharded@2": 0.010, "sharded@4": 0.020}
    for candidate in planner.candidate_plans(matrix, query):
        exec_tag = (
            "serial"
            if candidate.execution == "serial"
            else f"sharded@{candidate.workers}"
        )
        for _ in range(3):
            planner.sketch_cache.feedback.record(
                candidate.cost_key, walls[exec_tag]
            )

    relearned = planner.plan(matrix, query)
    assert relearned.execution == "serial"
    assert relearned.cost_source == "feedback(n=3)"
    assert "source=feedback(n=3)" in relearned.describe()


def test_partial_feedback_coverage_stays_on_calibration():
    """An observed mean must never be ranked against a calibrated guess."""
    planner = _planner(
        workers=4, parallel_min_pairs=1, parallel_mode="thread"
    )
    matrix = _matrix()
    query = _threshold()
    candidates = planner.candidate_plans(matrix, query)
    # Observe only one candidate, heavily.
    for _ in range(10):
        planner.sketch_cache.feedback.record(candidates[-1].cost_key, 1e-9)
    plan = planner.plan(matrix, query)
    assert plan.cost_source == "calibration"
    assert plan.execution == "sharded" and plan.workers == 4


def test_candidate_plans_rank_cheapest_first_and_agree_with_plan():
    planner = _planner(
        workers=4, parallel_min_pairs=1, parallel_mode="thread"
    )
    matrix = _matrix()
    candidates = planner.candidate_plans(matrix, _threshold())
    costs = [plan.predicted_seconds for plan in candidates]
    assert costs == sorted(costs)
    assert candidates[0].describe() == planner.plan(matrix, _threshold()).describe()
    # Only the chosen plan carries the rendered ranking.
    assert candidates[0].cost_detail is not None
    assert all(plan.cost_detail is None for plan in candidates[1:])
