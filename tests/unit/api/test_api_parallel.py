"""Planner/session wiring of sharded parallel execution (``workers=N``)."""

import numpy as np
import pytest

from repro.api import CorrelationSession, QueryPlanner, ThresholdQuery
from repro.api.planner import EXECUTION_SERIAL, EXECUTION_SHARDED
from repro.core.dangoron import DangoronEngine
from repro.exceptions import ExperimentError
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture(scope="module")
def wide_matrix() -> TimeSeriesMatrix:
    """120 series -> 7140 pairs, above the default parallel floor."""
    rng = np.random.default_rng(99)
    base = rng.standard_normal(384)
    values = 0.5 * base + rng.standard_normal((120, 384))
    return TimeSeriesMatrix(values)


@pytest.fixture
def wide_query() -> ThresholdQuery:
    return ThresholdQuery(start=0, end=384, window=96, step=32, threshold=0.3)


def test_plan_shards_large_pair_spaces(wide_matrix, wide_query):
    planner = QueryPlanner(basic_window_size=32, workers=4)
    plan = planner.plan(wide_matrix, wide_query)
    assert plan.execution == EXECUTION_SHARDED
    assert plan.workers == 4
    assert "sharded(workers=4)" in plan.describe()


def test_plan_stays_serial_below_pair_floor(small_matrix, standard_query):
    planner = QueryPlanner(basic_window_size=16, workers=4)
    plan = planner.plan(small_matrix, standard_query)
    assert plan.execution == EXECUTION_SERIAL
    assert plan.workers == 1


def test_plan_stays_serial_without_workers(wide_matrix, wide_query):
    plan = QueryPlanner(basic_window_size=32).plan(wide_matrix, wide_query)
    assert plan.execution == EXECUTION_SERIAL


def test_plan_shards_pruned_config_but_not_unseeded_random_pivots(
    wide_matrix, wide_query
):
    # Horizontal pruning decisions are per-pair, so pruned configs shard;
    # only unseeded random pivot selection (shards would draw different
    # pivots) refuses pair subsets — and the plan says so.
    planner = QueryPlanner(
        basic_window_size=32,
        workers=4,
        engine_options={"use_horizontal_pruning": True},
    )
    assert planner.plan(wide_matrix, wide_query).execution == EXECUTION_SHARDED
    planner = QueryPlanner(
        basic_window_size=32,
        workers=4,
        engine_options={"use_horizontal_pruning": True, "pivot_strategy": "random"},
    )
    plan = planner.plan(wide_matrix, wide_query)
    assert plan.execution == EXECUTION_SERIAL
    assert "does not support pair subsets" in plan.describe()


def test_plan_stays_serial_for_sketch_unaligned_windows(wide_matrix):
    """Unaligned windows make every shard fall back to the dense path, so
    sharding them would multiply work instead of dividing it."""
    planner = QueryPlanner(engine="tsubasa", basic_window_size=32, workers=4)
    unaligned = ThresholdQuery(start=0, end=384, window=100, step=30,
                               threshold=0.3)
    plan = planner.plan(wide_matrix, unaligned)
    assert plan.execution == EXECUTION_SERIAL
    aligned = ThresholdQuery(start=0, end=384, window=96, step=32,
                             threshold=0.3)
    assert planner.plan(wide_matrix, aligned).execution == EXECUTION_SHARDED


def test_custom_pair_floor_enables_sharding_for_small_inputs(
    small_matrix, standard_query
):
    planner = QueryPlanner(basic_window_size=16, workers=2, parallel_min_pairs=1)
    plan = planner.plan(small_matrix, standard_query)
    assert plan.execution == EXECUTION_SHARDED


def test_sharded_session_run_matches_serial(wide_matrix, wide_query):
    serial = CorrelationSession(wide_matrix, basic_window_size=32).run(wide_query)
    sharded = CorrelationSession(
        wide_matrix, basic_window_size=32, workers=2
    ).run(wide_query)
    for a, b in zip(serial.matrices, sharded.matrices):
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.cols, b.cols)
        assert np.array_equal(a.values, b.values)
    assert sharded.stats.extra["parallel_workers"] == 2.0


def test_sharded_execution_uses_the_shared_sketch_cache(wide_matrix, wide_query):
    cache = SketchCache()
    planner = QueryPlanner(basic_window_size=32, workers=2, sketch_cache=cache)
    planner.run(wide_matrix, wide_query)
    assert cache.builds == 1
    result = planner.run(wide_matrix, wide_query.with_threshold(0.5))
    # The second (sharded) run reused the first run's sketch build.
    assert cache.builds == 1
    assert result.stats.extra["sketch_cache_hit"] == 1.0


def test_planner_rejects_invalid_worker_count():
    with pytest.raises(ExperimentError):
        QueryPlanner(workers=0)


def test_session_forwards_workers_to_planner(wide_matrix):
    session = CorrelationSession(wide_matrix, workers=3)
    assert session.planner.workers == 3


def test_engine_override_still_shards(wide_matrix, wide_query):
    planner = QueryPlanner(basic_window_size=32, workers=2, parallel_min_pairs=1)
    engine = DangoronEngine(basic_window_size=32)
    plan = planner.plan(wide_matrix, wide_query, engine=engine)
    assert plan.execution == EXECUTION_SHARDED
    assert plan.engine is engine
