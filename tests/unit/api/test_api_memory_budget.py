"""Planner/session behaviour of the ``memory_budget`` knob."""

import numpy as np
import pytest

from repro.api import (
    CorrelationSession,
    LaggedQuery,
    QueryPlanner,
    ThresholdQuery,
    TopKQuery,
)
from repro.api.planner import SKETCH_BUILD_DENSE, SKETCH_BUILD_TILED
from repro.exceptions import ExperimentError
from repro.storage.cache import SketchCache
from repro.storage.chunk_store import ChunkStore
from repro.timeseries.matrix import TimeSeriesMatrix

N, L, BASIC = 6, 512, 16
DENSE_BYTES = N * L * 8


@pytest.fixture
def values():
    rng = np.random.default_rng(23)
    base = rng.standard_normal(L)
    return np.stack([base + 0.4 * rng.standard_normal(L) for _ in range(N)])


@pytest.fixture
def matrix(values):
    return TimeSeriesMatrix(values)


@pytest.fixture
def store(values):
    store = ChunkStore(num_series=N, chunk_columns=90)
    store.append(values)
    return store


@pytest.fixture
def threshold_query():
    return ThresholdQuery(start=0, end=L, window=128, step=64, threshold=0.5)


class TestPlanDecision:
    def test_no_budget_stays_dense(self, matrix, threshold_query):
        plan = QueryPlanner(basic_window_size=BASIC).plan(matrix, threshold_query)
        assert plan.sketch_build == SKETCH_BUILD_DENSE
        assert "build=tiled" not in plan.describe()

    def test_budget_smaller_than_data_goes_tiled(self, matrix, threshold_query):
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=DENSE_BYTES // 4)
        plan = planner.plan(matrix, threshold_query)
        assert plan.sketch_build == SKETCH_BUILD_TILED
        assert plan.memory_budget == DENSE_BYTES // 4
        assert f"build=tiled(budget={DENSE_BYTES // 4}B)" in plan.describe()

    def test_budget_covering_data_stays_dense(self, matrix, threshold_query):
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=DENSE_BYTES * 2)
        plan = planner.plan(matrix, threshold_query)
        assert plan.sketch_build == SKETCH_BUILD_DENSE

    def test_topk_goes_tiled_too(self, matrix):
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=DENSE_BYTES // 4)
        plan = planner.plan(matrix, TopKQuery(start=0, end=L, window=128, step=64, k=3))
        assert plan.sketch_build == SKETCH_BUILD_TILED

    def test_lagged_streams_window_buffers(self, matrix):
        # Lagged plans build no sketch (layout=None); under a budget they go
        # "tiled" in the streamed-window sense: one (N, window) rolling
        # buffer instead of the resident matrix.
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=DENSE_BYTES // 4)
        plan = planner.plan(
            matrix,
            LaggedQuery(start=0, end=L, window=128, step=64, threshold=0.5, max_lag=2),
        )
        assert plan.layout is None
        assert plan.sketch_build == SKETCH_BUILD_TILED
        assert f"build=tiled(budget={DENSE_BYTES // 4}B)" in plan.describe()

    def test_lagged_budget_covering_data_stays_dense(self, matrix):
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=DENSE_BYTES * 2)
        plan = planner.plan(
            matrix,
            LaggedQuery(start=0, end=L, window=128, step=64, threshold=0.5, max_lag=2),
        )
        assert plan.sketch_build == SKETCH_BUILD_DENSE
        assert plan.build_reason == "raw data fits the budget"

    def test_lagged_budget_below_one_window_buffer_raises(self, matrix):
        window_bytes = N * 128 * 8
        planner = QueryPlanner(basic_window_size=BASIC, memory_budget=window_bytes - 1)
        with pytest.raises(ExperimentError, match="window buffer"):
            planner.plan(
                matrix,
                LaggedQuery(start=0, end=L, window=128, step=64,
                            threshold=0.5, max_lag=2),
            )

    def test_unaligned_windows_stay_dense(self, matrix):
        # tsubasa plans a for_range layout; a step that is not a multiple of
        # the basic window size leaves windows unaligned, which needs the raw
        # matrix for edge correction — tiling would not bound memory.
        planner = QueryPlanner(
            engine="tsubasa", basic_window_size=BASIC, memory_budget=DENSE_BYTES // 4
        )
        query = ThresholdQuery(start=0, end=L, window=100, step=50, threshold=0.5)
        plan = planner.plan(matrix, query)
        assert plan.sketch_build == SKETCH_BUILD_DENSE

    def test_raw_reading_engine_configuration_stays_dense(self, matrix, threshold_query):
        # Dangoron's pivot selection (horizontal pruning) reads matrix.values
        # even with a prebuilt sketch; claiming build=tiled there would
        # materialize a lazy matrix and blow the budget anyway.
        planner = QueryPlanner(
            basic_window_size=BASIC,
            engine_options={"use_horizontal_pruning": True},
            memory_budget=DENSE_BYTES // 4,
        )
        plan = planner.plan(matrix, threshold_query)
        assert plan.sketch_build == SKETCH_BUILD_DENSE

    def test_invalid_budget_rejected(self):
        with pytest.raises(ExperimentError, match="memory_budget"):
            QueryPlanner(memory_budget=0)


class TestExecution:
    def test_tiled_execution_bit_identical(self, matrix, store, threshold_query):
        dense = CorrelationSession(matrix, basic_window_size=BASIC).run(threshold_query)
        session = CorrelationSession.from_chunk_store(
            store, basic_window_size=BASIC, memory_budget=DENSE_BYTES // 4
        )
        tiled = session.run(threshold_query)
        for a, b in zip(dense.matrices, tiled.matrices):
            assert np.array_equal(a.rows, b.rows)
            assert np.array_equal(a.cols, b.cols)
            assert np.array_equal(a.values, b.values)
        assert not session.matrix.materialized

    def test_tiled_and_dense_share_cache_entry(self, matrix, store, threshold_query):
        from repro.core.tiled import ChunkBackedMatrix

        cache = SketchCache()
        tiled_planner = QueryPlanner(
            basic_window_size=BASIC,
            sketch_cache=cache,
            memory_budget=DENSE_BYTES // 4,
        )
        dense_planner = QueryPlanner(basic_window_size=BASIC, sketch_cache=cache)
        tiled_planner.run(ChunkBackedMatrix(store), threshold_query)
        assert cache.builds == 1
        dense_planner.run(matrix, threshold_query)
        assert cache.builds == 1  # dense run hit the tiled-built sketch
        assert cache.stats.hits >= 1

    def test_composes_with_sharded_execution(self, matrix, store, threshold_query):
        session = CorrelationSession.from_chunk_store(
            store,
            basic_window_size=BASIC,
            workers=2,
            memory_budget=DENSE_BYTES // 4,
        )
        # Force sharding despite the tiny pair space so both decisions apply.
        session.planner.parallel_min_pairs = 1
        plan = session.plan(threshold_query)
        assert plan.execution == "sharded"
        assert plan.sketch_build == SKETCH_BUILD_TILED
        sharded = session.run(threshold_query)
        serial = CorrelationSession(matrix, basic_window_size=BASIC).run(threshold_query)
        for a, b in zip(serial.matrices, sharded.matrices):
            assert np.array_equal(a.rows, b.rows)
            assert np.array_equal(a.values, b.values)

    def test_single_pair_catalog_through_tiled_path(self):
        """A two-series (one-pair) store runs the whole tiled path."""
        rng = np.random.default_rng(11)
        base = rng.standard_normal(L)
        values = np.stack([base, base + 0.3 * rng.standard_normal(L)])
        store = ChunkStore(num_series=2, chunk_columns=33)
        store.append(values)
        query = ThresholdQuery(start=0, end=L, window=128, step=64, threshold=0.3)
        session = CorrelationSession.from_chunk_store(
            store, basic_window_size=BASIC, memory_budget=2 * BASIC * 8
        )
        assert session.plan(query).sketch_build == SKETCH_BUILD_TILED
        tiled = session.run(query)
        dense = CorrelationSession(
            TimeSeriesMatrix(values), basic_window_size=BASIC
        ).run(query)
        for a, b in zip(dense.matrices, tiled.matrices):
            assert np.array_equal(a.rows, b.rows)
            assert np.array_equal(a.values, b.values)
        assert not session.matrix.materialized
