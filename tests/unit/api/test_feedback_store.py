"""The feedback store: recording, blending, persistence, and failure modes.

The robustness contract under test: a corrupt or truncated feedback file
raises :class:`StorageError` *naming the path* from :meth:`FeedbackStore
.load`, while the lenient owner — :class:`SketchCache` — catches it, starts
empty with the message on ``feedback.load_error``, and the planner keeps
ranking by calibration instead of crashing.  Concurrent ``record()`` calls
share the cache's lock, so no observation is ever lost to a race.
"""

import json
import threading

import numpy as np
import pytest

from repro.api import QueryPlanner, ThresholdQuery
from repro.api.cost import FEEDBACK_SCHEMA, FeedbackStore
from repro.exceptions import StorageError
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix


def _matrix(num_series=8, length=256, seed=3):
    rng = np.random.default_rng(seed)
    return TimeSeriesMatrix(rng.standard_normal((num_series, length)))


QUERY = ThresholdQuery(start=0, end=256, window=64, step=32, threshold=0.5)


class TestRecording:
    def test_mean_and_count_track_recordings(self):
        store = FeedbackStore()
        assert store.count("k") == 0 and store.mean("k") is None
        store.record("k", 1.0)
        store.record("k", 3.0)
        assert store.count("k") == 2
        assert store.mean("k") == pytest.approx(2.0)

    def test_blended_weights_the_prediction_as_one_sample(self):
        store = FeedbackStore()
        assert store.blended("k", 5.0) == 5.0  # unobserved: prediction alone
        store.record("k", 1.0)
        store.record("k", 1.0)
        assert store.blended("k", 7.0) == pytest.approx((1 + 1 + 7) / 3)

    def test_history_is_bounded_newest_kept(self):
        store = FeedbackStore(max_samples=3)
        for wall in (10.0, 1.0, 2.0, 3.0):
            store.record("k", wall)
        assert store.count("k") == 3
        assert store.mean("k") == pytest.approx(2.0)  # the 10.0 rolled off

    def test_rejects_unusable_observations(self):
        store = FeedbackStore()
        for bad in (float("nan"), float("inf"), -0.5):
            with pytest.raises(StorageError, match="finite and non-negative"):
                store.record("k", bad)

    def test_concurrent_records_are_never_lost(self):
        store = FeedbackStore()
        threads, per_thread = 8, 200

        def hammer(index):
            for _ in range(per_thread):
                store.record(f"key-{index % 2}", 0.001)

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert store.records == threads * per_thread

    def test_snapshot_summarizes_per_key(self):
        store = FeedbackStore()
        store.record("b", 2.0)
        store.record("a", 1.0)
        store.record("a", 3.0)
        snapshot = store.snapshot()
        assert list(snapshot) == ["a", "b"]  # sorted, stable for wire payloads
        assert snapshot["a"] == {
            "samples": 2,
            "mean_seconds": 2.0,
            "last_seconds": 3.0,
        }


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "feedback.json"
        store = FeedbackStore(path=path)
        store.record("plan-a", 0.5)
        store.record("plan-a", 0.7)
        store.record("plan-b", 1.5)
        assert store.save() == path
        loaded = FeedbackStore.load(path)
        assert loaded.snapshot() == store.snapshot()

    def test_corrupt_json_raises_naming_the_path(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text("{not json")
        with pytest.raises(StorageError, match=str(path)):
            FeedbackStore.load(path)

    def test_truncated_document_raises_naming_the_path(self, tmp_path):
        path = tmp_path / "feedback.json"
        store = FeedbackStore(path=path)
        store.record("plan-a", 0.5)
        full = store.save().read_text()
        path.write_text(full[: len(full) // 2])  # a crash mid-write
        with pytest.raises(StorageError) as excinfo:
            FeedbackStore.load(path)
        assert str(path) in str(excinfo.value)
        assert "corrupt or truncated" in str(excinfo.value)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text(json.dumps({"schema": "other/v9", "samples": {}}))
        with pytest.raises(StorageError, match=FEEDBACK_SCHEMA.replace("/", "/")):
            FeedbackStore.load(path)

    def test_corrupt_sample_row_raises_naming_the_key(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text(
            json.dumps(
                {"schema": FEEDBACK_SCHEMA, "samples": {"plan-a": [0.5, "oops"]}}
            )
        )
        with pytest.raises(StorageError, match="plan-a"):
            FeedbackStore.load(path)

    def test_missing_samples_table_raises(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text(json.dumps({"schema": FEEDBACK_SCHEMA}))
        with pytest.raises(StorageError, match="no samples table"):
            FeedbackStore.load(path)


class TestCacheIntegration:
    def test_cache_loads_a_persisted_store(self, tmp_path):
        path = tmp_path / "feedback.json"
        seed = FeedbackStore(path=path)
        seed.record("plan-a", 0.25)
        seed.save()
        cache = SketchCache(feedback_path=path)
        assert cache.feedback.count("plan-a") == 1
        assert cache.feedback.load_error is None

    def test_cache_with_no_file_starts_empty(self, tmp_path):
        cache = SketchCache(feedback_path=tmp_path / "absent.json")
        assert cache.feedback.snapshot() == {}
        assert cache.feedback.load_error is None

    def test_corrupt_file_degrades_to_calibration_not_a_crash(self, tmp_path):
        path = tmp_path / "feedback.json"
        path.write_text("{definitely not json")
        cache = SketchCache(feedback_path=path)
        # The lenient owner surfaces the strict loader's message...
        assert cache.feedback.load_error is not None
        assert str(path) in cache.feedback.load_error
        # ...and the planner runs normally on calibrated predictions.
        planner = QueryPlanner(basic_window_size=16, sketch_cache=cache)
        plan = planner.plan(_matrix(), QUERY)
        assert plan.cost_source == "calibration"
        result = planner.execute(_matrix(), plan)
        assert result.num_windows == 7

    def test_execute_records_observed_wall_under_the_plan_key(self):
        planner = QueryPlanner(basic_window_size=16)
        matrix = _matrix()
        plan = planner.plan(matrix, QUERY)
        assert plan.cost_key is not None
        planner.execute(matrix, plan)
        feedback = planner.sketch_cache.feedback
        assert feedback.count(plan.cost_key) == 1
        assert feedback.mean(plan.cost_key) >= 0.0
