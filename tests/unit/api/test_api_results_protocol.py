"""Result-protocol conformance across all result types (repro.api.results)."""

import pytest

from repro.api import (
    CorrelationResult,
    CorrelationSession,
    LaggedQuery,
    LaggedSeriesResult,
    ThresholdQuery,
    TopKQuery,
)
from repro.core.lag import LagMatrices, lagged_correlation_matrix
from repro.core.result import Edge
from repro.network import graphs_from_edges, union_graph_from_edges
from repro.analysis import summarize_result


@pytest.fixture(scope="module")
def results(small_matrix):
    """One result of every type over the same data."""
    session = CorrelationSession(small_matrix, basic_window_size=32)
    threshold = session.run(
        ThresholdQuery(start=0, end=512, window=128, step=64, threshold=0.6)
    )
    topk = session.run(TopKQuery(start=0, end=512, window=128, step=64, k=4))
    lagged = session.run(
        LaggedQuery(start=0, end=512, window=128, step=64, threshold=0.5, max_lag=4)
    )
    return {"threshold": threshold, "topk": topk, "lagged": lagged}


ALL_KINDS = ["threshold", "topk", "lagged"]


class TestProtocolConformance:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_satisfies_structural_protocol(self, results, kind):
        assert isinstance(results[kind], CorrelationResult)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_describe_is_a_summary_line(self, results, kind):
        text = results[kind].describe()
        assert isinstance(text, str) and text and "\n" not in text

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_num_windows_matches_query(self, results, kind):
        result = results[kind]
        assert result.num_windows == result.query.num_windows

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_iter_windows_yields_indexed_payloads(self, results, kind):
        pairs = list(results[kind].iter_windows())
        assert len(pairs) == results[kind].num_windows
        assert [index for index, _ in pairs] == list(range(len(pairs)))
        assert all(payload is not None for _, payload in pairs)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_to_edges_returns_well_formed_edges(self, results, kind):
        edges = results[kind].to_edges()
        assert edges, f"{kind} result produced no edges"
        for edge in edges:
            assert isinstance(edge, Edge)
            assert 0 <= edge.window < results[kind].num_windows
            assert 0 <= edge.source < edge.target
            assert -1.0 <= edge.weight <= 1.0

    def test_only_lagged_edges_carry_lags(self, results):
        assert all(e.lag == 0 for e in results["threshold"].to_edges())
        assert all(e.lag == 0 for e in results["topk"].to_edges())
        assert any(e.lag != 0 for e in results["lagged"].to_edges())


class TestSingleLagMatricesProtocol:
    def test_lag_matrices_is_a_one_window_result(self, small_matrix):
        window = lagged_correlation_matrix(
            small_matrix.values[:, :128], max_lag=4, window_index=3
        )
        assert isinstance(window, LagMatrices)
        assert isinstance(window, CorrelationResult)
        assert window.num_windows == 1
        assert list(window.iter_windows()) == [(3, window)]
        edges = window.to_edges(threshold=0.5)
        assert all(e.window == 3 for e in edges)
        assert len(window.to_edges()) >= len(edges)  # no threshold keeps all


class TestLaggedSeriesResult:
    def test_to_edges_applies_query_threshold(self, results):
        lagged: LaggedSeriesResult = results["lagged"]
        default = lagged.to_edges()
        strict = lagged.to_edges(threshold=0.8)
        assert len(strict) <= len(default)
        assert all(e.weight >= 0.5 for e in default)  # signed mode, beta=0.5

    def test_window_access(self, results):
        lagged = results["lagged"]
        assert len(lagged) == lagged.num_windows
        assert lagged[0].window_index == 0
        assert lagged.lag_profile(0, 1).shape == (lagged.num_windows,)


class TestUniformConsumers:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_network_builders_consume_any_result(self, results, kind):
        graphs = graphs_from_edges(results[kind])
        assert len(graphs) == results[kind].num_windows
        union = union_graph_from_edges(results[kind])
        assert union.number_of_edges() > 0

    def test_lag_attribute_reaches_the_graph(self, results):
        union = union_graph_from_edges(results["lagged"])
        lags = [data["lag"] for _, _, data in union.edges(data=True)]
        assert any(lag != 0 for lag in lags)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_report_summary_consumes_any_result(self, results, kind):
        table = summarize_result(results[kind])
        assert "window" in table and "edges" in table
        # One row per window plus title, underline and header rows.
        assert len(table.splitlines()) == results[kind].num_windows + 4
