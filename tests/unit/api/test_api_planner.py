"""Unit tests for QueryPlanner internals (repro.api.planner)."""

import pytest

from repro.api import QueryPlanner, ThresholdQuery, TopKQuery
from repro.baselines.brute_force import BruteForceEngine
from repro.core.basic_window import BasicWindowLayout
from repro.core.result import CorrelationSeriesResult
from repro.exceptions import QueryValidationError
from repro.storage.cache import SketchCache


@pytest.fixture
def query():
    return ThresholdQuery(start=0, end=512, window=128, step=32, threshold=0.6)


class TestEngineResolution:
    def test_default_engine_is_memoized(self):
        planner = QueryPlanner()
        assert planner.resolve_engine() is planner.resolve_engine()

    def test_basic_window_size_injected_when_accepted(self):
        planner = QueryPlanner(engine="dangoron", basic_window_size=16)
        assert planner.resolve_engine().basic_window_size == 16

    def test_explicit_option_wins_over_injection(self):
        planner = QueryPlanner(
            engine="dangoron",
            engine_options={"basic_window_size": 8},
            basic_window_size=16,
        )
        assert planner.resolve_engine().basic_window_size == 8

    def test_engines_without_the_option_are_not_injected(self):
        planner = QueryPlanner(engine="brute_force", basic_window_size=16)
        engine = planner.resolve_engine()
        assert engine.name == "brute_force"
        assert not hasattr(engine, "basic_window_size")


class TestPlanning:
    def test_plan_validates_against_matrix_length(self, small_matrix):
        too_long = ThresholdQuery(
            start=0, end=4096, window=128, step=32, threshold=0.6
        )
        with pytest.raises(QueryValidationError):
            QueryPlanner(basic_window_size=32).plan(small_matrix, too_long)

    def test_plan_layout_matches_engine_choice(self, small_matrix, query):
        planner = QueryPlanner(basic_window_size=32)
        plan = planner.plan(small_matrix, query)
        assert plan.layout == planner.resolve_engine().plan_layout(query)

    def test_topk_layout_uses_planner_basic_window(self, small_matrix):
        planner = QueryPlanner(basic_window_size=16)
        plan = planner.plan(
            small_matrix, TopKQuery(start=0, end=512, window=128, step=32, k=3)
        )
        assert plan.layout == BasicWindowLayout.for_query(plan.query, 16)

    def test_engine_override_changes_the_plan(self, small_matrix, query):
        planner = QueryPlanner(basic_window_size=32)
        plan = planner.plan(small_matrix, query, engine=BruteForceEngine())
        assert plan.engine.name == "brute_force"
        assert plan.layout is None

    def test_engine_override_rejected_for_fixed_paths(self, small_matrix):
        """topk/lagged execute on fixed paths; a silently ignored engine
        override would mislead engine comparisons."""
        from repro.api import LaggedQuery
        from repro.exceptions import ExperimentError

        planner = QueryPlanner(basic_window_size=32)
        topk = TopKQuery(start=0, end=512, window=128, step=32, k=3)
        lagged = LaggedQuery(start=0, end=512, window=128, step=32, max_lag=2)
        for query in (topk, lagged):
            with pytest.raises(ExperimentError, match="threshold queries only"):
                planner.plan(small_matrix, query, engine=BruteForceEngine())


class TestExecution:
    def test_execute_runs_the_plan(self, small_matrix, query):
        planner = QueryPlanner(basic_window_size=32)
        result = planner.execute(small_matrix, planner.plan(small_matrix, query))
        assert isinstance(result, CorrelationSeriesResult)
        assert result.num_windows == query.num_windows

    def test_shared_cache_spans_planners(self, small_matrix, query):
        cache = SketchCache()
        QueryPlanner(basic_window_size=32, sketch_cache=cache).run(
            small_matrix, query
        )
        QueryPlanner(basic_window_size=32, sketch_cache=cache).run(
            small_matrix, query.with_threshold(0.8)
        )
        assert cache.builds == 1

    def test_engines_without_layout_run_without_sketch(self, small_matrix, query):
        planner = QueryPlanner(engine="brute_force")
        result = planner.run(small_matrix, query)
        assert result.stats.engine == "brute_force"
        assert planner.sketch_cache.builds == 0
        assert "sketch_cache_hit" not in result.stats.extra
