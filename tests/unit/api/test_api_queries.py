"""Unit tests for the query spec family (repro.api.queries)."""

import pytest

from repro.api import LaggedQuery, ThresholdQuery, TopKQuery
from repro.core.query import THRESHOLD_ABSOLUTE, SlidingQuery
from repro.exceptions import QueryValidationError


class TestThresholdQuery:
    def test_is_a_sliding_query(self):
        query = ThresholdQuery(start=0, end=100, window=20, step=10, threshold=0.7)
        assert isinstance(query, SlidingQuery)
        assert query.num_windows == 9
        assert query.keeps(0.8) and not query.keeps(0.6)

    def test_inherits_validation(self):
        with pytest.raises(QueryValidationError):
            ThresholdQuery(start=0, end=10, window=20, step=10, threshold=0.7)
        with pytest.raises(QueryValidationError):
            ThresholdQuery(start=0, end=100, window=20, step=10, threshold=1.5)

    def test_with_threshold_preserves_type(self):
        query = ThresholdQuery(start=0, end=100, window=20, step=10, threshold=0.7)
        relaxed = query.with_threshold(0.5)
        assert isinstance(relaxed, ThresholdQuery)
        assert relaxed.threshold == 0.5
        assert relaxed.window == query.window


class TestTopKQuery:
    def test_threshold_defaults_vacuous(self):
        query = TopKQuery(start=0, end=100, window=20, step=10, k=5)
        assert query.k == 5
        assert query.threshold == 1.0

    def test_rejects_non_positive_k(self):
        with pytest.raises(QueryValidationError):
            TopKQuery(start=0, end=100, window=20, step=10, k=0)

    def test_effective_absolute_follows_mode_then_flag(self):
        by_mode = TopKQuery(
            start=0, end=100, window=20, step=10, k=5,
            threshold_mode=THRESHOLD_ABSOLUTE,
        )
        assert by_mode.effective_absolute
        overridden = TopKQuery(
            start=0, end=100, window=20, step=10, k=5,
            threshold_mode=THRESHOLD_ABSOLUTE, absolute=False,
        )
        assert not overridden.effective_absolute

    def test_describe_mentions_k(self):
        query = TopKQuery(start=0, end=100, window=20, step=10, k=5)
        assert "k=5" in query.describe()


class TestLaggedQuery:
    def test_defaults(self):
        query = LaggedQuery(start=0, end=100, window=20, step=10, max_lag=4)
        assert query.max_lag == 4
        assert query.threshold == 0.0

    def test_rejects_negative_lag(self):
        with pytest.raises(QueryValidationError):
            LaggedQuery(start=0, end=100, window=20, step=10, max_lag=-1)

    def test_rejects_lag_swallowing_window(self):
        with pytest.raises(QueryValidationError):
            LaggedQuery(start=0, end=100, window=20, step=10, max_lag=19)

    def test_describe_mentions_lag(self):
        query = LaggedQuery(start=0, end=100, window=20, step=10, max_lag=4)
        assert "max_lag=4" in query.describe()
