"""Unit tests for the planner's incremental sketch-build strategy.

``sketch_build=incremental`` is chosen when the planner's cache holds a
chained sketch covering a prefix of the query's layout; the plan string
always states *why* the strategy was chosen or declined — never a silent
fallback.
"""

import numpy as np
import pytest

from repro.api import QueryPlanner, ThresholdQuery
from repro.api.planner import SKETCH_BUILD_INCREMENTAL
from repro.core.basic_window import BasicWindowLayout
from repro.datasets.random_walk import ar1_series
from repro.storage.cache import SketchCache
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture
def matrix():
    return ar1_series(8, 512, coefficient=0.8, shared_innovation_weight=0.5, seed=5)


def chained(cache: SketchCache, matrix: TimeSeriesMatrix, delta_columns: int = 64):
    """Warm the cache on ``matrix``, append, and return the grown matrix."""
    cache.get_or_build(matrix, BasicWindowLayout.for_range(0, matrix.length, 32))
    rng = np.random.default_rng(17)
    delta = rng.normal(size=(matrix.num_series, delta_columns))
    fingerprint = cache.extend_chain(matrix, delta)
    bigger = TimeSeriesMatrix(
        np.concatenate([matrix.values, delta], axis=1),
        series_ids=list(matrix.series_ids),
        time_axis=matrix.time_axis,
    )
    cache.adopt_fingerprint(bigger, fingerprint)
    return bigger


class TestStrategyChoice:
    def test_chained_prefix_selects_incremental(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        planner = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
        plan = planner.plan(bigger, query)
        assert plan.sketch_build == SKETCH_BUILD_INCREMENTAL
        assert "chained sketch covers 16/18 basic windows" in plan.build_reason
        assert "build=incremental(chained sketch covers 16/18 basic windows)" in plan.describe()

    def test_cold_matrix_keeps_historic_plan_strings(self, matrix):
        """Without a chain the plan string must read exactly as before this
        strategy existed — doctests and service smoke assertions depend on
        the historic wording."""
        planner = QueryPlanner(basic_window_size=32)
        query = ThresholdQuery(start=0, end=512, window=128, step=32, threshold=0.6)
        plan = planner.plan(matrix, query)
        assert plan.sketch_build != SKETCH_BUILD_INCREMENTAL
        assert "incremental" not in plan.describe()

    def test_incremental_plan_executes_bit_identically(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
        warm = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        plan = warm.plan(bigger, query)
        assert plan.sketch_build == SKETCH_BUILD_INCREMENTAL
        incremental = warm.execute(bigger, plan)
        cold = QueryPlanner(basic_window_size=32)
        scratch = cold.execute(bigger, cold.plan(bigger, query))
        for got, expected in zip(incremental.matrices, scratch.matrices):
            assert got.edge_dict() == expected.edge_dict()

    def test_extension_recorded_in_cache_stats(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        planner = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
        planner.execute(bigger, planner.plan(bigger, query))
        assert cache.stats.sketch_extensions == 1
        assert cache.builds == 1  # only the pre-append scratch build


class TestDeclineReasons:
    def test_unaligned_windows_decline_states_why(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        planner = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        # window not a multiple of step: engine layout is None -> raw values
        query = ThresholdQuery(start=0, end=576, window=100, step=32, threshold=0.6)
        plan = planner.plan(bigger, query)
        assert plan.sketch_build != SKETCH_BUILD_INCREMENTAL
        assert "incremental declined" in (plan.build_reason or "")

    def test_no_prefix_entry_decline_states_why(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        planner = QueryPlanner(basic_window_size=16, sketch_cache=cache)
        # Cached prefix was built at size 32; a size-16 layout has no prefix.
        query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
        plan = planner.plan(bigger, query)
        assert plan.sketch_build != SKETCH_BUILD_INCREMENTAL
        assert "incremental declined: no chained sketch entry covers a prefix" in (
            plan.build_reason or ""
        )

    def test_decline_reason_surfaces_in_describe(self, matrix):
        cache = SketchCache()
        bigger = chained(cache, matrix)
        planner = QueryPlanner(
            basic_window_size=16, sketch_cache=cache, memory_budget=1 << 30
        )
        query = ThresholdQuery(start=0, end=576, window=128, step=32, threshold=0.6)
        plan = planner.plan(bigger, query)
        assert "incremental declined" in plan.describe()
