"""The planner surfaces broken engine/sketch contracts as clear errors.

``plan_layout`` returning a layout is an engine's promise that ``run``
accepts the prebuilt ``sketch`` keyword.  A subclass that breaks the promise
used to explode with a raw ``TypeError`` from inside the call; the planner
now names the engine and the fix in an :class:`ExperimentError`.
"""

import pytest

from repro.api import QueryPlanner
from repro.core.basic_window import BasicWindowLayout
from repro.core.engine import SlidingCorrelationEngine
from repro.core.result import CorrelationSeriesResult, ThresholdedMatrix
from repro.exceptions import ExperimentError


class _SketchlessEngine(SlidingCorrelationEngine):
    """Plans a layout but (wrongly) refuses the prebuilt sketch keyword."""

    name = "sketchless"
    exact = True

    def plan_layout(self, query):
        return BasicWindowLayout.for_query(query, 16)

    def run(self, matrix, query):  # no sketch kwarg: breaks the contract
        matrices = [
            ThresholdedMatrix(matrix.num_series, [], [], [])
            for _ in range(query.num_windows)
        ]
        return CorrelationSeriesResult(query, matrices)


def test_sketch_rejecting_engine_raises_experiment_error(
    small_matrix, standard_query
):
    planner = QueryPlanner(basic_window_size=16)
    with pytest.raises(ExperimentError) as excinfo:
        planner.run(small_matrix, standard_query, engine=_SketchlessEngine())
    message = str(excinfo.value)
    assert "sketchless" in message
    assert "sketch" in message
    assert "plan_layout" in message


def test_layoutless_engine_runs_without_sketch(small_matrix, standard_query):
    class _RawEngine(_SketchlessEngine):
        name = "rawengine"

        def plan_layout(self, query):
            return None

    result = QueryPlanner(basic_window_size=16).run(
        small_matrix, standard_query, engine=_RawEngine()
    )
    assert result.num_windows == standard_query.num_windows


def test_sharded_path_raises_the_same_clear_error(small_matrix, standard_query):
    """The sketch-kwarg contract is enforced before work reaches pool workers."""

    class _ShardableSketchless(_SketchlessEngine):
        name = "shardable-sketchless"

        def supports_pair_subset(self):
            return True

    planner = QueryPlanner(basic_window_size=16, workers=2, parallel_min_pairs=1)
    with pytest.raises(ExperimentError) as excinfo:
        planner.run(small_matrix, standard_query, engine=_ShardableSketchless())
    assert "sketch" in str(excinfo.value)


def test_var_keyword_run_accepts_sketch(small_matrix, standard_query):
    class _KwargsEngine(_SketchlessEngine):
        name = "kwargsengine"

        def run(self, matrix, query, **kwargs):
            return super().run(matrix, query)

    result = QueryPlanner(basic_window_size=16).run(
        small_matrix, standard_query, engine=_KwargsEngine()
    )
    assert result.num_windows == standard_query.num_windows
