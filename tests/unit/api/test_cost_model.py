"""The cost model: calibration sources, prediction structure, env wiring.

The planner's decisions are only as trustworthy as the model pricing them,
so this file pins the model's *structure* (additive build + scan + dispatch
+ merge, cached prepares are free, lag spans multiply scan work) against
hand-computed expectations on an injected calibration, and exercises every
calibration source (``fixture`` / ``measured`` / ``injected`` / the
``REPRO_COST_CALIBRATION`` environment knob) the planner can run under.
"""

import math

import pytest

from repro.api.cost import (
    ENV_CALIBRATION,
    FIXTURE_CALIBRATION,
    Calibration,
    CostModel,
    PlanWorkload,
    measure_calibration,
)
from repro.config import DEFAULT_SHARDS_PER_WORKER
from repro.exceptions import StorageError

#: Round-number throughputs so expected costs are exact decimal arithmetic.
UNIT = Calibration(
    sketch_build_elems_per_s=1000.0,
    sketch_extend_elems_per_s=500.0,
    pair_scan_pair_windows_per_s=100.0,
    merge_pair_windows_per_s=200.0,
    shard_dispatch_seconds=0.01,
    parallel_efficiency=0.5,
    tile_io_bytes_per_s=2000.0,
    tile_overhead_seconds=0.25,
)


def _workload(**overrides):
    base = dict(
        kind="threshold",
        pairs=10,
        windows=4,
        sketch_elems=2000,
        data_bytes=4000,
    )
    base.update(overrides)
    return PlanWorkload(**base)


class TestPredictionStructure:
    def test_serial_dense_is_build_plus_scan(self):
        model = CostModel(UNIT)
        cost = model.predict(_workload(), "serial", 1, "dense")
        assert cost == pytest.approx(2000 / 1000.0 + 10 * 4 / 100.0)

    def test_cached_sketch_prepares_for_free(self):
        model = CostModel(UNIT)
        cost = model.predict(_workload(cached=True), "serial", 1, "dense")
        assert cost == pytest.approx(10 * 4 / 100.0)

    def test_sharded_adds_dispatch_and_merge_but_divides_the_scan(self):
        model = CostModel(UNIT)
        workers = 4
        scan = 10 * 4 / 100.0
        expected = (
            2000 / 1000.0
            + scan / (workers * UNIT.parallel_efficiency)
            + workers * DEFAULT_SHARDS_PER_WORKER * UNIT.shard_dispatch_seconds
            + 10 * 4 / 200.0
        )
        cost = model.predict(_workload(), "sharded", workers, "dense")
        assert cost == pytest.approx(expected)

    def test_tiled_build_pays_io_and_per_tile_overhead(self):
        model = CostModel(UNIT)
        cost = model.predict(
            _workload(), "serial", 1, "tiled", tile_budget=1000
        )
        tiles = math.ceil(4000 / 1000)
        expected = (
            2000 / 1000.0 + 4000 / 2000.0 + tiles * 0.25 + 10 * 4 / 100.0
        )
        assert cost == pytest.approx(expected)

    def test_smaller_tiles_cost_more_overhead(self):
        model = CostModel(UNIT)
        big = model.predict(_workload(), "serial", 1, "tiled", tile_budget=4000)
        small = model.predict(_workload(), "serial", 1, "tiled", tile_budget=500)
        assert small > big

    def test_incremental_prepare_scales_with_the_delta_only(self):
        model = CostModel(UNIT)
        cost = model.predict(
            _workload(delta_elems=100), "serial", 1, "incremental"
        )
        assert cost == pytest.approx(100 / 500.0 + 10 * 4 / 100.0)

    def test_lagged_tiled_streams_rather_than_builds(self):
        # "tiled" on a lagged workload is streamed window buffers: IO cost
        # only, no sketch-build term, no per-tile overhead.
        model = CostModel(UNIT)
        cost = model.predict(
            _workload(kind="lagged", lag_span=5), "serial", 1, "tiled",
            tile_budget=1000,
        )
        assert cost == pytest.approx(4000 / 2000.0 + 10 * 4 * 5 / 100.0)

    def test_lag_span_multiplies_the_scan(self):
        model = CostModel(UNIT)
        narrow = model.predict(
            _workload(kind="lagged", lag_span=1), "serial", 1, "dense"
        )
        wide = model.predict(
            _workload(kind="lagged", lag_span=9), "serial", 1, "dense"
        )
        assert wide - narrow == pytest.approx(8 * 10 * 4 / 100.0)

    def test_more_pairs_never_cost_less(self):
        model = CostModel(FIXTURE_CALIBRATION)
        costs = [
            model.predict(_workload(pairs=pairs), "serial", 1, "dense")
            for pairs in (1, 10, 100, 1000)
        ]
        assert costs == sorted(costs)


class TestCalibrationValidation:
    def test_rejects_nan_and_negative_fields(self):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(StorageError, match="finite and"):
                Calibration(
                    sketch_build_elems_per_s=bad,
                    sketch_extend_elems_per_s=1.0,
                    pair_scan_pair_windows_per_s=1.0,
                    merge_pair_windows_per_s=1.0,
                    shard_dispatch_seconds=0.0,
                    parallel_efficiency=0.5,
                    tile_io_bytes_per_s=1.0,
                    tile_overhead_seconds=0.0,
                )

    def test_rejects_zero_throughput(self):
        with pytest.raises(StorageError, match="must be positive"):
            Calibration(
                sketch_build_elems_per_s=1.0,
                sketch_extend_elems_per_s=1.0,
                pair_scan_pair_windows_per_s=0.0,
                merge_pair_windows_per_s=1.0,
                shard_dispatch_seconds=0.0,
                parallel_efficiency=0.5,
                tile_io_bytes_per_s=1.0,
                tile_overhead_seconds=0.0,
            )

    def test_rejects_out_of_range_efficiency(self):
        for bad in (0.0, 1.5):
            with pytest.raises(StorageError, match="parallel_efficiency"):
                Calibration(
                    sketch_build_elems_per_s=1.0,
                    sketch_extend_elems_per_s=1.0,
                    pair_scan_pair_windows_per_s=1.0,
                    merge_pair_windows_per_s=1.0,
                    shard_dispatch_seconds=0.0,
                    parallel_efficiency=bad,
                    tile_io_bytes_per_s=1.0,
                    tile_overhead_seconds=0.0,
                )


class TestCalibrationSources:
    def test_fixture_mode_is_the_committed_constant(self):
        model = CostModel.fixture()
        assert model.calibration is FIXTURE_CALIBRATION
        assert model.calibration.source == "fixture"

    def test_environment_off_selects_the_fixture(self):
        for value in ("off", "fixture", "OFF", " 0 ", "false"):
            model = CostModel.from_environment({ENV_CALIBRATION: value})
            assert model.calibration.source == "fixture", value

    def test_environment_default_measures_this_machine(self):
        model = CostModel.from_environment({})
        assert model.calibration.source == "measured"

    def test_measured_calibration_is_sane(self):
        calibration = measure_calibration()
        assert calibration.source == "measured"
        # Any real machine reduces at least a million elements per second
        # and scans at least a thousand pair-windows; a wildly implausible
        # number here means a broken timer, not a slow host.
        assert calibration.sketch_build_elems_per_s > 1e6
        assert calibration.pair_scan_pair_windows_per_s > 1e3
        assert 0 < calibration.parallel_efficiency <= 1

    def test_shared_model_honours_the_tier1_env_pin(self):
        # conftest.py pins REPRO_COST_CALIBRATION=off for the whole suite,
        # so the per-process shared model every default planner uses must be
        # the deterministic fixture.
        CostModel.reset_shared()
        try:
            assert CostModel.shared().calibration.source == "fixture"
            assert CostModel.shared() is CostModel.shared()
        finally:
            CostModel.reset_shared()
