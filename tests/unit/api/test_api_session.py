"""Unit tests for CorrelationSession and QueryPlanner (repro.api)."""

import numpy as np
import pytest

from repro.api import (
    KIND_LAGGED,
    KIND_THRESHOLD,
    KIND_TOPK,
    CorrelationSession,
    LaggedQuery,
    LaggedSeriesResult,
    QueryPlanner,
    ThresholdQuery,
    TopKQuery,
)
from repro.baselines.brute_force import BruteForceEngine
from repro.baselines.tsubasa import TsubasaEngine
from repro.core.dangoron import DangoronEngine
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult
from repro.core.topk import TopKResult, sliding_top_k
from repro.exceptions import ExperimentError, QueryValidationError
from repro.storage.cache import SketchCache


@pytest.fixture
def query():
    return ThresholdQuery(start=0, end=512, window=128, step=32, threshold=0.6)


@pytest.fixture
def session(small_matrix):
    return CorrelationSession(small_matrix, basic_window_size=32)


class TestPlannerRouting:
    def test_threshold_query_routes_to_engine(self, small_matrix, session, query):
        plan = session.plan(query)
        assert plan.kind == KIND_THRESHOLD
        assert plan.engine is not None and plan.engine.name == "dangoron"
        assert plan.layout is not None

    def test_plain_sliding_query_routes_like_threshold(self, session):
        plan = session.plan(
            SlidingQuery(start=0, end=512, window=128, step=32, threshold=0.6)
        )
        assert plan.kind == KIND_THRESHOLD

    def test_topk_query_routes_to_sketch_path(self, session):
        plan = session.plan(TopKQuery(start=0, end=512, window=128, step=32, k=5))
        assert plan.kind == KIND_TOPK
        assert plan.engine is None
        assert plan.layout is not None

    def test_lagged_query_routes_to_raw_path(self, session):
        plan = session.plan(
            LaggedQuery(start=0, end=512, window=128, step=32, max_lag=4)
        )
        assert plan.kind == KIND_LAGGED
        assert plan.layout is None

    def test_planner_respects_engine_choice(self, small_matrix):
        session = CorrelationSession(
            small_matrix, engine="brute_force", basic_window_size=32
        )
        plan = session.plan(
            ThresholdQuery(start=0, end=512, window=128, step=32, threshold=0.6)
        )
        assert plan.engine.name == "brute_force"
        assert plan.layout is None  # brute force plans no sketch

    def test_engine_options_are_applied(self, small_matrix, query):
        session = CorrelationSession(
            small_matrix,
            engine="dangoron",
            engine_options={"slack": 0.05, "use_horizontal_pruning": True},
            basic_window_size=32,
        )
        engine = session.planner.resolve_engine()
        assert engine.slack == 0.05
        assert engine.use_horizontal_pruning
        assert engine.basic_window_size == 32  # injected from the session

    def test_bad_engine_options_raise_experiment_error(self, small_matrix):
        session = CorrelationSession(
            small_matrix, engine="dangoron", engine_options={"num_pivot": 4}
        )
        with pytest.raises(ExperimentError, match="num_pivot"):
            session.planner.resolve_engine()

    def test_plan_describe_is_informative(self, session, query):
        text = session.plan(query).describe()
        assert "threshold" in text and "dangoron" in text


class TestSessionResults:
    def test_run_threshold_matches_direct_engine(self, small_matrix, session, query):
        via_session = session.run(query)
        direct = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        assert isinstance(via_session, CorrelationSeriesResult)
        assert via_session.edge_sets() == direct.edge_sets()

    def test_run_topk_matches_free_function(self, small_matrix, session):
        topk_query = TopKQuery(start=0, end=512, window=128, step=32, k=5)
        via_session = session.run(topk_query)
        direct = sliding_top_k(small_matrix, topk_query, k=5, basic_window_size=32)
        assert isinstance(via_session, TopKResult)
        assert [w.pairs() for w in via_session] == [w.pairs() for w in direct]

    def test_run_lagged_wraps_windows(self, small_matrix, session):
        lag_query = LaggedQuery(
            start=0, end=512, window=128, step=64, threshold=0.5, max_lag=4
        )
        result = session.run(lag_query)
        assert isinstance(result, LaggedSeriesResult)
        assert result.num_windows == lag_query.num_windows
        assert result.num_series == small_matrix.num_series

    def test_run_with_engine_uses_that_engine(self, small_matrix, session, query):
        result = session.run_with_engine(BruteForceEngine(), query)
        assert result.stats.engine == "brute_force"


class TestSketchReuse:
    def test_threshold_sweep_builds_exactly_one_sketch(self, session, query):
        results = session.sweep_thresholds(query, [0.5, 0.6, 0.7, 0.8, 0.9])
        assert len(results) == 5
        assert session.sketch_cache.builds == 1
        assert session.cache_stats.misses == 1
        assert session.cache_stats.hits == 4

    def test_topk_and_threshold_share_the_sketch(self, session, query):
        session.run(query)
        session.run(TopKQuery(start=0, end=512, window=128, step=32, k=3))
        assert session.sketch_cache.builds == 1
        assert session.cache_stats.hits == 1

    def test_distinct_layouts_build_distinct_sketches(self, session, query):
        session.run(query)
        session.run(
            ThresholdQuery(start=0, end=256, window=128, step=32, threshold=0.6)
        )
        assert session.sketch_cache.builds == 2

    def test_engines_with_matching_layouts_share(self, small_matrix, query):
        session = CorrelationSession(small_matrix, basic_window_size=32)
        session.run_with_engine(DangoronEngine(basic_window_size=32), query)
        session.run_with_engine(TsubasaEngine(basic_window_size=32), query)
        assert session.sketch_cache.builds == 1

    def test_reused_results_stay_correct(self, small_matrix, session, query):
        sweep = session.sweep_thresholds(query, [0.5, 0.7])
        for result in sweep:
            fresh = DangoronEngine(basic_window_size=32).run(
                small_matrix, query.with_threshold(result.query.threshold)
            )
            assert result.edge_sets() == fresh.edge_sets()

    def test_sessions_can_share_a_cache(self, small_matrix, query):
        cache = SketchCache()
        planner_a = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        planner_b = QueryPlanner(basic_window_size=32, sketch_cache=cache)
        CorrelationSession(small_matrix, planner=planner_a).run(query)
        CorrelationSession(small_matrix, planner=planner_b).run(query)
        assert cache.builds == 1

    def test_cache_hit_recorded_in_stats(self, session, query):
        first = session.run(query)
        second = session.run(query.with_threshold(0.8))
        assert first.stats.extra["sketch_cache_hit"] == 0.0
        assert second.stats.extra["sketch_cache_hit"] == 1.0


class TestStreaming:
    def test_stream_matches_batch(self, small_matrix, session, query):
        streamed = list(session.stream(query))
        batch = session.run(query)
        assert len(streamed) == batch.num_windows
        for emitted, window in zip(streamed, batch.matrices):
            assert emitted.matrix.edge_set() == window.edge_set()

    def test_stream_rejects_topk_and_lagged(self, session):
        with pytest.raises(QueryValidationError):
            next(session.stream(TopKQuery(start=0, end=512, window=128, step=32, k=3)))
        with pytest.raises(QueryValidationError):
            next(
                session.stream(
                    LaggedQuery(start=0, end=512, window=128, step=32, max_lag=2)
                )
            )

    def test_stream_rejects_absolute_mode(self, session):
        absolute = ThresholdQuery(
            start=0, end=512, window=128, step=32, threshold=0.6,
            threshold_mode="absolute",
        )
        with pytest.raises(QueryValidationError):
            next(session.stream(absolute))


class TestSessionSurface:
    def test_describe_mentions_engine_and_cache(self, session, query):
        session.run(query)
        text = session.describe()
        assert "dangoron" in text and "sketches cached=1" in text

    def test_run_many_preserves_order(self, session):
        queries = [
            ThresholdQuery(start=0, end=512, window=128, step=32, threshold=b)
            for b in (0.9, 0.5, 0.7)
        ]
        results = session.run_many(queries)
        assert [r.query.threshold for r in results] == [0.9, 0.5, 0.7]
