"""Back-compat: the seed's entry points still answer exactly like the session."""

import pytest

from repro.api import CorrelationSession, LaggedQuery, ThresholdQuery, TopKQuery
from repro.core.basic_window import BasicWindowLayout
from repro.core.dangoron import DangoronEngine
from repro.core.lag import sliding_lagged_correlation
from repro.core.query import SlidingQuery
from repro.core.sketch import BasicWindowSketch
from repro.core.topk import sliding_top_k
from repro.exceptions import SketchError


@pytest.fixture
def query():
    return SlidingQuery(start=0, end=512, window=128, step=32, threshold=0.6)


class TestLegacyEntryPoints:
    def test_engine_run_unchanged(self, small_matrix, query):
        """engine.run(matrix, query) — no sketch argument — still works."""
        result = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        assert result.num_windows == query.num_windows
        assert result.stats.extra["sketch_reused"] == 0.0

    def test_engine_run_agrees_with_session(self, small_matrix, query):
        direct = DangoronEngine(basic_window_size=32).run(small_matrix, query)
        via_session = CorrelationSession(small_matrix, basic_window_size=32).run(
            ThresholdQuery(**{f: getattr(query, f) for f in (
                "start", "end", "window", "step", "threshold", "threshold_mode")})
        )
        assert direct.edge_sets() == via_session.edge_sets()

    def test_sliding_top_k_agrees_with_session(self, small_matrix, query):
        direct = sliding_top_k(small_matrix, query, k=5, basic_window_size=32)
        via_session = CorrelationSession(small_matrix, basic_window_size=32).run(
            TopKQuery(start=0, end=512, window=128, step=32, k=5)
        )
        assert [w.pairs() for w in direct] == [w.pairs() for w in via_session]

    def test_sliding_lagged_agrees_with_session(self, small_matrix, query):
        direct = sliding_lagged_correlation(small_matrix, query, max_lag=4)
        via_session = CorrelationSession(small_matrix, basic_window_size=32).run(
            LaggedQuery(start=0, end=512, window=128, step=32, max_lag=4)
        )
        assert len(direct) == via_session.num_windows
        for legacy, wrapped in zip(direct, via_session):
            assert (legacy.best_corr == wrapped.best_corr).all()
            assert (legacy.best_lag == wrapped.best_lag).all()

    def test_free_function_docstrings_name_the_successor(self):
        assert "CorrelationSession" in sliding_top_k.__doc__
        assert "CorrelationSession" in sliding_lagged_correlation.__doc__


class TestPrebuiltSketchValidation:
    def test_engine_rejects_mismatched_sketch(self, small_matrix, query):
        wrong_layout = BasicWindowLayout.for_range(0, 256, 32)
        sketch = BasicWindowSketch.build(small_matrix.values, wrong_layout)
        with pytest.raises(Exception, match="does not match"):
            DangoronEngine(basic_window_size=32).run(
                small_matrix, query, sketch=sketch
            )

    def test_top_k_rejects_mismatched_sketch(self, small_matrix, query):
        wrong_layout = BasicWindowLayout.for_range(0, 256, 32)
        sketch = BasicWindowSketch.build(small_matrix.values, wrong_layout)
        with pytest.raises(SketchError, match="does not match"):
            sliding_top_k(small_matrix, query, k=3, basic_window_size=32, sketch=sketch)

    def test_engine_accepts_matching_sketch(self, small_matrix, query):
        engine = DangoronEngine(basic_window_size=32)
        layout = engine.plan_layout(query)
        sketch = BasicWindowSketch.build(small_matrix.values, layout)
        with_sketch = engine.run(small_matrix, query, sketch=sketch)
        without = engine.run(small_matrix, query)
        assert with_sketch.edge_sets() == without.edge_sets()
        assert with_sketch.stats.extra["sketch_reused"] == 1.0
