"""Unit tests for correlation-stability analysis (repro.analysis.stability)."""

import numpy as np
import pytest

from repro.analysis.stability import (
    correlation_drift,
    dense_correlation_series,
    stability_summary,
    threshold_crossings,
)
from repro.core.correlation import correlation_matrix
from repro.core.query import SlidingQuery
from repro.exceptions import ExperimentError, QueryValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


class TestDenseSeries:
    def test_matches_per_window_correlation(self, small_matrix, standard_query):
        series = dense_correlation_series(small_matrix, standard_query)
        assert series.shape == (
            standard_query.num_windows,
            small_matrix.num_series,
            small_matrix.num_series,
        )
        k, begin, end = 2, standard_query.start + 2 * standard_query.step, 0
        end = begin + standard_query.window
        expected = correlation_matrix(small_matrix.values[:, begin:end])
        assert np.allclose(series[2], expected, atol=1e-12)


class TestDrift:
    def test_drift_small_for_overlapping_windows(self, small_matrix):
        """A one-step slide of a 128-point window can only move the correlation slightly."""
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=8, threshold=0.6
        )
        report = correlation_drift(small_matrix, query)
        assert report.mean_abs_drift < 0.1
        assert report.max_abs_drift <= 2.0
        assert report.fraction_within(0.2) > 0.9

    def test_drift_grows_with_step(self, small_matrix):
        small_step = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=8, threshold=0.6
        )
        large_step = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=128, threshold=0.6
        )
        drift_small = correlation_drift(small_matrix, small_step).mean_abs_drift
        drift_large = correlation_drift(small_matrix, large_step).mean_abs_drift
        assert drift_large > drift_small

    def test_constant_data_has_zero_drift(self):
        values = np.tile(np.linspace(0, 1, 256), (5, 1))
        values += np.random.default_rng(1).normal(scale=1e-6, size=values.shape)
        data = TimeSeriesMatrix(values)
        query = SlidingQuery(start=0, end=256, window=64, step=32, threshold=0.5)
        report = correlation_drift(data, query)
        assert report.mean_abs_drift < 0.05

    def test_pair_sampling(self, small_matrix, standard_query):
        full = correlation_drift(small_matrix, standard_query)
        sampled = correlation_drift(small_matrix, standard_query, max_pairs=10, seed=3)
        assert sampled.num_pairs == 10
        assert full.num_pairs == small_matrix.num_series * (small_matrix.num_series - 1) // 2
        # Sampled statistics stay in the same ballpark.
        assert sampled.mean_abs_drift == pytest.approx(full.mean_abs_drift, abs=0.1)

    def test_validation(self, small_matrix):
        single_window = SlidingQuery(
            start=0, end=small_matrix.length, window=small_matrix.length,
            step=small_matrix.length, threshold=0.5,
        )
        with pytest.raises(ExperimentError):
            correlation_drift(small_matrix, single_window)
        with pytest.raises(QueryValidationError):
            correlation_drift(
                small_matrix,
                SlidingQuery(start=0, end=small_matrix.length, window=128, step=32,
                             threshold=0.5),
                max_pairs=0,
            )


class TestCrossings:
    def test_counts_match_manual_computation(self, small_matrix, standard_query):
        report = threshold_crossings(small_matrix, standard_query)
        dense = dense_correlation_series(small_matrix, standard_query)
        n = small_matrix.num_series
        rows, cols = np.triu_indices(n, k=1)
        above = dense[:, rows, cols] >= standard_query.threshold
        expected_up = int(np.count_nonzero(~above[:-1] & above[1:]))
        expected_down = int(np.count_nonzero(above[:-1] & ~above[1:]))
        assert report.upward_crossings == expected_up
        assert report.downward_crossings == expected_down
        assert 0.0 <= report.crossing_rate <= 1.0

    def test_extreme_threshold_never_crossed(self, small_matrix, standard_query):
        report = threshold_crossings(small_matrix, standard_query, threshold=0.999999)
        assert report.upward_crossings == 0
        assert report.downward_crossings == 0
        assert report.mean_windows_between_crossings == float("inf")

    def test_absolute_mode_counts_negative_crossings(self, rng):
        x = rng.normal(size=256)
        data = TimeSeriesMatrix(np.stack([x, -x + 0.3 * rng.normal(size=256)]))
        query = SlidingQuery(
            start=0, end=256, window=64, step=32, threshold=0.8,
            threshold_mode="absolute",
        )
        signed = threshold_crossings(
            data,
            SlidingQuery(start=0, end=256, window=64, step=32, threshold=0.8),
        )
        absolute = threshold_crossings(data, query)
        total_signed = signed.upward_crossings + signed.downward_crossings
        total_absolute = absolute.upward_crossings + absolute.downward_crossings
        assert total_absolute >= total_signed


class TestSummary:
    def test_summary_combines_both_reports(self, small_matrix, standard_query):
        summary = stability_summary(small_matrix, standard_query, max_pairs=50)
        assert "mean_abs_drift" in summary
        assert "crossing_rate" in summary
        assert summary["threshold"] == standard_query.threshold
