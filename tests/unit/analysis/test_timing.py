"""Unit tests for timing helpers."""

import time

import pytest

from repro.analysis.timing import Timer, measure, speedup
from repro.exceptions import ExperimentError


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.seconds
        with timer:
            time.sleep(0.005)
        assert timer.seconds >= first

    def test_exit_without_enter(self):
        timer = Timer()
        with pytest.raises(ExperimentError):
            timer.__exit__(None, None, None)


class TestMeasure:
    def test_collects_requested_samples(self):
        summary = measure(lambda: sum(range(1000)), repeats=4, label="sum")
        assert len(summary.samples) == 4
        assert summary.label == "sum"
        assert summary.best <= summary.mean
        assert summary.std >= 0.0
        assert set(summary.as_dict()) == {"label", "best", "mean", "std"}

    def test_default_label_from_function_name(self):
        def workload():
            return 1

        assert measure(workload, repeats=1).label == "workload"

    def test_invalid_repeats(self):
        with pytest.raises(ExperimentError):
            measure(lambda: None, repeats=0)


class TestSpeedup:
    def test_ratio(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_candidate(self):
        assert speedup(1.0, 0.0) == float("inf")
        assert speedup(0.0, 0.0) == 1.0
