"""Unit tests for correlation significance tools (repro.analysis.significance)."""

import numpy as np
import pytest
from scipy import stats

from repro.analysis.significance import (
    correlation_confidence_interval,
    correlation_pvalue,
    edge_pvalues,
    evaluate_significance,
    filter_significant,
    fisher_z,
    fisher_z_inverse,
    significance_threshold,
)
from repro.baselines.brute_force import BruteForceEngine
from repro.core.query import SlidingQuery
from repro.exceptions import DataValidationError, QueryValidationError


class TestFisherTransform:
    def test_roundtrip(self):
        for r in (-0.95, -0.3, 0.0, 0.5, 0.99):
            assert fisher_z_inverse(fisher_z(r)) == pytest.approx(r, abs=1e-12)

    def test_vectorized(self):
        values = np.linspace(-0.9, 0.9, 7)
        assert np.allclose(fisher_z_inverse(fisher_z(values)), values, atol=1e-12)

    def test_handles_exact_one(self):
        assert np.isfinite(fisher_z(1.0))
        assert np.isfinite(fisher_z(-1.0))


class TestPValues:
    def test_matches_scipy_pearsonr(self, rng):
        x = rng.normal(size=60)
        y = 0.5 * x + rng.normal(size=60)
        r, p_scipy = stats.pearsonr(x, y)
        assert correlation_pvalue(r, 60) == pytest.approx(p_scipy, rel=1e-9)

    def test_zero_correlation_not_significant(self):
        assert correlation_pvalue(0.0, 100) == pytest.approx(1.0)

    def test_perfect_correlation_significant(self):
        assert correlation_pvalue(0.9999999, 30) < 1e-10

    def test_pvalue_decreases_with_sample_size(self):
        assert correlation_pvalue(0.3, 200) < correlation_pvalue(0.3, 20)

    def test_small_sample_rejected(self):
        with pytest.raises(QueryValidationError):
            correlation_pvalue(0.5, 3)


class TestThresholdAndInterval:
    def test_threshold_is_exactly_significant(self):
        n = 120
        threshold = significance_threshold(n, alpha=0.05)
        assert correlation_pvalue(threshold, n) == pytest.approx(0.05, abs=1e-9)

    def test_bonferroni_raises_threshold(self):
        plain = significance_threshold(120, alpha=0.05)
        corrected = significance_threshold(120, alpha=0.05, num_comparisons=1000)
        assert corrected > plain

    def test_threshold_shrinks_with_window_length(self):
        assert significance_threshold(1000) < significance_threshold(50)

    def test_confidence_interval_contains_estimate(self):
        low, high = correlation_confidence_interval(0.6, 100)
        assert low < 0.6 < high
        narrow_low, narrow_high = correlation_confidence_interval(0.6, 1000)
        assert (narrow_high - narrow_low) < (high - low)

    def test_parameter_validation(self):
        with pytest.raises(QueryValidationError):
            significance_threshold(100, alpha=0.0)
        with pytest.raises(QueryValidationError):
            significance_threshold(100, num_comparisons=0)
        with pytest.raises(QueryValidationError):
            correlation_confidence_interval(0.5, 100, confidence=1.5)


class TestResultLevel:
    @pytest.fixture
    def query_result(self, small_matrix, standard_query):
        return BruteForceEngine().run(small_matrix, standard_query)

    def test_evaluate_counts_edges(self, query_result):
        report = evaluate_significance(query_result, alpha=0.05)
        assert report.edges_total == query_result.total_edges()
        assert 0 <= report.edges_significant <= report.edges_total
        assert len(report.per_window_significant) == query_result.num_windows
        assert 0.0 <= report.significant_fraction <= 1.0

    def test_high_threshold_edges_are_significant(self, query_result):
        """beta=0.6 over 128-point windows is far above the significance floor."""
        report = evaluate_significance(query_result, alpha=0.05, bonferroni=False)
        assert report.significant_fraction == pytest.approx(1.0)

    def test_filter_keeps_query_and_drops_weak_edges(self, small_matrix):
        query = SlidingQuery(
            start=0, end=small_matrix.length, window=128, step=64, threshold=0.05
        )
        result = BruteForceEngine().run(small_matrix, query)
        filtered = filter_significant(result, alpha=0.001)
        assert filtered.query == result.query
        assert filtered.total_edges() <= result.total_edges()
        minimum = evaluate_significance(result, alpha=0.001).min_significant_correlation
        for matrix in filtered.matrices:
            if matrix.num_edges:
                assert np.all(np.abs(matrix.values) >= minimum - 1e-12)

    def test_filter_noop_when_threshold_already_significant(self, query_result):
        filtered = filter_significant(query_result, alpha=0.05, bonferroni=False)
        assert filtered is query_result

    def test_edge_pvalues(self, query_result):
        matrix = query_result[0]
        pvalues = edge_pvalues(matrix, query_result.query.window)
        assert pvalues.shape == (matrix.num_edges,)
        assert np.all((pvalues >= 0.0) & (pvalues <= 1.0))
        with pytest.raises(DataValidationError):
            edge_pvalues(matrix, 3)
