"""Unit tests for report table formatting."""

from repro.analysis.report import (
    format_markdown_table,
    format_table,
    rows_from_dicts,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta-long-name", 22.123456]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1].startswith("=")
        assert "name" in lines[2] and "value" in lines[2]
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "22.123" in text

    def test_float_formatting_modes(self):
        text = format_table(["x"], [[0.000001], [123456.0], [float("nan")], [True]])
        assert "e-06" in text
        assert "e+05" in text or "123456" in text
        assert "nan" in text
        assert "yes" in text

    def test_handles_ragged_rows_gracefully(self):
        text = format_table(["a", "b"], [["only-one"]])
        assert "only-one" in text


class TestMarkdownTable:
    def test_structure(self):
        text = format_markdown_table(["engine", "speedup"], [["dangoron", 9.6]])
        lines = text.splitlines()
        assert lines[0] == "| engine | speedup |"
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert "dangoron" in lines[2]


class TestRowsFromDicts:
    def test_union_of_keys_in_first_seen_order(self):
        records = [{"a": 1, "b": 2}, {"b": 3, "c": 4}]
        headers, rows = rows_from_dicts(records)
        assert headers == ["a", "b", "c"]
        assert rows[0] == [1, 2, ""]
        assert rows[1] == ["", 3, 4]

    def test_explicit_columns(self):
        records = [{"a": 1, "b": 2}]
        headers, rows = rows_from_dicts(records, columns=["b"])
        assert headers == ["b"]
        assert rows == [[2]]
