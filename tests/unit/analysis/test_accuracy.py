"""Unit tests for accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.accuracy import compare_results, matrix_rmse
from repro.core.query import SlidingQuery
from repro.core.result import CorrelationSeriesResult, EngineStats, ThresholdedMatrix
from repro.exceptions import ExperimentError


def build_result(edges_per_window, n=6, engine="candidate"):
    """Construct a result whose window k has the given (i, j, value) edges."""
    num_windows = len(edges_per_window)
    query = SlidingQuery(
        start=0, end=10 * (num_windows - 1) + 50, window=50, step=10, threshold=0.5
    )
    matrices = []
    for edges in edges_per_window:
        rows = np.array([e[0] for e in edges], dtype=int)
        cols = np.array([e[1] for e in edges], dtype=int)
        vals = np.array([e[2] for e in edges], dtype=float)
        matrices.append(ThresholdedMatrix(n, rows, cols, vals))
    return CorrelationSeriesResult(query, matrices, EngineStats(engine=engine))


class TestCompareResults:
    def test_identical_results_score_perfectly(self):
        edges = [[(0, 1, 0.9)], [(0, 1, 0.8), (2, 3, 0.7)]]
        reference = build_result(edges, engine="ref")
        candidate = build_result(edges)
        report = compare_results(candidate, reference)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0
        assert report.accuracy == 1.0
        assert report.value_rmse == 0.0

    def test_missing_edges_lower_recall_only(self):
        reference = build_result([[(0, 1, 0.9), (2, 3, 0.8)], [(0, 1, 0.9)]])
        candidate = build_result([[(0, 1, 0.9)], [(0, 1, 0.9)]])
        report = compare_results(candidate, reference)
        assert report.precision == 1.0
        assert report.recall == pytest.approx(2 / 3)
        assert 0 < report.f1 < 1

    def test_spurious_edges_lower_precision_only(self):
        reference = build_result([[(0, 1, 0.9)]])
        candidate = build_result([[(0, 1, 0.9), (4, 5, 0.6)]])
        report = compare_results(candidate, reference)
        assert report.recall == 1.0
        assert report.precision == pytest.approx(0.5)

    def test_value_errors_only_over_common_edges(self):
        reference = build_result([[(0, 1, 0.9), (2, 3, 0.8)]])
        candidate = build_result([[(0, 1, 0.7)]])
        report = compare_results(candidate, reference)
        assert report.value_max_error == pytest.approx(0.2)
        assert report.value_rmse == pytest.approx(0.2)

    def test_per_window_breakdown_and_worst_window(self):
        reference = build_result([[(0, 1, 0.9)], [(2, 3, 0.9)]])
        candidate = build_result([[(0, 1, 0.9)], []])
        report = compare_results(candidate, reference)
        assert report.windows[0].f1 == 1.0
        assert report.windows[1].recall == 0.0
        assert report.worst_window().window_index == 1

    def test_empty_windows_count_as_perfect(self):
        reference = build_result([[], []])
        candidate = build_result([[], []])
        report = compare_results(candidate, reference)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.windows[0].jaccard == 1.0

    def test_mismatched_shapes_rejected(self):
        a = build_result([[(0, 1, 0.9)]])
        b = build_result([[(0, 1, 0.9)], [(0, 1, 0.9)]])
        with pytest.raises(ExperimentError):
            compare_results(a, b)
        c = build_result([[(0, 1, 0.9)]], n=7)
        with pytest.raises(ExperimentError):
            compare_results(a, c)

    def test_as_dict_round_trip(self):
        report = compare_results(
            build_result([[(0, 1, 0.9)]]), build_result([[(0, 1, 0.9)]])
        )
        record = report.as_dict()
        assert record["precision"] == 1.0
        assert record["engine"] == "candidate"


class TestMatrixRmse:
    def test_zero_for_identical(self):
        result = build_result([[(0, 1, 0.9)]])
        assert matrix_rmse(result, result) == 0.0

    def test_positive_for_different_values(self):
        a = build_result([[(0, 1, 0.9)]])
        b = build_result([[(0, 1, 0.5)]])
        assert matrix_rmse(a, b) > 0.0

    def test_window_mismatch_rejected(self):
        a = build_result([[(0, 1, 0.9)]])
        b = build_result([[(0, 1, 0.9)], []])
        with pytest.raises(ExperimentError):
            matrix_rmse(a, b)
