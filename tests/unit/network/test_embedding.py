"""Unit tests for node features and spectral embeddings (repro.network.embedding)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.exceptions import DataValidationError
from repro.network.dynamic import DynamicNetwork
from repro.network.embedding import (
    NODE_FEATURE_NAMES,
    connectivity_fingerprints,
    embedding_series,
    feature_series,
    node_features,
    spectral_embedding,
)


def triangle_plus_isolate() -> nx.Graph:
    graph = nx.Graph()
    graph.add_weighted_edges_from([(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.7)])
    graph.add_node(3)
    return graph


class TestNodeFeatures:
    def test_feature_values_of_triangle(self):
        features = node_features(triangle_plus_isolate(), nodes=[0, 1, 2, 3])
        degree = features[:, NODE_FEATURE_NAMES.index("degree")]
        clustering = features[:, NODE_FEATURE_NAMES.index("clustering")]
        strength = features[:, NODE_FEATURE_NAMES.index("strength")]
        assert list(degree) == [2, 2, 2, 0]
        assert clustering[:3] == pytest.approx([1.0, 1.0, 1.0])
        assert strength[0] == pytest.approx(0.9 + 0.7)
        assert np.all(features[3] == 0)

    def test_missing_nodes_get_zero_rows(self):
        features = node_features(triangle_plus_isolate(), nodes=[0, 99])
        assert np.all(features[1] == 0)
        assert features.shape == (2, len(NODE_FEATURE_NAMES))

    def test_empty_graph(self):
        features = node_features(nx.Graph(), nodes=[1, 2])
        assert features.shape == (2, len(NODE_FEATURE_NAMES))
        assert np.all(features == 0)


class TestFeatureSeries:
    def test_series_shape_and_lookup(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        network = DynamicNetwork.from_result(result)
        series = feature_series(network)
        assert series.values.shape == (
            standard_query.num_windows,
            small_matrix.num_series,
            len(NODE_FEATURE_NAMES),
        )
        node = small_matrix.series_ids[0]
        degree_trajectory = series.node_series(node, "degree")
        assert len(degree_trajectory) == standard_query.num_windows
        assert series.flattened().shape == (
            standard_query.num_windows,
            small_matrix.num_series * len(NODE_FEATURE_NAMES),
        )

    def test_unknown_node_or_feature_rejected(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        series = feature_series(DynamicNetwork.from_result(result))
        with pytest.raises(DataValidationError):
            series.node_series("missing-node", "degree")
        with pytest.raises(DataValidationError):
            series.node_series(small_matrix.series_ids[0], "pagerank")

    def test_empty_sequence_rejected(self):
        with pytest.raises(DataValidationError):
            feature_series([])


class TestSpectralEmbedding:
    def test_shape_and_isolated_nodes_at_origin(self):
        embedding = spectral_embedding(triangle_plus_isolate(), dim=2, nodes=[0, 1, 2, 3])
        assert embedding.shape == (4, 2)
        assert np.all(embedding[3] == 0.0)
        assert np.any(embedding[:3] != 0.0)

    def test_two_cliques_separate_along_first_direction(self):
        graph = nx.Graph()
        for offset in (0, 5):
            for i in range(5):
                for j in range(i + 1, 5):
                    graph.add_edge(offset + i, offset + j, weight=1.0)
        graph.add_edge(0, 5, weight=0.1)
        nodes = list(range(10))
        embedding = spectral_embedding(graph, dim=1, nodes=nodes)
        left = embedding[:5, 0]
        right = embedding[5:, 0]
        assert np.sign(np.median(left)) != np.sign(np.median(right))

    def test_dimension_validation(self):
        graph = triangle_plus_isolate()
        with pytest.raises(DataValidationError):
            spectral_embedding(graph, dim=0)
        with pytest.raises(DataValidationError):
            spectral_embedding(graph, dim=10)

    def test_embedding_series_common_node_order(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        network = DynamicNetwork.from_result(result)
        embeddings = embedding_series(network, dim=2)
        assert len(embeddings) == standard_query.num_windows
        assert all(e.shape == (small_matrix.num_series, 2) for e in embeddings)


class TestFingerprints:
    def test_fingerprint_shape_and_values(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        fingerprints = connectivity_fingerprints(result)
        n = small_matrix.num_series
        assert fingerprints.shape == (standard_query.num_windows, n * (n - 1) // 2)
        # Every non-zero fingerprint entry is an above-threshold correlation.
        nonzero = fingerprints[fingerprints != 0.0]
        assert np.all(nonzero >= standard_query.threshold)

    def test_fingerprints_match_edge_counts(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        fingerprints = connectivity_fingerprints(result)
        for k, matrix in enumerate(result.matrices):
            assert np.count_nonzero(fingerprints[k]) == matrix.num_edges
