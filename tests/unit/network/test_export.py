"""Unit tests for network export/import helpers."""

import json

import networkx as nx
import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.exceptions import DataValidationError
from repro.network.builder import graph_from_matrix
from repro.network.export import (
    read_edge_list,
    write_adjacency_npz,
    write_edge_list,
    write_summary_json,
    write_temporal_edge_list,
)


@pytest.fixture(scope="module")
def result(small_matrix):
    from repro.core.query import SlidingQuery

    query = SlidingQuery(
        start=0, end=small_matrix.length, window=128, step=64, threshold=0.6
    )
    return BruteForceEngine().run(small_matrix, query)


class TestEdgeList:
    def test_round_trip(self, result, tmp_path):
        graph = graph_from_matrix(result[0], series_ids=result.series_ids)
        path = write_edge_list(graph, tmp_path / "edges.csv")
        loaded = read_edge_list(path)
        assert set(map(frozenset, loaded.edges())) == set(map(frozenset, graph.edges()))
        for u, v, data in graph.edges(data=True):
            assert loaded[str(u)][str(v)]["weight"] == pytest.approx(data["weight"])

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(DataValidationError):
            read_edge_list(tmp_path / "missing.csv")

    def test_read_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,0.5\n")
        with pytest.raises(DataValidationError):
            read_edge_list(path)

    def test_read_rejects_short_rows(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("source,target,weight\n1,2\n")
        with pytest.raises(DataValidationError):
            read_edge_list(path)

    def test_empty_graph_round_trip(self, tmp_path):
        path = write_edge_list(nx.Graph(), tmp_path / "empty.csv")
        assert read_edge_list(path).number_of_edges() == 0


class TestBulkExports:
    def test_adjacency_npz_contains_all_windows(self, result, tmp_path):
        path = write_adjacency_npz(result, tmp_path / "adjacency.npz")
        with np.load(path) as archive:
            windows = [
                k for k in archive.files
                if k.startswith("window_") and k != "window_starts"
            ]
            assert len(windows) == result.num_windows
            assert np.allclose(archive["window_00000"], result.dense(0))
            assert np.array_equal(archive["window_starts"], result.window_starts())

    def test_temporal_edge_list_rows(self, result, tmp_path):
        path = write_temporal_edge_list(result, tmp_path / "temporal.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "window,source,target,weight"
        assert len(lines) - 1 == result.total_edges()

    def test_summary_json(self, result, tmp_path):
        path = write_summary_json(result, tmp_path / "summary.json")
        payload = json.loads(path.read_text())
        assert payload["edge_counts"] == [int(m.num_edges) for m in result.matrices]
        assert "query" in payload and "stats" in payload
