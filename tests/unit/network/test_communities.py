"""Unit tests for community detection and blinking links (repro.network.communities)."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.network.communities import (
    blinking_links,
    consensus_communities,
    detect_communities,
    detect_communities_over_time,
    link_activity,
    partition_agreement,
)


def two_cliques(noise_edge: bool = False) -> nx.Graph:
    """Two 4-cliques, optionally joined by one bridge edge."""
    graph = nx.Graph()
    for offset in (0, 4):
        for i in range(4):
            for j in range(i + 1, 4):
                graph.add_edge(offset + i, offset + j, weight=0.9)
    if noise_edge:
        graph.add_edge(0, 4, weight=0.5)
    return graph


@pytest.fixture
def alternating_graphs():
    """Edge (0, 1) is always on; edge (2, 3) blinks on and off every window."""
    graphs = []
    for window in range(6):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1, weight=0.9)
        if window % 2 == 0:
            graph.add_edge(2, 3, weight=0.8)
        graphs.append(graph)
    return graphs


class TestDetection:
    @pytest.mark.parametrize("method", ["greedy", "label_propagation"])
    def test_two_cliques_found(self, method):
        communities = detect_communities(two_cliques(), method=method)
        as_sets = {frozenset(c) for c in communities}
        assert frozenset({0, 1, 2, 3}) in as_sets
        assert frozenset({4, 5, 6, 7}) in as_sets

    def test_empty_graph_gives_singletons(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        communities = detect_communities(graph)
        assert sorted(len(c) for c in communities) == [1, 1, 1, 1, 1]

    def test_unknown_method_rejected(self):
        with pytest.raises(DataValidationError):
            detect_communities(two_cliques(), method="louvain-magic")

    def test_timeline_over_windows(self):
        graphs = [two_cliques(), two_cliques(noise_edge=True), two_cliques()]
        timeline = detect_communities_over_time(graphs)
        assert timeline.num_windows == 3
        assert np.all(timeline.num_communities() >= 2)
        membership = timeline.membership(0)
        assert membership[0] == membership[1]
        assert membership[0] != membership[7]

    def test_stability_high_for_static_structure(self):
        graphs = [two_cliques() for _ in range(4)]
        timeline = detect_communities_over_time(graphs)
        assert np.all(timeline.stability_series() == pytest.approx(1.0))

    def test_node_community_series(self):
        graphs = [two_cliques(), two_cliques()]
        timeline = detect_communities_over_time(graphs)
        series = timeline.node_community_series(0)
        assert len(series) == 2
        assert all(value is not None for value in series)
        missing = timeline.node_community_series("not-a-node")
        assert missing == [None, None]


class TestPartitionAgreement:
    def test_identical_partitions_agree_fully(self):
        partition = [{0, 1}, {2, 3}]
        assert partition_agreement(partition, partition) == pytest.approx(1.0)

    def test_orthogonal_partitions_agree_less(self):
        first = [{0, 1}, {2, 3}]
        second = [{0, 2}, {1, 3}]
        assert partition_agreement(first, second) < 0.5

    def test_disjoint_node_sets_default_to_one(self):
        assert partition_agreement([{0}], [{1}]) == pytest.approx(1.0)


class TestConsensus:
    def test_consensus_matches_stable_structure(self):
        graphs = [two_cliques(), two_cliques(noise_edge=True), two_cliques()]
        communities = consensus_communities(graphs, min_persistence=0.9)
        as_sets = {frozenset(c) for c in communities}
        assert frozenset({0, 1, 2, 3}) in as_sets
        assert frozenset({4, 5, 6, 7}) in as_sets

    def test_invalid_persistence_rejected(self):
        with pytest.raises(DataValidationError):
            consensus_communities([two_cliques()], min_persistence=1.5)

    def test_empty_sequence_rejected(self):
        with pytest.raises(DataValidationError):
            consensus_communities([])


class TestBlinkingLinks:
    def test_activity_matrix_shape_and_persistence(self, alternating_graphs):
        activity = link_activity(alternating_graphs)
        assert activity.activity.shape == (2, 6)
        persistence = dict(zip(activity.edges, activity.persistence()))
        assert persistence[(0, 1)] == pytest.approx(1.0)
        assert persistence[(2, 3)] == pytest.approx(0.5)

    def test_blinking_edges_ranked_by_transitions(self, alternating_graphs):
        blinking = blinking_links(alternating_graphs, min_transitions=2)
        assert blinking[0][0] == (2, 3)
        assert blinking[0][1] == 5  # six windows, flips at every transition
        # The always-on edge never flips and is excluded.
        assert all(edge != (0, 1) for edge, _ in blinking)

    def test_blinking_fraction(self, alternating_graphs):
        activity = link_activity(alternating_graphs)
        assert activity.blinking_fraction(min_transitions=2) == pytest.approx(0.5)

    def test_min_transitions_validated(self, alternating_graphs):
        with pytest.raises(DataValidationError):
            link_activity(alternating_graphs).blinking_edges(min_transitions=0)

    def test_single_window_has_no_transitions(self):
        graph = two_cliques()
        activity = link_activity([graph])
        assert np.all(activity.transitions() == 0)
        assert blinking_links([graph]) == []

    def test_works_with_dynamic_network(self, small_matrix, standard_query):
        from repro.baselines.brute_force import BruteForceEngine
        from repro.network.dynamic import DynamicNetwork

        result = BruteForceEngine().run(small_matrix, standard_query)
        network = DynamicNetwork.from_result(result)
        activity = link_activity(network)
        assert activity.num_windows == standard_query.num_windows
        timeline = detect_communities_over_time(network)
        assert timeline.num_windows == standard_query.num_windows
