"""Unit tests for dynamic-network views."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.query import SlidingQuery
from repro.exceptions import DataValidationError
from repro.network.dynamic import DynamicNetwork, dynamic_network, persistence_graph


@pytest.fixture(scope="module")
def result(tomborg_matrix):
    query = SlidingQuery(
        start=0, end=tomborg_matrix.length, window=256, step=128, threshold=0.6
    )
    return BruteForceEngine().run(tomborg_matrix, query)


@pytest.fixture(scope="module")
def network(result):
    return DynamicNetwork.from_result(result)


class TestDynamicNetwork:
    def test_one_graph_per_window(self, result, network):
        assert len(network) == result.num_windows
        assert network[0].number_of_nodes() == result.num_series

    def test_edge_count_series_matches_result(self, result, network):
        assert list(network.edge_count_series()) == list(result.edge_count_series())

    def test_summaries_per_window(self, network):
        summaries = network.summaries()
        assert len(summaries) == len(network)
        assert all(s.num_nodes == network[0].number_of_nodes() for s in summaries)

    def test_stability_series_length(self, network):
        assert len(network.stability_series()) == len(network) - 1

    def test_change_points_at_segment_boundary(self, tomborg_dataset, network, result):
        """The Tomborg fixture switches correlation structure half way through."""
        boundary_column = tomborg_dataset.segments[1].start
        change_points = network.change_points(max_jaccard=0.6)
        assert change_points, "expected at least one change point"
        starts = result.window_starts()
        distances = [
            abs(int(starts[cp.window_index]) - boundary_column) for cp in change_points
        ]
        assert min(distances) <= 256

    def test_degree_series_for_node(self, network, result):
        node = result.series_ids[0]
        degrees = network.degree_series(node)
        assert len(degrees) == len(network)
        assert np.all(degrees >= 0)

    def test_edge_persistence_and_backbone(self, network):
        persistence = network.edge_persistence()
        assert all(0 < value <= 1.0 for value in persistence.values())
        backbone = network.backbone(min_persistence=0.5)
        assert backbone.number_of_edges() <= len(persistence)

    def test_change_point_validation(self, network):
        with pytest.raises(DataValidationError):
            network.change_points(max_jaccard=2.0)

    def test_constructor_validation(self, network):
        with pytest.raises(DataValidationError):
            DynamicNetwork([])
        with pytest.raises(DataValidationError):
            DynamicNetwork(network.graphs, window_starts=np.arange(3))

    def test_helper_functions(self, result):
        assert len(dynamic_network(result)) == result.num_windows
        graph = persistence_graph(result, min_persistence=0.99)
        assert graph.number_of_nodes() == result.num_series
