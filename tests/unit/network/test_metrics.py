"""Unit tests for network metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.network.metrics import (
    community_agreement,
    degree_histogram,
    edge_jaccard,
    greedy_communities,
    summarize,
    temporal_stability,
)


@pytest.fixture
def two_cliques():
    graph = nx.Graph()
    graph.add_weighted_edges_from(
        [(0, 1, 0.9), (0, 2, 0.8), (1, 2, 0.85), (3, 4, 0.9), (3, 5, 0.8), (4, 5, 0.7)]
    )
    return graph


class TestSummarize:
    def test_summary_values(self, two_cliques):
        summary = summarize(two_cliques)
        assert summary.num_nodes == 6
        assert summary.num_edges == 6
        assert summary.num_components == 2
        assert summary.largest_component == 3
        assert summary.mean_degree == pytest.approx(2.0)
        assert summary.clustering == pytest.approx(1.0)
        assert 0.7 <= summary.mean_weight <= 0.9
        assert set(summary.as_dict()) >= {"density", "num_edges"}

    def test_empty_graph_with_nodes(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        summary = summarize(graph)
        assert summary.num_edges == 0
        assert summary.density == 0.0
        assert summary.clustering == 0.0

    def test_totally_empty_graph_rejected(self):
        with pytest.raises(DataValidationError):
            summarize(nx.Graph())


class TestDegreeAndJaccard:
    def test_degree_histogram(self, two_cliques):
        histogram = degree_histogram(two_cliques)
        assert histogram[2] == 6

    def test_edge_jaccard_identical(self, two_cliques):
        assert edge_jaccard(two_cliques, two_cliques) == 1.0

    def test_edge_jaccard_disjoint(self):
        a = nx.Graph([(0, 1)])
        b = nx.Graph([(2, 3)])
        assert edge_jaccard(a, b) == 0.0

    def test_edge_jaccard_empty_graphs(self):
        assert edge_jaccard(nx.Graph(), nx.Graph()) == 1.0

    def test_temporal_stability_series(self, two_cliques):
        modified = two_cliques.copy()
        modified.remove_edge(0, 1)
        series = temporal_stability([two_cliques, two_cliques, modified])
        assert len(series) == 2
        assert series[0] == pytest.approx(1.0)
        assert series[1] < 1.0

    def test_temporal_stability_short_input(self, two_cliques):
        assert temporal_stability([two_cliques]).shape == (0,)


class TestCommunities:
    def test_greedy_communities_find_cliques(self, two_cliques):
        communities = greedy_communities(two_cliques)
        assert {frozenset(c) for c in communities} == {
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5}),
        }

    def test_empty_graph_each_node_alone(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(3))
        communities = greedy_communities(graph)
        assert len(communities) == 3

    def test_community_agreement_perfect(self, two_cliques):
        labels = {0: "a", 1: "a", 2: "a", 3: "b", 4: "b", 5: "b"}
        communities = greedy_communities(two_cliques)
        assert community_agreement(communities, labels) == pytest.approx(1.0)

    def test_community_agreement_random_labels_lower(self, two_cliques):
        labels = {0: "a", 1: "b", 2: "a", 3: "b", 4: "a", 5: "b"}
        communities = greedy_communities(two_cliques)
        assert community_agreement(communities, labels) < 1.0

    def test_community_agreement_trivial_cases(self):
        assert community_agreement([{0}], {0: 1}) == 1.0
