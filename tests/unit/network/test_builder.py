"""Unit tests for graph construction from thresholded matrices."""

import numpy as np
import pytest

from repro.baselines.brute_force import BruteForceEngine
from repro.core.result import ThresholdedMatrix
from repro.exceptions import DataValidationError
from repro.network.builder import graph_from_matrix, graphs_from_result, union_graph


@pytest.fixture
def matrix():
    return ThresholdedMatrix(
        5, np.array([0, 1]), np.array([2, 3]), np.array([0.9, 0.75])
    )


class TestGraphFromMatrix:
    def test_nodes_and_edges(self, matrix):
        graph = graph_from_matrix(matrix)
        assert graph.number_of_nodes() == 5
        assert graph.number_of_edges() == 2
        assert graph.has_edge(0, 2)
        assert graph[0][2]["weight"] == pytest.approx(0.9)

    def test_isolated_nodes_kept(self, matrix):
        graph = graph_from_matrix(matrix)
        assert 4 in graph.nodes

    def test_series_ids_as_node_labels(self, matrix):
        graph = graph_from_matrix(matrix, series_ids=list("abcde"))
        assert graph.has_edge("a", "c")
        assert "e" in graph.nodes

    def test_series_ids_length_mismatch(self, matrix):
        with pytest.raises(DataValidationError):
            graph_from_matrix(matrix, series_ids=["a", "b"])


class TestResultGraphs:
    def test_one_graph_per_window(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        graphs = graphs_from_result(result)
        assert len(graphs) == result.num_windows
        for graph, matrix in zip(graphs, result.matrices):
            assert graph.number_of_edges() == matrix.num_edges
            assert graph.number_of_nodes() == small_matrix.num_series

    def test_union_graph_persistence_weights(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        union = union_graph(result, min_persistence=0.0, use_series_ids=False)
        all_edges = set()
        for matrix in result.matrices:
            all_edges |= matrix.edge_set()
        assert union.number_of_edges() == len(all_edges)
        for _, _, data in union.edges(data=True):
            assert 0.0 < data["persistence"] <= 1.0
            assert -1.0 <= data["weight"] <= 1.0

    def test_union_graph_min_persistence_filters(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        loose = union_graph(result, min_persistence=0.0)
        strict = union_graph(result, min_persistence=0.9)
        assert strict.number_of_edges() <= loose.number_of_edges()

    def test_union_graph_validation(self, small_matrix, standard_query):
        result = BruteForceEngine().run(small_matrix, standard_query)
        with pytest.raises(DataValidationError):
            union_graph(result, min_persistence=1.5)
