"""Unit tests for the synthetic USCRN climate generator."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.datasets.climate import SyntheticUSCRN
from repro.exceptions import GenerationError


class TestSyntheticUSCRN:
    @pytest.fixture(scope="class")
    def generator(self):
        return SyntheticUSCRN(num_stations=30, num_days=30, seed=99)

    @pytest.fixture(scope="class")
    def raw(self, generator):
        return generator.generate()

    def test_shape_and_ids(self, generator, raw):
        assert raw.shape == (30, 30 * 24)
        assert len(set(raw.series_ids)) == 30
        assert raw.series_ids[0].startswith("USCRN-")
        assert len(generator.stations) == 30

    def test_station_coordinates_inside_conus(self, generator, raw):
        for station in generator.stations:
            assert 25.0 <= station.latitude <= 49.0
            assert -124.0 <= station.longitude <= -67.0

    def test_temperatures_physically_plausible(self, raw):
        assert raw.values.min() > -60.0
        assert raw.values.max() < 70.0

    def test_diurnal_cycle_present_in_raw_data(self, raw):
        series = raw.values[0]
        hours = np.arange(raw.length) % 24
        day_mean = series[(hours >= 12) & (hours < 18)].mean()
        night_mean = series[(hours >= 0) & (hours < 6)].mean()
        assert abs(day_mean - night_mean) > 0.5

    def test_reproducible_with_seed(self):
        a = SyntheticUSCRN(num_stations=10, num_days=5, seed=1).generate()
        b = SyntheticUSCRN(num_stations=10, num_days=5, seed=1).generate()
        c = SyntheticUSCRN(num_stations=10, num_days=5, seed=2).generate()
        assert np.array_equal(a.values, b.values)
        assert not np.array_equal(a.values, c.values)

    def test_raw_correlations_exceed_anomaly_correlations(self, generator, raw):
        """Shared diurnal/seasonal cycles inflate raw correlations."""
        iu = np.triu_indices(raw.num_series, k=1)
        raw_median = np.median(correlation_matrix(raw.values)[iu])
        anomaly_median = np.median(
            correlation_matrix(generator.generate_anomalies().values)[iu]
        )
        assert raw_median > anomaly_median + 0.2

    def test_anomalies_have_wider_correlation_spread(self, generator):
        anomalies = generator.generate_anomalies()
        corr = correlation_matrix(anomalies.values)
        iu = np.triu_indices(anomalies.num_series, k=1)
        values = corr[iu]
        # After removing cycles the network is no longer near-complete.
        assert np.median(values) < 0.6
        assert values.max() > np.median(values) + 0.1

    def test_anomalies_remove_diurnal_cycle(self, generator):
        anomalies = generator.generate_anomalies()
        series = anomalies.values[0]
        hours = np.arange(anomalies.length) % 24
        day_mean = series[(hours >= 12) & (hours < 18)].mean()
        night_mean = series[(hours >= 0) & (hours < 6)].mean()
        assert abs(day_mean - night_mean) < 0.5

    def test_nearby_stations_more_correlated_than_distant(self, generator):
        anomalies = generator.generate_anomalies()
        corr = correlation_matrix(anomalies.values)
        stations = generator.stations
        distances = np.zeros_like(corr)
        for i, a in enumerate(stations):
            for j, b in enumerate(stations):
                distances[i, j] = np.hypot(
                    a.latitude - b.latitude, a.longitude - b.longitude
                )
        iu = np.triu_indices(len(stations), k=1)
        near = corr[iu][distances[iu] < 10.0]
        far = corr[iu][distances[iu] > 30.0]
        assert near.mean() > far.mean()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_stations": 1},
            {"num_days": 0},
            {"num_regions": 0},
            {"correlation_length_degrees": 0.0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        params = dict(num_stations=5, num_days=2)
        params.update(kwargs)
        with pytest.raises(GenerationError):
            SyntheticUSCRN(**params)
