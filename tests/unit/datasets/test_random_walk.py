"""Unit tests for the elementary stochastic-process generators."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.datasets.random_walk import (
    ar1_series,
    random_walks,
    sinusoid_mixture,
    white_noise,
)
from repro.exceptions import GenerationError


class TestWhiteNoise:
    def test_shape_and_statistics(self):
        matrix = white_noise(10, 2000, seed=1)
        assert matrix.shape == (10, 2000)
        assert abs(matrix.values.mean()) < 0.1
        assert abs(matrix.values.std() - 1.0) < 0.1

    def test_independent_series_weakly_correlated(self):
        corr = correlation_matrix(white_noise(10, 4000, seed=2).values)
        iu = np.triu_indices(10, k=1)
        assert np.abs(corr[iu]).max() < 0.15

    def test_validation(self):
        with pytest.raises(GenerationError):
            white_noise(0, 100)
        with pytest.raises(GenerationError):
            white_noise(2, 1)


class TestRandomWalks:
    def test_steps_accumulate(self):
        matrix = random_walks(3, 500, seed=3)
        diffs = np.diff(matrix.values, axis=1)
        assert abs(diffs.std() - 1.0) < 0.1

    def test_spurious_correlations_are_large(self):
        corr = correlation_matrix(random_walks(8, 800, seed=4).values)
        iu = np.triu_indices(8, k=1)
        assert np.abs(corr[iu]).max() > 0.5

    def test_step_scale_validation(self):
        with pytest.raises(GenerationError):
            random_walks(2, 100, step_scale=0.0)


class TestAR1:
    def test_autocorrelation_matches_coefficient(self):
        matrix = ar1_series(1, 20000, coefficient=0.8, seed=5)
        series = matrix.values[0]
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 == pytest.approx(0.8, abs=0.05)

    def test_shared_innovations_create_cross_correlation(self):
        independent = ar1_series(10, 3000, shared_innovation_weight=0.0, seed=6)
        shared = ar1_series(10, 3000, shared_innovation_weight=0.8, seed=6)
        iu = np.triu_indices(10, k=1)
        assert (
            correlation_matrix(shared.values)[iu].mean()
            > correlation_matrix(independent.values)[iu].mean() + 0.3
        )

    def test_unit_marginal_variance(self):
        matrix = ar1_series(5, 10000, coefficient=0.9, seed=7)
        assert np.allclose(matrix.values.std(axis=1), 1.0, atol=0.15)

    def test_validation(self):
        with pytest.raises(GenerationError):
            ar1_series(2, 100, coefficient=1.0)
        with pytest.raises(GenerationError):
            ar1_series(2, 100, shared_innovation_weight=1.0)


class TestSinusoidMixture:
    def test_energy_concentrated_in_few_frequencies(self):
        matrix = sinusoid_mixture(4, 1024, num_tones=2, noise_scale=0.05, seed=8)
        spectrum = np.abs(np.fft.rfft(matrix.values[0])) ** 2
        top_share = np.sort(spectrum)[::-1][:6].sum() / spectrum.sum()
        assert top_share > 0.8

    def test_shared_tones_create_correlations(self):
        corr = correlation_matrix(
            sinusoid_mixture(8, 2048, num_tones=1, noise_scale=0.1, seed=9).values
        )
        iu = np.triu_indices(8, k=1)
        assert np.abs(corr[iu]).mean() > 0.3

    def test_validation(self):
        with pytest.raises(GenerationError):
            sinusoid_mixture(2, 100, num_tones=0)
        with pytest.raises(GenerationError):
            sinusoid_mixture(2, 100, noise_scale=-1.0)
