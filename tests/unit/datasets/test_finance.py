"""Unit tests for the synthetic market generator."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.datasets.finance import SyntheticMarket, crisis_edge_density
from repro.exceptions import GenerationError


class TestSyntheticMarket:
    @pytest.fixture(scope="class")
    def market(self):
        return SyntheticMarket(
            num_assets=24,
            num_days=600,
            num_sectors=4,
            crisis_periods=[(300, 360)],
            seed=55,
        )

    @pytest.fixture(scope="class")
    def returns(self, market):
        return market.generate_returns()

    def test_shape_and_tickers(self, market, returns):
        assert returns.shape == (24, 600)
        assert len(set(returns.series_ids)) == 24

    def test_sector_labels_round_robin(self, market):
        labels = market.sector_labels()
        assert len(labels) == 24
        assert set(labels) == {0, 1, 2, 3}

    def test_same_sector_more_correlated(self, market, returns):
        labels = market.sector_labels()
        corr = correlation_matrix(returns.values)
        same, different = [], []
        for i in range(24):
            for j in range(i + 1, 24):
                (same if labels[i] == labels[j] else different).append(corr[i, j])
        assert np.mean(same) > np.mean(different)

    def test_crisis_period_raises_correlations(self, market, returns):
        crisis = correlation_matrix(returns.values[:, 300:360])
        calm = correlation_matrix(returns.values[:, 100:160])
        iu = np.triu_indices(24, k=1)
        assert crisis[iu].mean() > calm[iu].mean()

    def test_prices_positive_and_start_near_initial(self, market):
        prices = market.generate_prices(initial_price=50.0)
        assert np.all(prices.values > 0)
        assert np.allclose(prices.values[:, 0], 50.0, rtol=0.2)

    def test_reproducible(self):
        a = SyntheticMarket(num_assets=10, num_days=100, seed=3).generate_returns()
        b = SyntheticMarket(num_assets=10, num_days=100, seed=3).generate_returns()
        assert np.array_equal(a.values, b.values)

    def test_volatility_clustering_optional(self):
        clustered = SyntheticMarket(
            num_assets=10, num_days=400, volatility_clustering=True, seed=9
        ).generate_returns()
        flat = SyntheticMarket(
            num_assets=10, num_days=400, volatility_clustering=False, seed=9
        ).generate_returns()
        # Clustered volatility -> larger autocorrelation of squared returns.
        def vol_autocorr(matrix):
            squared = matrix.values**2
            first = squared[:, :-1].ravel()
            second = squared[:, 1:].ravel()
            return np.corrcoef(first, second)[0, 1]

        assert vol_autocorr(clustered) > vol_autocorr(flat)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_assets": 1},
            {"num_days": 1},
            {"num_sectors": 0},
            {"crisis_periods": [(50, 40)]},
            {"crisis_periods": [(0, 10_000)]},
            {"crisis_multiplier": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(num_assets=10, num_days=100)
        params.update(kwargs)
        with pytest.raises(GenerationError):
            SyntheticMarket(**params)


class TestCrisisEdgeDensity:
    def test_partitions_windows(self):
        edges = np.array([1, 2, 10, 12, 3])
        starts = np.array([0, 50, 100, 150, 200])
        crisis_mean, calm_mean = crisis_edge_density(edges, starts, [(100, 200)])
        assert crisis_mean == pytest.approx(11.0)
        assert calm_mean == pytest.approx(2.0)

    def test_no_crisis_periods(self):
        crisis_mean, calm_mean = crisis_edge_density(
            np.array([1.0, 2.0]), np.array([0, 10]), []
        )
        assert crisis_mean == 0.0
        assert calm_mean == pytest.approx(1.5)
