"""Unit tests for dataset loaders and writers (USCRN format, wide CSV)."""

import numpy as np
import pytest

from repro.datasets.climate import SyntheticUSCRN
from repro.datasets.loaders import (
    USCRN_MISSING,
    load_uscrn_hourly,
    load_wide_csv,
    station_dictionary,
    write_uscrn_hourly,
    write_wide_csv,
)
from repro.exceptions import DataValidationError
from repro.timeseries.matrix import TimeSeriesMatrix


@pytest.fixture(scope="module")
def climate_matrix():
    return SyntheticUSCRN(num_stations=4, num_days=3, seed=77).generate()


class TestUSCRNRoundTrip:
    def test_write_then_load_recovers_values(self, climate_matrix, tmp_path):
        paths = write_uscrn_hourly(climate_matrix, tmp_path / "uscrn")
        assert len(paths) == climate_matrix.num_series
        loaded = load_uscrn_hourly(paths)
        assert loaded.num_series == climate_matrix.num_series
        assert loaded.length == climate_matrix.length
        # The USCRN text format stores temperatures to 0.1 degC, so the round
        # trip is exact only up to that quantisation.
        assert np.allclose(loaded.values, climate_matrix.values, atol=0.051)

    def test_loaded_series_ids_match_filenames(self, climate_matrix, tmp_path):
        paths = write_uscrn_hourly(climate_matrix, tmp_path / "u2")
        loaded = load_uscrn_hourly(sorted(paths))
        assert sorted(loaded.series_ids) == sorted(climate_matrix.series_ids)

    def test_missing_sentinel_is_interpolated(self, tmp_path):
        matrix = TimeSeriesMatrix(np.arange(48, dtype=float).reshape(1, 48) + 10.0,
                                  series_ids=["STA"])
        (path,) = write_uscrn_hourly(matrix, tmp_path / "u3")
        content = path.read_text().splitlines()
        fields = content[5].split()
        fields[8] = f"{USCRN_MISSING:.1f}"
        content[5] = " ".join(fields)
        path.write_text("\n".join(content) + "\n")
        loaded = load_uscrn_hourly([path])
        assert not loaded.has_missing()
        assert loaded.values[0, 5] == pytest.approx(15.0, abs=0.5)

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_uscrn_hourly([path])

    def test_load_rejects_malformed_rows(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("12345 20200101\n")
        with pytest.raises(DataValidationError):
            load_uscrn_hourly([path])

    def test_load_rejects_no_paths_and_bad_column(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_uscrn_hourly([])
        path = tmp_path / "x.txt"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_uscrn_hourly([path], variable_column="NOT_A_COLUMN")

    def test_write_rejects_unknown_column(self, climate_matrix, tmp_path):
        with pytest.raises(DataValidationError):
            write_uscrn_hourly(climate_matrix, tmp_path, variable_column="XYZ")


class TestWideCsv:
    def test_round_trip(self, tmp_path, rng):
        matrix = TimeSeriesMatrix(
            rng.normal(size=(3, 25)), series_ids=["a", "b", "c"]
        )
        path = write_wide_csv(matrix, tmp_path / "wide.csv")
        loaded = load_wide_csv(path)
        assert loaded.series_ids == ["a", "b", "c"]
        assert np.allclose(loaded.values, matrix.values)

    def test_rejects_missing_and_ragged_files(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("series_id,t0,t1\na,1,2\nb,1\n")
        with pytest.raises(DataValidationError):
            load_wide_csv(path)
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(DataValidationError):
            load_wide_csv(empty)

    def test_rejects_non_numeric_values(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("series_id,t0,t1\na,1,hello\n")
        with pytest.raises(DataValidationError):
            load_wide_csv(path)


class TestStationDictionary:
    def test_maps_ids_to_rows(self, climate_matrix):
        mapping = station_dictionary(climate_matrix)
        assert set(mapping) == set(climate_matrix.series_ids)
        first = climate_matrix.series_ids[0]
        assert np.array_equal(mapping[first], climate_matrix.series(first))
