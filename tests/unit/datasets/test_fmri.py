"""Unit tests for the synthetic BOLD fMRI generator."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.datasets.fmri import (
    SyntheticBOLD,
    hemodynamic_response,
    region_average_matrix,
)
from repro.exceptions import GenerationError


class TestHemodynamicResponse:
    def test_shape_and_normalization(self):
        hrf = hemodynamic_response(duration_seconds=30.0, tr_seconds=2.0)
        assert len(hrf) == 15
        assert np.abs(hrf).sum() == pytest.approx(1.0)

    def test_peak_before_undershoot(self):
        hrf = hemodynamic_response(duration_seconds=32.0, tr_seconds=1.0)
        peak_index = int(np.argmax(hrf))
        trough_index = int(np.argmin(hrf))
        assert 2 <= peak_index <= 8
        assert trough_index > peak_index

    def test_validation(self):
        with pytest.raises(GenerationError):
            hemodynamic_response(duration_seconds=0.0)


class TestSyntheticBOLD:
    @pytest.fixture(scope="class")
    def generated(self):
        generator = SyntheticBOLD(
            grid_shape=(4, 4, 2), num_regions=4, num_volumes=300, seed=31
        )
        matrix, labels = generator.generate()
        return generator, matrix, labels

    def test_shapes(self, generated):
        generator, matrix, labels = generated
        assert matrix.shape == (32, 300)
        assert labels.shape == (32,)
        assert set(np.unique(labels)) <= set(range(4))

    def test_every_region_nonempty(self, generated):
        _, _, labels = generated
        counts = np.bincount(labels, minlength=4)
        assert np.all(counts > 0)

    def test_within_region_correlation_exceeds_between(self, generated):
        _, matrix, labels = generated
        corr = correlation_matrix(matrix.values)
        n = matrix.num_series
        within, between = [], []
        for i in range(n):
            for j in range(i + 1, n):
                (within if labels[i] == labels[j] else between).append(corr[i, j])
        assert np.mean(within) > np.mean(between) + 0.1

    def test_time_axis_uses_tr(self, generated):
        generator, matrix, _ = generated
        assert matrix.time_axis.resolution == generator.tr_seconds

    def test_reproducible(self):
        a = SyntheticBOLD(grid_shape=(3, 3, 2), num_volumes=100, num_regions=3, seed=7)
        b = SyntheticBOLD(grid_shape=(3, 3, 2), num_volumes=100, num_regions=3, seed=7)
        assert np.array_equal(a.generate()[0].values, b.generate()[0].values)

    def test_spike_artifacts_increase_amplitude(self):
        calm = SyntheticBOLD(grid_shape=(3, 3, 1), num_regions=3, num_volumes=200,
                             spike_probability=0.0, seed=8).generate()[0]
        spiky = SyntheticBOLD(grid_shape=(3, 3, 1), num_regions=3, num_volumes=200,
                              spike_probability=0.2, seed=8).generate()[0]
        assert spiky.values.max() > calm.values.max()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"grid_shape": (0, 3, 3)},
            {"num_regions": 0},
            {"num_volumes": 4},
            {"num_regions": 1000},
        ],
    )
    def test_validation(self, kwargs):
        params = dict(grid_shape=(3, 3, 2), num_regions=3, num_volumes=100)
        params.update(kwargs)
        with pytest.raises(GenerationError):
            SyntheticBOLD(**params)


class TestRegionAverages:
    def test_region_average_matrix(self):
        generator = SyntheticBOLD(
            grid_shape=(3, 3, 2), num_regions=4, num_volumes=120, seed=12
        )
        matrix, labels = generator.generate()
        regions = region_average_matrix(matrix, labels)
        assert regions.num_series == len(np.unique(labels))
        assert regions.length == matrix.length
        first_region = int(np.unique(labels)[0])
        expected = matrix.values[labels == first_region].mean(axis=0)
        assert np.allclose(regions.values[0], expected)

    def test_label_length_mismatch(self):
        generator = SyntheticBOLD(grid_shape=(2, 2, 2), num_regions=2, num_volumes=50, seed=1)
        matrix, labels = generator.generate()
        with pytest.raises(GenerationError):
            region_average_matrix(matrix, labels[:-1])
