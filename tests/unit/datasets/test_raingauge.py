"""Unit tests for the rain-gauge dataset simulator (repro.datasets.raingauge)."""

import numpy as np
import pytest

from repro.core.correlation import correlation_matrix
from repro.datasets.raingauge import SyntheticRainGauges, _normal_quantile
from repro.exceptions import GenerationError


@pytest.fixture(scope="module")
def rainfall():
    generator = SyntheticRainGauges(num_gauges=30, num_days=730, seed=5)
    return generator, generator.generate()


class TestGeneration:
    def test_shape_and_metadata(self, rainfall):
        generator, matrix = rainfall
        assert matrix.shape == (30, 730)
        assert len(generator.gauges) == 30
        assert matrix.series_ids[0] == "GAUGE-000"

    def test_rainfall_is_non_negative_and_zero_inflated(self, rainfall):
        _, matrix = rainfall
        values = matrix.values
        assert np.all(values >= 0.0)
        dry_fraction = np.mean(values == 0.0)
        assert 0.3 < dry_fraction < 0.9

    def test_wet_day_amounts_right_skewed(self, rainfall):
        _, matrix = rainfall
        wet = matrix.values[matrix.values > 0]
        assert wet.mean() > np.median(wet)

    def test_nearby_gauges_more_correlated_than_remote(self, rainfall):
        generator, matrix = rainfall
        corr = correlation_matrix(matrix.values)
        lats = np.array([g.latitude for g in generator.gauges])
        lons = np.array([g.longitude for g in generator.gauges])
        distance = np.sqrt(
            (lats[:, None] - lats[None, :]) ** 2 + (lons[:, None] - lons[None, :]) ** 2
        )
        iu, ju = np.triu_indices(len(lats), k=1)
        near = distance[iu, ju] < np.percentile(distance[iu, ju], 20)
        far = distance[iu, ju] > np.percentile(distance[iu, ju], 80)
        assert corr[iu, ju][near].mean() > corr[iu, ju][far].mean()

    def test_reproducible_with_seed(self):
        first = SyntheticRainGauges(num_gauges=8, num_days=100, seed=2).generate()
        second = SyntheticRainGauges(num_gauges=8, num_days=100, seed=2).generate()
        assert np.array_equal(first.values, second.values)
        different = SyntheticRainGauges(num_gauges=8, num_days=100, seed=3).generate()
        assert not np.array_equal(first.values, different.values)

    def test_log_transform_compresses_tail(self, rainfall):
        generator, matrix = rainfall
        transformed = generator.generate_transformed()
        assert transformed.shape == matrix.shape
        assert transformed.values.max() < matrix.values.max()
        # Zeros stay zero under log1p.
        assert np.all(transformed.values[matrix.values == 0.0] == 0.0)

    def test_parameter_validation(self):
        with pytest.raises(GenerationError):
            SyntheticRainGauges(num_gauges=1)
        with pytest.raises(GenerationError):
            SyntheticRainGauges(wet_probability=0.0)
        with pytest.raises(GenerationError):
            SyntheticRainGauges(gamma_shape=-1.0)
        with pytest.raises(GenerationError):
            SyntheticRainGauges().generate_transformed(epsilon=0.0)


class TestNormalQuantile:
    def test_matches_scipy(self):
        from scipy import stats

        for p in (0.01, 0.1, 0.35, 0.5, 0.65, 0.9, 0.99):
            assert _normal_quantile(p) == pytest.approx(stats.norm.ppf(p), abs=1e-6)

    def test_rejects_boundary(self):
        with pytest.raises(GenerationError):
            _normal_quantile(0.0)
        with pytest.raises(GenerationError):
            _normal_quantile(1.0)
