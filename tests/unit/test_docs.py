"""The documentation front door stays present and internally consistent.

README/docs are part of the product surface: these tests keep the files
present, their relative links resolving, and the link checker itself honest.
(The README quickstart additionally runs as a doctest via pytest.ini's
``--doctest-glob``.)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_docs_links", ROOT / "scripts" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_docs_links", check_docs_links)
_spec.loader.exec_module(check_docs_links)


@pytest.mark.parametrize("relative", [
    "README.md",
    "docs/architecture.md",
    "docs/api.md",
    "docs/benchmarks.md",
])
def test_documentation_files_exist(relative):
    assert (ROOT / relative).is_file(), f"{relative} is missing"


def test_readme_covers_the_front_door():
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    for anchor in ("CorrelationSession", "dangoron", "tsubasa",
                   "REPRO_BENCH_SCALE", "workers"):
        assert anchor in text, f"README.md no longer mentions {anchor}"


def test_all_relative_links_resolve():
    broken = []
    for path in check_docs_links.default_files(ROOT):
        file_broken, _ = check_docs_links.check_file(path, ROOT)
        broken += file_broken
    assert not broken, "broken documentation links:\n" + "\n".join(broken)


def test_link_checker_detects_breakage(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n[ok](#title) [gone](./missing.md) [bad](#nope) "
        "[ext](https://example.org)\n",
        encoding="utf-8",
    )
    broken, external = check_docs_links.check_file(page, tmp_path)
    assert len(broken) == 2
    assert external == 1


def test_github_slug_rules():
    assert check_docs_links.github_slug("30-second quickstart") == (
        "30-second-quickstart"
    )
    assert check_docs_links.github_slug("`workers=` — sharded parallel execution") == (
        "workers--sharded-parallel-execution"
    )
