"""Unit tests for synchronization of irregular series (repro.timeseries.align)."""

import numpy as np
import pytest

from repro.exceptions import AlignmentError
from repro.timeseries.align import (
    IrregularSeries,
    aggregate_to_grid,
    interpolate_to_grid,
    synchronize,
)


class TestIrregularSeries:
    def test_sorts_by_timestamp(self):
        series = IrregularSeries("a", [3.0, 1.0, 2.0], [30.0, 10.0, 20.0])
        assert list(series.timestamps) == [1.0, 2.0, 3.0]
        assert list(series.values) == [10.0, 20.0, 30.0]

    def test_from_pairs(self):
        series = IrregularSeries.from_pairs("b", [(0.0, 1.0), (2.0, 3.0)])
        assert series.series_id == "b"
        assert len(series.timestamps) == 2

    def test_validation(self):
        with pytest.raises(AlignmentError):
            IrregularSeries("a", [1.0, 2.0], [1.0])
        with pytest.raises(AlignmentError):
            IrregularSeries("a", [], [])
        with pytest.raises(AlignmentError):
            IrregularSeries.from_pairs("a", [])


class TestAggregation:
    def test_mean_aggregation_into_bins(self):
        series = IrregularSeries("a", [0.1, 0.4, 1.2, 2.9], [1.0, 3.0, 10.0, 20.0])
        out = aggregate_to_grid(series, start=0.0, resolution=1.0, length=4)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(10.0)
        assert out[2] == pytest.approx(20.0)
        assert np.isnan(out[3])

    @pytest.mark.parametrize("how,expected", [("sum", 4.0), ("min", 1.0), ("max", 3.0), ("count", 2.0)])
    def test_other_aggregators(self, how, expected):
        series = IrregularSeries("a", [0.1, 0.5], [1.0, 3.0])
        out = aggregate_to_grid(series, 0.0, 1.0, 2, how=how)
        assert out[0] == pytest.approx(expected)

    def test_out_of_range_observations_ignored(self):
        series = IrregularSeries("a", [-5.0, 0.5, 99.0], [1.0, 2.0, 3.0])
        out = aggregate_to_grid(series, 0.0, 1.0, 3)
        assert out[0] == pytest.approx(2.0)
        assert np.isnan(out[1]) and np.isnan(out[2])

    def test_unknown_aggregator(self):
        series = IrregularSeries("a", [0.0], [1.0])
        with pytest.raises(AlignmentError):
            aggregate_to_grid(series, 0.0, 1.0, 2, how="mode")


class TestInterpolation:
    @pytest.fixture
    def series(self):
        return IrregularSeries("a", [0.0, 2.0, 4.0], [0.0, 20.0, 40.0])

    def test_linear(self, series):
        out = interpolate_to_grid(series, 0.0, 1.0, 5, method="linear")
        assert np.allclose(out, [0, 10, 20, 30, 40])

    def test_previous(self, series):
        out = interpolate_to_grid(series, 0.0, 1.0, 5, method="previous")
        assert np.allclose(out, [0, 0, 20, 20, 40])

    def test_nearest(self, series):
        out = interpolate_to_grid(series, 0.0, 1.0, 5, method="nearest")
        assert out[1] in (0.0, 20.0)
        assert out[3] in (20.0, 40.0)

    def test_max_gap_leaves_nan(self):
        series = IrregularSeries("a", [0.0, 10.0], [0.0, 100.0])
        out = interpolate_to_grid(series, 0.0, 1.0, 11, method="linear", max_gap=2.0)
        assert np.isnan(out[5])
        assert out[0] == 0.0 and out[10] == 100.0

    def test_unknown_method(self, series):
        with pytest.raises(AlignmentError):
            interpolate_to_grid(series, 0.0, 1.0, 5, method="spline")

    def test_grid_validation(self, series):
        with pytest.raises(AlignmentError):
            interpolate_to_grid(series, 0.0, -1.0, 5)
        with pytest.raises(AlignmentError):
            interpolate_to_grid(series, 0.0, 1.0, 1)


class TestSynchronize:
    def test_two_series_on_common_grid(self):
        a = IrregularSeries("a", np.arange(0, 10, 0.5), np.arange(20) * 1.0)
        b = IrregularSeries("b", np.arange(0.25, 10, 1.0), np.arange(10) * 2.0)
        matrix, report = synchronize([a, b], resolution=1.0)
        assert matrix.num_series == 2
        assert matrix.series_ids == ["a", "b"]
        assert report.grid_length == matrix.length
        assert not matrix.has_missing()

    def test_gap_is_interpolated_and_reported(self):
        a = IrregularSeries("a", [0.0, 1.0, 5.0, 6.0], [1.0, 2.0, 6.0, 7.0])
        b = IrregularSeries("b", np.arange(7.0), np.arange(7.0))
        matrix, report = synchronize([a, b], resolution=1.0)
        assert report.interpolated_bins["a"] > 0
        assert report.interpolated_bins["b"] == 0
        assert report.total_interpolated() == report.interpolated_bins["a"]
        assert not matrix.has_missing()

    def test_duplicate_ids_rejected(self):
        a = IrregularSeries("a", [0.0, 1.0], [1.0, 2.0])
        with pytest.raises(AlignmentError):
            synchronize([a, a])

    def test_empty_input_rejected(self):
        with pytest.raises(AlignmentError):
            synchronize([])

    def test_series_outside_grid_rejected(self):
        a = IrregularSeries("a", [100.0, 101.0], [1.0, 2.0])
        b = IrregularSeries("b", [0.0, 1.0], [1.0, 2.0])
        with pytest.raises(AlignmentError):
            synchronize([a, b], start=0.0, resolution=1.0, length=10)
