"""Unit tests for preprocessing helpers (repro.timeseries.preprocess)."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.timeseries.matrix import TimeSeriesMatrix
from repro.timeseries.preprocess import (
    detrend,
    fill_missing,
    find_constant_series,
    moving_average,
    winsorize,
    znormalize,
)


class TestZNormalize:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(size=(4, 200)) * 5 + 10
        out = znormalize(data)
        assert np.allclose(out.mean(axis=1), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=1), 1.0, atol=1e-10)

    def test_constant_series_becomes_zero(self, rng):
        data = rng.normal(size=(3, 50))
        data[1] = 2.0
        out = znormalize(data)
        assert np.all(out[1] == 0.0)

    def test_preserves_matrix_wrapper(self, rng):
        matrix = TimeSeriesMatrix(rng.normal(size=(2, 30)), series_ids=["a", "b"])
        out = znormalize(matrix)
        assert isinstance(out, TimeSeriesMatrix)
        assert out.series_ids == ["a", "b"]

    def test_does_not_modify_input(self, rng):
        data = rng.normal(size=(2, 20))
        copy = data.copy()
        znormalize(data)
        assert np.array_equal(data, copy)


class TestDetrend:
    def test_removes_linear_trend(self, rng):
        t = np.arange(100, dtype=float)
        data = np.stack([3.0 * t + 5.0, -2.0 * t + 1.0])
        out = detrend(data)
        # After removing the trend the slope of a least-squares fit is ~0.
        for row in np.asarray(out):
            slope = np.polyfit(t, row, 1)[0]
            assert abs(slope) < 1e-8

    def test_preserves_mean(self, rng):
        data = rng.normal(size=(3, 80)) + 7.0
        out = np.asarray(detrend(data))
        assert np.allclose(out.mean(axis=1), data.mean(axis=1), atol=1e-8)


class TestMovingAverage:
    def test_smooths_noise(self, rng):
        data = rng.normal(size=(1, 500))
        smooth = np.asarray(moving_average(data, 25))
        assert smooth.std() < data.std()

    def test_window_one_is_identity(self, rng):
        data = rng.normal(size=(2, 30))
        assert np.allclose(np.asarray(moving_average(data, 1)), data)

    def test_constant_signal_unchanged(self):
        data = np.full((1, 40), 3.0)
        assert np.allclose(np.asarray(moving_average(data, 7)), 3.0)

    def test_invalid_window(self, rng):
        with pytest.raises(DataValidationError):
            moving_average(rng.normal(size=(1, 10)), 0)


class TestWinsorize:
    def test_clips_extremes(self, rng):
        data = rng.normal(size=(1, 1000))
        data[0, 0] = 100.0
        out = np.asarray(winsorize(data, 0.01, 0.99))
        assert out.max() < 100.0
        assert out.max() <= np.quantile(data, 0.99) + 1e-12

    def test_invalid_quantiles(self, rng):
        with pytest.raises(DataValidationError):
            winsorize(rng.normal(size=(1, 10)), 0.9, 0.1)


class TestFillMissing:
    def test_linear_fill(self):
        data = np.array([[1.0, np.nan, 3.0, np.nan, 5.0]])
        out = np.asarray(fill_missing(data, "linear"))
        assert np.allclose(out, [[1, 2, 3, 4, 5]])

    def test_previous_fill(self):
        data = np.array([[np.nan, 2.0, np.nan, np.nan, 5.0]])
        out = np.asarray(fill_missing(data, "previous"))
        assert np.allclose(out, [[2, 2, 2, 2, 5]])

    def test_mean_fill(self):
        data = np.array([[1.0, np.nan, 3.0]])
        out = np.asarray(fill_missing(data, "mean"))
        assert out[0, 1] == pytest.approx(2.0)

    def test_all_nan_series_rejected(self):
        with pytest.raises(DataValidationError):
            fill_missing(np.array([[np.nan, np.nan]]), "linear")

    def test_unknown_method_rejected(self):
        with pytest.raises(DataValidationError):
            fill_missing(np.zeros((1, 5)), "magic")

    def test_round_trip_through_matrix(self, rng):
        values = rng.normal(size=(2, 20))
        values[0, 5] = np.nan
        matrix = TimeSeriesMatrix(values, allow_nan=True)
        fixed = fill_missing(matrix)
        assert isinstance(fixed, TimeSeriesMatrix)
        assert not fixed.has_missing()


class TestFindConstantSeries:
    def test_detects_constant_rows(self, rng):
        data = rng.normal(size=(4, 60))
        data[2] = 1.5
        assert find_constant_series(data) == [2]

    def test_empty_when_all_vary(self, rng):
        assert find_constant_series(rng.normal(size=(3, 60))) == []
