"""Unit tests for the TimeSeriesMatrix container and TimeAxis."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.timeseries.matrix import TimeAxis, TimeSeriesMatrix


class TestTimeAxis:
    def test_timestamps(self):
        axis = TimeAxis(start=10.0, resolution=2.0)
        assert np.allclose(axis.timestamps(4), [10, 12, 14, 16])

    def test_index_of_rounds_to_nearest(self):
        axis = TimeAxis(start=0.0, resolution=0.5)
        assert axis.index_of(1.0) == 2
        assert axis.index_of(1.2) == 2
        assert axis.index_of(1.3) == 3

    def test_resolution_must_be_positive(self):
        with pytest.raises(DataValidationError):
            TimeAxis(resolution=0.0)


class TestConstruction:
    def test_basic_properties(self, rng):
        values = rng.normal(size=(4, 30))
        matrix = TimeSeriesMatrix(values, series_ids=list("abcd"))
        assert matrix.shape == (4, 30)
        assert matrix.num_series == 4
        assert matrix.length == 30
        assert matrix.series_ids == ["a", "b", "c", "d"]
        assert len(matrix) == 4

    def test_default_ids_generated(self, rng):
        matrix = TimeSeriesMatrix(rng.normal(size=(3, 10)))
        assert matrix.series_ids == ["s0", "s1", "s2"]

    def test_1d_input_becomes_single_row(self, rng):
        matrix = TimeSeriesMatrix(rng.normal(size=20))
        assert matrix.shape == (1, 20)

    def test_values_are_read_only_copies(self, rng):
        source = rng.normal(size=(2, 10))
        matrix = TimeSeriesMatrix(source)
        source[0, 0] = 999.0
        assert matrix.values[0, 0] != 999.0
        with pytest.raises(ValueError):
            matrix.values[0, 0] = 1.0

    def test_rejects_3d_input(self, rng):
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix(rng.normal(size=(2, 3, 4)))

    def test_rejects_too_short_series(self):
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix([[1.0], [2.0]])

    def test_rejects_nan_unless_allowed(self):
        values = [[1.0, np.nan, 3.0], [1.0, 2.0, 3.0]]
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix(values)
        matrix = TimeSeriesMatrix(values, allow_nan=True)
        assert matrix.has_missing()

    def test_rejects_duplicate_or_mismatched_ids(self, rng):
        values = rng.normal(size=(2, 10))
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix(values, series_ids=["a", "a"])
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix(values, series_ids=["a"])

    def test_from_rows_validates_lengths(self):
        with pytest.raises(DataValidationError):
            TimeSeriesMatrix.from_rows([[1, 2, 3], [1, 2]])
        matrix = TimeSeriesMatrix.from_rows([[1, 2, 3], [4, 5, 6]])
        assert matrix.shape == (2, 3)


class TestAccess:
    @pytest.fixture
    def matrix(self, rng):
        return TimeSeriesMatrix(
            rng.normal(size=(4, 40)),
            series_ids=["w", "x", "y", "z"],
            time_axis=TimeAxis(start=100.0, resolution=0.5),
        )

    def test_series_by_index_and_id(self, matrix):
        assert np.array_equal(matrix.series(2), matrix.series("y"))
        with pytest.raises(DataValidationError):
            matrix.series("nope")
        with pytest.raises(DataValidationError):
            matrix.series(9)

    def test_window_slicing(self, matrix):
        window = matrix.window(10, 20)
        assert window.shape == (4, 10)
        assert np.array_equal(window, matrix.values[:, 10:20])
        with pytest.raises(DataValidationError):
            matrix.window(30, 20)
        with pytest.raises(DataValidationError):
            matrix.window(0, 41)

    def test_select_subset(self, matrix):
        subset = matrix.select(["z", 0])
        assert subset.series_ids == ["z", "w"]
        assert np.array_equal(subset.values[0], matrix.series("z"))

    def test_slice_time_adjusts_axis(self, matrix):
        sliced = matrix.slice_time(10, 30)
        assert sliced.length == 20
        assert sliced.time_axis.start == pytest.approx(100.0 + 10 * 0.5)
        assert sliced.series_ids == matrix.series_ids

    def test_with_values_requires_same_shape(self, matrix, rng):
        replacement = rng.normal(size=matrix.shape)
        clone = matrix.with_values(replacement)
        assert np.array_equal(clone.values, replacement)
        with pytest.raises(DataValidationError):
            matrix.with_values(rng.normal(size=(4, 10)))

    def test_equality(self, matrix):
        twin = TimeSeriesMatrix(
            matrix.values, series_ids=matrix.series_ids, time_axis=matrix.time_axis
        )
        assert matrix == twin
        assert matrix != "not a matrix"

    def test_repr_contains_shape(self, matrix):
        assert "num_series=4" in repr(matrix)
