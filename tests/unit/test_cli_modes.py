"""CLI tests for the unified query modes and --engine-opt (repro.cli)."""

import pytest

from repro.cli import main, parse_engine_option
from repro.datasets.loaders import write_wide_csv
from repro.datasets.random_walk import ar1_series
from repro.exceptions import ReproError


@pytest.fixture
def csv_dataset(tmp_path):
    matrix = ar1_series(8, 256, coefficient=0.8, shared_innovation_weight=0.7, seed=3)
    path = tmp_path / "data.csv"
    write_wide_csv(matrix, path)
    return path


class TestParseEngineOption:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("slack=0.05", ("slack", 0.05)),
            ("num_pivots=4", ("num_pivots", 4)),
            ("use_horizontal_pruning=true", ("use_horizontal_pruning", True)),
            ("use_temporal_pruning=False", ("use_temporal_pruning", False)),
            ("prefix_combination=yes", ("prefix_combination", True)),
            ("seed=none", ("seed", None)),
            ("pivot_strategy=kcenter", ("pivot_strategy", "kcenter")),
        ],
    )
    def test_typed_parsing(self, text, expected):
        assert parse_engine_option(text) == expected

    @pytest.mark.parametrize("text", ["slack", "=0.5", "", "=", "  =x"])
    def test_malformed_flag_raises(self, text):
        with pytest.raises(ReproError):
            parse_engine_option(text)


class TestQueryModes:
    def _query(self, csv_dataset, *extra):
        return ["query", str(csv_dataset), "--window", "64", "--step", "32",
                "--basic-window", "32", *extra]

    def test_default_mode_is_threshold(self, csv_dataset, capsys):
        assert main(self._query(csv_dataset)) == 0
        output = capsys.readouterr().out
        assert "engine statistics" in output

    def test_topk_mode(self, csv_dataset, capsys):
        code = main(self._query(csv_dataset, "--mode", "topk", "--k", "3"))
        assert code == 0
        output = capsys.readouterr().out
        assert "top-3" in output
        assert "mean_|weight|" in output

    def test_lagged_mode(self, csv_dataset, capsys):
        code = main(self._query(
            csv_dataset, "--mode", "lagged", "--max-lag", "4",
            "--threshold", "0.4",
        ))
        assert code == 0
        output = capsys.readouterr().out
        assert "lagged(max_lag=4)" in output

    def test_topk_edges_output_has_lag_column(self, csv_dataset, tmp_path, capsys):
        edges = tmp_path / "edges.csv"
        code = main(self._query(
            csv_dataset, "--mode", "topk", "--k", "2",
            "--edges-output", str(edges),
        ))
        assert code == 0
        header = edges.read_text().splitlines()[0]
        assert header == "window,source,target,weight,lag"

    def test_engine_opt_reaches_the_engine(self, csv_dataset, capsys):
        code = main(self._query(
            csv_dataset,
            "--engine-opt", "use_horizontal_pruning=true",
            "--engine-opt", "num_pivots=2",
        ))
        assert code == 0
        assert "horizontal(2)" in capsys.readouterr().out

    def test_bad_engine_opt_reports_accepted_options(self, csv_dataset, capsys):
        code = main(self._query(csv_dataset, "--engine-opt", "num_pivot=4"))
        assert code == 1
        err = capsys.readouterr().err
        assert "num_pivots" in err  # accepted options listed in the message

    def test_malformed_engine_opt_fails_cleanly(self, csv_dataset, capsys):
        code = main(self._query(csv_dataset, "--engine-opt", "slack"))
        assert code == 1
        assert "key=value" in capsys.readouterr().err

    def test_engine_flags_rejected_outside_threshold_mode(self, csv_dataset, capsys):
        """topk/lagged run on fixed paths; silently ignoring --engine would
        make engine comparisons lie."""
        code = main(self._query(
            csv_dataset, "--mode", "topk", "--engine", "tsubasa",
        ))
        assert code == 1
        assert "threshold" in capsys.readouterr().err
        code = main(self._query(
            csv_dataset, "--mode", "lagged", "--engine-opt", "slack=0.1",
        ))
        assert code == 1
