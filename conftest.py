"""Repo-wide pytest configuration.

Pins the planner's cost calibration to the committed fixture
(``REPRO_COST_CALIBRATION=off`` — see :mod:`repro.api.cost`) before any
test constructs a planner, so every tier-1 plan decision — including the
doctest pages collected from ``docs/`` and the benchmark smokes — is
machine-independent.  Tests that exercise ``measured`` mode call
``CostModel.measured()`` / ``CostModel.from_environment`` explicitly.
"""

import os

os.environ.setdefault("REPRO_COST_CALIBRATION", "off")
